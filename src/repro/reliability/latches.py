"""Latch population model for SER analysis (Section III-E).

SERMiner reasons about individual latches; the timing model reasons
about units.  This module bridges the two: each clock-gating unit is
expanded into latch *groups* whose per-workload switching activity is
derived from the unit's utilization, with deterministic per-group
activity factors.  Groups fall into three kinds:

* **config** — set once at initialization, never switch (the paper's
  exception when classifying static derating);
* **control** — switch whenever the unit is clocked;
* **data** — switching additionally scales with how much data movement
  the workload causes (and collapses for zero-initialized data, which
  is why the derating suites sweep ``zero`` vs ``random`` operands).

POWER10's off-by-default clock discipline means a *smaller* fraction of
a unit's latches is clocked when the unit is busy (only the consumers
of the current instruction), modeled by ``activity_concentration``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List

from ..core.activity import ActivityCounters, UNIT_NAMES
from ..core.config import CoreConfig
from ..errors import ModelError

_GROUPS_PER_UNIT = 40
_LATCHES_PER_WATT = 24000     # latch count proxy from clock power


@dataclass(frozen=True)
class LatchGroup:
    """A set of identically-behaving latches."""

    unit: str
    index: int
    count: int
    kind: str                 # "config" | "control" | "data"
    activity_factor: float    # fraction of unit-enable cycles it switches


def _unit_hash(unit: str, index: int) -> float:
    digest = hashlib.sha256(f"{unit}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 0xFFFFFFFF


@dataclass
class LatchPopulation:
    """All latch groups of one core configuration."""

    config_name: str
    groups: List[LatchGroup]

    @property
    def total_latches(self) -> int:
        return sum(g.count for g in self.groups)

    def switching(self, activity: ActivityCounters, *,
                  data_scale: float = 1.0) -> Dict[LatchGroup, float]:
        """Per-group switching activity for one run.

        ``data_scale`` models operand data values (1.0 for random data,
        near 0 for zeroed operands).
        """
        if activity.cycles <= 0:
            raise ModelError("activity has no cycles")
        out: Dict[LatchGroup, float] = {}
        for group in self.groups:
            util = activity.utilization(group.unit)
            if group.kind == "config":
                out[group] = 0.0
            elif group.kind == "control":
                out[group] = min(1.0, util * group.activity_factor)
            else:
                out[group] = min(
                    1.0, util * group.activity_factor * data_scale)
        return out


def build_population(config: CoreConfig, *,
                     config_latch_fraction: float = None,
                     activity_concentration: float = None,
                     ) -> LatchPopulation:
    """Expand a core configuration into its latch groups.

    Defaults derive from the generation: POWER9 carries more
    never-clocked (config/spare) latches — higher static derating —
    while POWER10's fine gating concentrates activity into fewer latches
    per operation — higher runtime derating (Fig. 14).
    """
    if config_latch_fraction is None:
        config_latch_fraction = (
            0.34 if config.generation == "power9" else 0.20)
    if activity_concentration is None:
        activity_concentration = (
            1.00 if config.generation == "power9" else 0.62)
    groups: List[LatchGroup] = []
    for unit in UNIT_NAMES:
        clock_w = config.power.unit_clock_w.get(unit, 0.0)
        if clock_w <= 0:
            continue
        unit_latches = int(clock_w * _LATCHES_PER_WATT)
        per_group = max(1, unit_latches // _GROUPS_PER_UNIT)
        for i in range(_GROUPS_PER_UNIT):
            h = _unit_hash(unit, i)
            if h < config_latch_fraction:
                kind = "config"
                factor = 0.0
            elif h < config_latch_fraction + 0.35:
                kind = "control"
                factor = (0.2 + 0.8 * _unit_hash(unit, i + 1000)) \
                    * activity_concentration
            else:
                kind = "data"
                factor = (0.05 + 0.95 * _unit_hash(unit, i + 2000)) \
                    * activity_concentration
            groups.append(LatchGroup(
                unit=unit, index=i, count=per_group,
                kind=kind, activity_factor=factor))
    if not groups:
        raise ModelError("configuration produced no latch groups")
    return LatchPopulation(config_name=config.name, groups=groups)
