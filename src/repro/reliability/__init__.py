"""Reliability (RAS) analysis: latch population modeling and the
SERMiner derating methodology."""

from .latches import LatchGroup, LatchPopulation, build_population
from .serminer import (DeratingResult, SERMiner, compare_generations,
                       protection_candidates)

__all__ = [
    "LatchGroup", "LatchPopulation", "build_population",
    "DeratingResult", "SERMiner", "compare_generations",
    "protection_candidates",
]
