"""SERMiner: power-aware latch reliability modeling (Section III-E).

Estimates soft-error vulnerability from latch switching characteristics
derived from simulation, using **clock utilization as the vulnerability
proxy** (latch data is refreshed every clocked cycle, so data-residency
metrics underestimate protection opportunities under POWER10's fine
clock gating).

Definitions (paper, Section III-E-1):

* **static-derated** — latches that never switch across the entire
  workload set (config latches excluded from the protection question);
* **runtime-derated** — latches with non-zero switching whose clock
  utilization stays below the Vulnerability Threshold (VT).  The VT is
  an activity cutoff swept from strict to permissive: ``VT=10%`` only
  calls a latch vulnerable when it is clocked in at least 90% of cycles
  in some workload, while ``VT=90%`` already flags latches clocked 10%
  of the time — so higher VT classifies more latches as vulnerable.

Derating is goodness: the fraction of latches an SER flip in which is
unlikely to propagate, i.e. that need no hardening at the chosen VT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..core.config import CoreConfig
from ..errors import ModelError
from .latches import LatchGroup, LatchPopulation, build_population


@dataclass
class DeratingResult:
    """Derating metrics for one workload set at one or more VT values."""

    config_name: str
    workload_set: str
    total_latches: int
    static_derating_pct: float
    runtime_derating_pct: Dict[int, float]     # VT -> derating %

    def vulnerable_pct(self, vt: int) -> float:
        return 100.0 - self.runtime_derating_pct[vt]


class SERMiner:
    """Derating analysis driver for one core configuration.

    ``tier`` selects the simulation tier for the switching-activity
    runs (``"detailed"`` | ``"fast"``; see :mod:`repro.fastsim`).
    """

    def __init__(self, config: CoreConfig,
                 population: LatchPopulation = None, *,
                 tier: str = "detailed"):
        self.config = config
        self.population = population or build_population(config)
        self.tier = tier

    def _switching_matrix(self, traces,
                          warmup_fraction: float) -> np.ndarray:
        """latch-group x workload switching activity."""
        from ..fastsim.dispatch import simulate_tiered
        rows: List[List[float]] = []
        groups = self.population.groups
        for trace in traces:
            result = simulate_tiered(self.config, trace, tier=self.tier,
                                     warmup_fraction=warmup_fraction)
            data_scale = 1.0
            if trace.metadata.get("data_init") == "zero":
                data_scale = 0.06
            switching = self.population.switching(
                result.activity, data_scale=data_scale)
            rows.append([switching[g] for g in groups])
        return np.array(rows).T        # groups x workloads

    def analyze(self, traces, *, vt_values: Sequence[int] = (10, 50, 90),
                workload_set: str = "suite",
                warmup_fraction: float = 0.2) -> DeratingResult:
        """Compute static and runtime derating over a workload set."""
        if not traces:
            raise ModelError("need at least one workload")
        for vt in vt_values:
            if not 0 < vt <= 100:
                raise ModelError(f"VT must be in (0, 100]: {vt}")
        matrix = self._switching_matrix(traces, warmup_fraction)
        groups = self.population.groups
        counts = np.array([g.count for g in groups], dtype=float)
        total = counts.sum()

        never_switches = matrix.max(axis=1) <= 1e-9
        static_pct = 100.0 * counts[never_switches].sum() / total

        peak = matrix.max(axis=1)        # worst case over workloads
        runtime: Dict[int, float] = {}
        for vt in vt_values:
            threshold = max(1.0 - vt / 100.0, 1e-9)
            vulnerable = peak >= threshold
            runtime[vt] = 100.0 * counts[~vulnerable].sum() / total
        return DeratingResult(
            config_name=self.config.name,
            workload_set=workload_set,
            total_latches=self.population.total_latches,
            static_derating_pct=static_pct,
            runtime_derating_pct=runtime)

    def per_suite(self, suites: Dict[str, Sequence],
                  vt_values: Sequence[int] = (10, 50, 90),
                  ) -> List[DeratingResult]:
        """Fig. 13: derating per testcase suite."""
        return [self.analyze(traces, vt_values=vt_values,
                             workload_set=name)
                for name, traces in suites.items()]


def protection_candidates(miner: SERMiner, traces, *,
                          vt: int = 50) -> List[LatchGroup]:
    """Latch groups that would be protected/hardened at the given VT —
    SERMiner's "key components of interest ... that would most benefit
    from protection"."""
    matrix = miner._switching_matrix(traces, warmup_fraction=0.2)
    groups = miner.population.groups
    threshold = max(1.0 - vt / 100.0, 1e-9)
    vulnerable = matrix.max(axis=1) >= threshold
    return [g for g, v in zip(groups, vulnerable) if v]


def compare_generations(p9_config: CoreConfig, p10_config: CoreConfig,
                        traces, *,
                        vt_values: Sequence[int] = tuple(
                            range(10, 100, 10)),
                        tier: str = "detailed",
                        ) -> Dict[str, DeratingResult]:
    """Fig. 14: POWER9 vs POWER10 derating averaged across workloads."""
    out = {}
    for config in (p9_config, p10_config):
        miner = SERMiner(config, tier=tier)
        out[config.name] = miner.analyze(
            traces, vt_values=vt_values, workload_set="all")
    return out
