"""Span tracing with Chrome ``trace_event`` export.

A :class:`Span` is one timed region of work (a ``simulate`` call, an
Einspower report, a whole CLI command); spans nest lexically through the
:meth:`Tracer.span` context manager.  A finished trace exports to the
Chrome/Perfetto ``trace_event`` JSON format — open the file at
``chrome://tracing`` or https://ui.perfetto.dev to see the run's time
structure (every simulated window, every power-model evaluation) on a
zoomable timeline.

Instrumentation sites use the module-level :func:`span` helper, which
routes through the *current* tracer.  The default tracer is disabled:
spans still measure their own duration (so call sites can read
``sp.duration_s``, e.g. APEX's ``elapsed_seconds``) but nothing is
retained, keeping the overhead to two clock reads per span.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class Span:
    """One timed region.  ``duration_s`` is valid after the ``with``
    block exits (and reads as time-so-far while still open)."""

    __slots__ = ("name", "category", "args", "start_ns", "end_ns",
                 "depth", "tid")

    def __init__(self, name: str, category: str,
                 args: Optional[Dict[str, object]] = None,
                 depth: int = 0, tid: int = 0):
        self.name = name
        self.category = category
        self.args: Dict[str, object] = args if args is not None else {}
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.depth = depth
        self.tid = tid

    def set(self, **args: object) -> None:
        """Attach result attributes (shown in the trace viewer)."""
        self.args.update(args)

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None \
            else time.perf_counter_ns()
        return end - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, cat={self.category!r}, "
                f"dur={self.duration_s * 1e3:.3f}ms)")


class Tracer:
    """Collects finished spans; exports Chrome ``trace_event`` JSON."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._spans: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._epoch_ns = time.perf_counter_ns()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, category: str = "repro",
             **args: object) -> Iterator[Span]:
        if not self.enabled:
            sp = Span(name, category)
            try:
                yield sp
            finally:
                sp.end_ns = time.perf_counter_ns()
            return
        stack = self._stack()
        sp = Span(name, category, dict(args) or None,
                  depth=len(stack), tid=threading.get_ident())
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.end_ns = time.perf_counter_ns()
            stack.pop()
            with self._lock:
                self._spans.append(sp)

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def to_chrome_trace(self) -> Dict[str, object]:
        """The ``{"traceEvents": [...]}`` document Perfetto loads.

        Spans become ``ph: "X"`` (complete) events; timestamps are
        microseconds relative to tracer creation.
        """
        events: List[Dict[str, object]] = []
        tid_alias: Dict[int, int] = {}
        for sp in sorted(self.spans, key=lambda s: s.start_ns):
            tid = tid_alias.setdefault(sp.tid, len(tid_alias) + 1)
            event: Dict[str, object] = {
                "name": sp.name,
                "cat": sp.category,
                "ph": "X",
                "ts": (sp.start_ns - self._epoch_ns) / 1e3,
                "dur": sp.duration_ns / 1e3,
                "pid": 1,
                "tid": tid,
            }
            if sp.args:
                event["args"] = dict(sp.args)
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}


_default_tracer = Tracer(enabled=False)
_current_tracer = _default_tracer


def get_tracer() -> Tracer:
    """The process-current tracer (disabled default unless a telemetry
    session has installed a recording one)."""
    return _current_tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as current (None restores the disabled
    default); returns the previously current tracer."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer if tracer is not None else _default_tracer
    return previous


def span(name: str, category: str = "repro", **args: object):
    """Open a span on the current tracer (the one instrumentation
    sites should use)."""
    return _current_tracer.span(name, category, **args)
