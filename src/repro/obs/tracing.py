"""Span tracing with Chrome ``trace_event`` export.

A :class:`Span` is one timed region of work (a ``simulate`` call, an
Einspower report, a whole CLI command); spans nest lexically through the
:meth:`Tracer.span` context manager.  A finished trace exports to the
Chrome/Perfetto ``trace_event`` JSON format — open the file at
``chrome://tracing`` or https://ui.perfetto.dev to see the run's time
structure (every simulated window, every power-model evaluation) on a
zoomable timeline.

Instrumentation sites use the module-level :func:`span` helper, which
routes through the *current* tracer.  The default tracer is disabled:
spans still measure their own duration (so call sites can read
``sp.duration_s``, e.g. APEX's ``elapsed_seconds``) but nothing is
retained, keeping the overhead to two clock reads per span.

Tracks.  Perfetto groups events by ``tid``; raw ``threading.get_ident``
values are recycled by the OS, so two short-lived threads (the serve
asyncio thread and a ``start_in_thread`` harness, say) could collapse
into one interleaved track.  The tracer therefore assigns each *thread
object* a stable track label (``<name>#<seq>``) the first time it
records, and the export emits ``thread_name`` metadata so the Perfetto
UI shows real names.  While a request context (:mod:`repro.obs.context`)
is active, spans instead land on a per-request track (``req:<id>``) and
carry the request id in their args — one row per served request.

Cross-process spans.  ``perf_counter_ns`` epochs are per-process, so a
worker cannot ship raw timestamps.  :meth:`Tracer.to_wire` converts
spans to wall-clock-anchored dicts and :meth:`Tracer.merge_wire` maps
them into the parent's clock via both tracers' (wall, perf) epoch pairs
— alignment error is the clock-read jitter, microseconds at worst.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .context import current_request_id

_REQUEST_ARG = "request_id"


class Span:
    """One timed region.  ``duration_s`` is valid after the ``with``
    block exits (and reads as time-so-far while still open)."""

    __slots__ = ("name", "category", "args", "start_ns", "end_ns",
                 "depth", "tid", "track")

    def __init__(self, name: str, category: str,
                 args: Optional[Dict[str, object]] = None,
                 depth: int = 0, tid: int = 0,
                 track: Optional[str] = None):
        self.name = name
        self.category = category
        self.args: Dict[str, object] = args if args is not None else {}
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.depth = depth
        self.tid = tid
        self.track = track

    def set(self, **args: object) -> None:
        """Attach result attributes (shown in the trace viewer)."""
        self.args.update(args)

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None \
            else time.perf_counter_ns()
        return end - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, cat={self.category!r}, "
                f"dur={self.duration_s * 1e3:.3f}ms)")


class Tracer:
    """Collects finished spans; exports Chrome ``trace_event`` JSON."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._spans: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._epoch_ns = time.perf_counter_ns()
        self._wall_epoch_ns = time.time_ns()
        self._track_seq = 0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_track(self) -> str:
        """Stable per-thread-object track label (ident values are
        recycled; labels are not)."""
        label = getattr(self._local, "track", None)
        if label is None:
            with self._lock:
                self._track_seq += 1
                seq = self._track_seq
            name = threading.current_thread().name
            label = self._local.track = f"{name}#{seq}"
        return label

    def _pick_track(self) -> str:
        rid = current_request_id()
        if rid is not None:
            return f"req:{rid}"
        return self._thread_track()

    @contextmanager
    def span(self, name: str, category: str = "repro",
             **args: object) -> Iterator[Span]:
        if not self.enabled:
            sp = Span(name, category)
            try:
                yield sp
            finally:
                sp.end_ns = time.perf_counter_ns()
            return
        stack = self._stack()
        rid = current_request_id()
        if rid is not None:
            args.setdefault(_REQUEST_ARG, rid)
            track: str = f"req:{rid}"
        else:
            track = self._thread_track()
        sp = Span(name, category, dict(args) or None,
                  depth=len(stack), tid=threading.get_ident(),
                  track=track)
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.end_ns = time.perf_counter_ns()
            stack.pop()
            with self._lock:
                self._spans.append(sp)

    def record_complete(self, name: str, category: str = "repro", *,
                        start_ns: int, dur_ns: int,
                        args: Optional[Dict[str, object]] = None,
                        track: Optional[str] = None,
                        depth: int = 0) -> Optional[Span]:
        """Record an already-measured region (``ph: "X"`` semantics).

        ``start_ns`` is this process's ``perf_counter_ns`` value at the
        region's start — used by call sites that reconstruct segments
        after the fact (the per-request queue/batch/exec tiles).
        """
        if not self.enabled:
            return None
        sp = Span(name, category,
                  dict(args) if args else None,
                  depth=depth, tid=threading.get_ident(),
                  track=track if track is not None
                  else self._pick_track())
        sp.start_ns = start_ns
        sp.end_ns = start_ns + max(0, dur_ns)
        with self._lock:
            self._spans.append(sp)
        return sp

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # ---- cross-process transport -------------------------------------

    def to_wire(self) -> List[Dict[str, object]]:
        """Spans as wall-clock-anchored dicts, safe to pickle across a
        process boundary (``perf_counter_ns`` epochs are not)."""
        wall_now = time.time_ns()
        perf_now = time.perf_counter_ns()
        out: List[Dict[str, object]] = []
        for sp in self.spans:
            end = sp.end_ns if sp.end_ns is not None else perf_now
            out.append({
                "name": sp.name,
                "cat": sp.category,
                "wall_start_ns": wall_now - (perf_now - sp.start_ns),
                "dur_ns": end - sp.start_ns,
                "depth": sp.depth,
                "track": sp.track,
                "args": dict(sp.args),
            })
        return out

    def merge_wire(self, wire: List[Dict[str, object]], *,
                   origin: str = "worker") -> int:
        """Adopt spans exported by :meth:`to_wire` in another process.

        Request-track spans (``req:*``) keep their track so a worker's
        execution lands on the requesting request's Perfetto row; other
        tracks are prefixed with ``origin`` to keep processes distinct.
        Returns the number of spans merged.
        """
        if not self.enabled:
            return 0
        merged = []
        for entry in wire:
            start_ns = self._epoch_ns + (int(entry["wall_start_ns"])
                                         - self._wall_epoch_ns)
            track = entry.get("track") or origin
            if not str(track).startswith("req:"):
                track = f"{origin}:{track}"
            sp = Span(str(entry["name"]), str(entry["cat"]),
                      dict(entry.get("args") or {}),
                      depth=int(entry.get("depth", 0)),
                      tid=0, track=str(track))
            sp.start_ns = start_ns
            sp.end_ns = start_ns + int(entry["dur_ns"])
            merged.append(sp)
        with self._lock:
            self._spans.extend(merged)
        return len(merged)

    # ---- export -------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, object]:
        """The ``{"traceEvents": [...]}`` document Perfetto loads.

        Spans become ``ph: "X"`` (complete) events grouped by track
        label; ``thread_name`` metadata events (``ph: "M"``) give each
        track its human-readable name.  Timestamps are microseconds
        relative to tracer creation.
        """
        events: List[Dict[str, object]] = []
        tid_alias: Dict[str, int] = {}
        for sp in sorted(self.spans, key=lambda s: s.start_ns):
            label = sp.track if sp.track is not None \
                else f"thread-{sp.tid}"
            tid = tid_alias.setdefault(label, len(tid_alias) + 1)
            event: Dict[str, object] = {
                "name": sp.name,
                "cat": sp.category,
                "ph": "X",
                "ts": (sp.start_ns - self._epoch_ns) / 1e3,
                "dur": sp.duration_ns / 1e3,
                "pid": 1,
                "tid": tid,
            }
            if sp.args:
                event["args"] = dict(sp.args)
            events.append(event)
        meta = [{"name": "thread_name", "ph": "M", "pid": 1,
                 "tid": tid, "args": {"name": label}}
                for label, tid in sorted(tid_alias.items(),
                                         key=lambda kv: kv[1])]
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


_default_tracer = Tracer(enabled=False)
_current_tracer = _default_tracer


def get_tracer() -> Tracer:
    """The process-current tracer (disabled default unless a telemetry
    session has installed a recording one)."""
    return _current_tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as current (None restores the disabled
    default); returns the previously current tracer."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer if tracer is not None else _default_tracer
    return previous


def span(name: str, category: str = "repro", **args: object):
    """Open a span on the current tracer (the one instrumentation
    sites should use)."""
    return _current_tracer.span(name, category, **args)
