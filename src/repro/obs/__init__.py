"""Observability: metrics, span tracing, interval sampling, exporters.

The telemetry layer of the reproduction — the software counterpart of
the paper's counter/telemetry infrastructure (performance counters
feeding power models, the OCC's sampled power-proxy stream, Tracepoint
windowed captures).  Four pieces:

* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with a
  process-current registry;
* :mod:`repro.obs.tracing` — nested spans exportable as Chrome
  ``trace_event`` JSON (Perfetto-loadable);
* :mod:`repro.obs.sampler` — cycle-interval activity/proxy sampling of
  simulator runs (Fig. 15-style time series);
* :mod:`repro.obs.export` — JSON/CSV exporters plus per-run manifests.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      get_registry, set_registry)
from .tracing import Span, Tracer, get_tracer, set_tracer, span
from .sampler import CycleIntervalSampler, IntervalSample, proxy_series
from .export import (TelemetrySession, config_fingerprint,
                     samples_to_csv, write_json)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry",
    "Span", "Tracer", "get_tracer", "set_tracer", "span",
    "CycleIntervalSampler", "IntervalSample", "proxy_series",
    "TelemetrySession", "config_fingerprint", "samples_to_csv",
    "write_json",
]
