"""Observability: metrics, span tracing, interval sampling, exporters.

The telemetry layer of the reproduction — the software counterpart of
the paper's counter/telemetry infrastructure (performance counters
feeding power models, the OCC's sampled power-proxy stream, Tracepoint
windowed captures).  Four pieces:

* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with a
  process-current registry;
* :mod:`repro.obs.tracing` — nested spans exportable as Chrome
  ``trace_event`` JSON (Perfetto-loadable);
* :mod:`repro.obs.sampler` — cycle-interval activity/proxy sampling of
  simulator runs (Fig. 15-style time series);
* :mod:`repro.obs.export` — JSON/CSV exporters plus per-run manifests;
* :mod:`repro.obs.context` — request-scoped context (ids + latency
  segments) propagated via ``contextvars`` and explicit task tags;
* :mod:`repro.obs.prometheus` — text exposition of the registry for
  stock Prometheus scrapers;
* :mod:`repro.obs.requestlog` — JSON-lines access log for the serve
  stack.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      get_registry, set_registry)
from .tracing import Span, Tracer, get_tracer, set_tracer, span
from .sampler import CycleIntervalSampler, IntervalSample, proxy_series
from .export import (TelemetrySession, config_fingerprint,
                     samples_to_csv, validate_manifest, write_json)
from .context import (RequestContext, clean_request_id, current_request,
                      current_request_id, new_request_id, request_scope)
from .prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .prometheus import render_prometheus
from .requestlog import AccessLog, open_access_log, read_access_log

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry",
    "Span", "Tracer", "get_tracer", "set_tracer", "span",
    "CycleIntervalSampler", "IntervalSample", "proxy_series",
    "TelemetrySession", "config_fingerprint", "samples_to_csv",
    "validate_manifest", "write_json",
    "RequestContext", "clean_request_id", "current_request",
    "current_request_id", "new_request_id", "request_scope",
    "PROMETHEUS_CONTENT_TYPE", "render_prometheus",
    "AccessLog", "open_access_log", "read_access_log",
]
