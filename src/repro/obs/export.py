"""Exporters and run manifests.

A telemetry-enabled run leaves four artifacts in its output directory:

* ``manifest.json`` — provenance: package version, python/platform,
  command line, config fingerprints of every simulated run, seeds where
  known, wall-clock timings;
* ``metrics.json``  — the metrics-registry snapshot;
* ``trace.json``    — Chrome ``trace_event`` spans (open in Perfetto);
* ``samples.csv``   — the cycle-interval sample series, one row per
  interval with IPC, proxy power, and per-unit activity columns.

:class:`TelemetrySession` bundles the lifecycle: it installs a fresh
metrics registry and a recording tracer as the process-current ones,
hands out the shared :class:`~repro.obs.sampler.CycleIntervalSampler`,
and writes all four artifacts on exit.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.activity import UNIT_NAMES
from ..errors import TelemetryError
from .metrics import MetricsRegistry, set_registry
from .sampler import CycleIntervalSampler, IntervalSample
from .tracing import Tracer, set_tracer

MANIFEST_SCHEMA = 1

# manifest keys every schema-1 producer must write, with the type a
# validator may rely on (None = any JSON value)
_MANIFEST_REQUIRED = {
    "schema": int,
    "package": str,
    "version": str,
    "python": str,
    "platform": str,
    "argv": list,
    "interval_cycles": int,
    "configs": dict,
    "runs": list,
    "samples": int,
    "spans": int,
    "timings": dict,
}


def validate_manifest(manifest: Dict[str, object]) -> None:
    """Raise :class:`TelemetryError` unless ``manifest`` is a valid
    schema-``MANIFEST_SCHEMA`` document (required keys present and
    correctly typed; run entries carry config provenance)."""
    if not isinstance(manifest, dict):
        raise TelemetryError("manifest must be a JSON object")
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise TelemetryError(
            f"unsupported manifest schema {schema!r} "
            f"(expected {MANIFEST_SCHEMA})")
    for key, kind in _MANIFEST_REQUIRED.items():
        if key not in manifest:
            raise TelemetryError(f"manifest missing required key {key!r}")
        if kind is not None and not isinstance(manifest[key], kind):
            raise TelemetryError(
                f"manifest key {key!r} must be {kind.__name__}, got "
                f"{type(manifest[key]).__name__}")
    for i, run in enumerate(manifest["runs"]):
        if not isinstance(run, dict) or "config" not in run \
                or "config_sha256" not in run:
            raise TelemetryError(
                f"manifest run entry {i} lacks config provenance")
    timings = manifest["timings"]
    if "elapsed_seconds" not in timings:
        raise TelemetryError("manifest timings lack elapsed_seconds")


def config_fingerprint(config) -> str:
    """Stable short hash of a (dataclass) configuration."""
    try:
        payload = dataclasses.asdict(config)
    except TypeError:
        payload = repr(config)
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def write_json(path, payload) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False,
                               default=str) + "\n")
    return path


def samples_to_csv(samples: Sequence[IntervalSample], path) -> Path:
    """One row per interval; fixed schema so downstream tooling can rely
    on the columns."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    headers = (["run", "index", "cycle_start", "cycle_end", "cycles",
                "instructions", "ipc", "proxy_w"]
               + [f"util_{u}" for u in UNIT_NAMES])
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for s in samples:
            writer.writerow(
                [s.run, s.index, s.cycle_start, s.cycle_end, s.cycles,
                 s.instructions, f"{s.ipc:.6f}", f"{s.proxy_w:.6f}"]
                + [f"{s.unit_activity.get(u, 0.0):.6f}"
                   for u in UNIT_NAMES])
    return path


class TelemetrySession:
    """Scoped telemetry capture: registry + tracer + sampler + manifest.

    Use as a context manager::

        with TelemetrySession("out/") as session:
            simulate(config, trace, sampler=session.sampler)
        # out/ now holds manifest.json, metrics.json, trace.json,
        # samples.csv

    While the session is active its registry and tracer are the
    process-current ones, so instrumented library code (simulator,
    power models) reports into it without explicit plumbing.
    """

    def __init__(self, outdir, *, interval_cycles: int = 5000,
                 argv: Optional[Sequence[str]] = None):
        self.outdir = Path(outdir)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(enabled=True)
        self.sampler = CycleIntervalSampler(interval_cycles)
        self.argv = list(argv) if argv is not None else list(sys.argv[1:])
        self.extra: Dict[str, object] = {}
        self._runs: List[Dict[str, object]] = []
        self._seen_configs: Dict[str, str] = {}
        self._started: Optional[float] = None
        self._prev_registry = None
        self._prev_tracer = None
        self.paths: Dict[str, Path] = {}

    # ---- run registration ---------------------------------------------

    def record_run(self, config, trace_name: str, **info: object) -> None:
        """Note one simulated run (config fingerprint + metadata) for
        the manifest."""
        fp = config_fingerprint(config)
        self._seen_configs[config.name] = fp
        entry: Dict[str, object] = {"config": config.name,
                                    "config_sha256": fp,
                                    "trace": trace_name}
        entry.update(info)
        self._runs.append(entry)

    # ---- lifecycle ----------------------------------------------------

    def __enter__(self) -> "TelemetrySession":
        self._started = time.time()
        self._epoch = time.perf_counter()
        self._prev_registry = set_registry(self.registry)
        self._prev_tracer = set_tracer(self.tracer)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_registry(self._prev_registry)
        set_tracer(self._prev_tracer)
        if exc_type is None:
            self.finalize()

    def manifest(self) -> Dict[str, object]:
        from .. import __version__
        elapsed = (time.perf_counter() - self._epoch) \
            if self._started is not None else 0.0
        top_spans = [
            {"name": sp.name, "category": sp.category,
             "duration_s": round(sp.duration_s, 6)}
            for sp in self.tracer.spans if sp.depth == 0]
        return {
            "schema": MANIFEST_SCHEMA,
            "package": "repro",
            "version": __version__,
            "created_unix": self._started,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "argv": self.argv,
            "interval_cycles": self.sampler.interval_cycles,
            "configs": dict(sorted(self._seen_configs.items())),
            "runs": self._runs,
            "samples": len(self.sampler.samples),
            "spans": len(self.tracer.spans),
            "timings": {"elapsed_seconds": round(elapsed, 6),
                        "top_level_spans": top_spans},
            **self.extra,
        }

    def finalize(self) -> Dict[str, Path]:
        """Write all artifacts; returns name -> path."""
        if self._started is None:
            raise TelemetryError("session was never entered")
        self.outdir.mkdir(parents=True, exist_ok=True)
        self.paths = {
            "manifest": write_json(self.outdir / "manifest.json",
                                   self.manifest()),
            "metrics": write_json(self.outdir / "metrics.json",
                                  self.registry.collect()),
            "trace": write_json(self.outdir / "trace.json",
                                self.tracer.to_chrome_trace()),
            "samples": samples_to_csv(self.sampler.samples,
                                      self.outdir / "samples.csv"),
        }
        return self.paths
