"""Cycle-interval sampling of the core timing model.

The software analog of the paper's OCC telemetry loop (Section IV,
Fig. 15): the on-chip controller reads the power proxy and activity
counters every control interval, seeing the workload as a *time series*
rather than one end-of-run aggregate.  A
:class:`CycleIntervalSampler` passed to
:func:`repro.core.pipeline.simulate` snapshots the activity stream every
``interval_cycles`` simulated cycles and derives, per interval:

* instruction throughput (interval IPC),
* per-unit activity (utilization estimates over the interval alone),
* the power-proxy value for the interval — by default the APEX
  count-based estimate, the same math the hardware proxy approximates.

Because the timing model walks instructions in program order, interval
boundaries land on the first observation at or after each multiple of
``interval_cycles``; widths are therefore *approximately* the requested
interval (exact boundaries would require cycle-stepped simulation).
Sampling is deterministic: the same config and trace produce the same
series, bit for bit.

One sampler instance can span many runs (a suite, a P9-vs-P10
comparison); each ``begin()`` opens a new run segment and samples carry
their run label, so exports interleave cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.activity import ActivityCounters, UNIT_NAMES
from ..errors import TelemetryError

# proxy evaluator signature: (config, interval_activity) -> watts
ProxyFn = Callable[[object, ActivityCounters], float]


@dataclass
class IntervalSample:
    """One telemetry interval of one run."""

    run: str                     # "<config>:<trace>" label
    index: int                   # interval number within the run
    cycle_start: int
    cycle_end: int
    instructions: int
    ipc: float
    proxy_w: float
    unit_activity: Dict[str, float] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.cycle_end - self.cycle_start


class CycleIntervalSampler:
    """Snapshots activity every ~N simulated cycles.

    The simulator calls :meth:`begin` once per run, :meth:`observe`
    as simulated time advances, and :meth:`finalize` at run end (which
    closes the last partial interval).
    """

    def __init__(self, interval_cycles: int = 5000, *,
                 proxy: Optional[ProxyFn] = None):
        if interval_cycles <= 0:
            raise TelemetryError("interval_cycles must be positive")
        self.interval_cycles = interval_cycles
        self.samples: List[IntervalSample] = []
        self._proxy = proxy
        self._config = None
        self._run: Optional[str] = None
        self._index = 0
        self._mark_cycle = 0
        self._mark_events: Dict[str, int] = {}
        self._next_boundary = interval_cycles

    # ---- simulator-facing hooks ---------------------------------------

    def begin(self, config, trace_name: str) -> None:
        """Open a new run segment (resets the interval cursor)."""
        self._config = config
        self._run = f"{config.name}:{trace_name}"
        self._index = 0
        self._mark_cycle = 0
        self._mark_events = {}
        self._next_boundary = self.interval_cycles

    def observe(self, cycle: int, activity: ActivityCounters) -> None:
        """Called as simulated time advances; emits a sample whenever a
        boundary has been crossed.  Cheap when between boundaries."""
        if cycle >= self._next_boundary:
            self._emit(cycle, activity)

    def finalize(self, cycle: int, activity: ActivityCounters) -> None:
        """Close the trailing partial interval (if it has any width)."""
        if cycle > self._mark_cycle:
            self._emit(cycle, activity)

    # ---- internals ----------------------------------------------------

    def _emit(self, cycle: int, activity: ActivityCounters) -> None:
        if self._run is None:
            raise TelemetryError("sampler.observe before begin()")
        width = cycle - self._mark_cycle
        if width <= 0:
            return
        delta = ActivityCounters()
        delta.cycles = width
        events = delta.events
        mark = self._mark_events
        for name, total in activity.events.items():
            events[name] = total - mark.get(name, 0)
        delta.instructions = events["complete_instr"]

        # Busy-cycle derivation and the APEX proxy live above core in
        # the layering; import lazily to keep core -> obs import-safe.
        from ..core.pipeline import derive_busy_cycles
        derive_busy_cycles(delta, self._config, width)
        if self._proxy is not None:
            proxy_w = self._proxy(self._config, delta)
        else:
            from ..power.apex import apex_power_from_activity
            proxy_w = apex_power_from_activity(self._config, delta)

        sample = IntervalSample(
            run=self._run,
            index=self._index,
            cycle_start=self._mark_cycle,
            cycle_end=cycle,
            instructions=delta.instructions,
            ipc=delta.instructions / width,
            proxy_w=proxy_w,
            unit_activity={u: delta.utilization(u) for u in UNIT_NAMES},
            events=dict(events))
        # Fault-injection hook: an active campaign can drop, freeze, or
        # corrupt the interval (telemetry loss).  Cursors advance either
        # way, so a lost interval leaves a gap exactly like a lost OCC
        # reading; with no campaign active the sample passes untouched.
        from ..resilience.injector import get_injector
        inj = get_injector()
        if inj is not None:
            sample = inj.on_sample(sample)
        if sample is not None:
            self.samples.append(sample)
        self._index += 1
        self._mark_cycle = cycle
        self._mark_events = dict(activity.events)
        # next boundary: first multiple of the interval beyond 'cycle'
        steps = cycle // self.interval_cycles + 1
        self._next_boundary = steps * self.interval_cycles

    # ---- consumption helpers ------------------------------------------

    @property
    def runs(self) -> List[str]:
        """Run labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for s in self.samples:
            seen.setdefault(s.run, None)
        return list(seen)

    def run_samples(self, run: str) -> List[IntervalSample]:
        return [s for s in self.samples if s.run == run]

    def series(self, fieldname: str,
               run: Optional[str] = None) -> List[float]:
        """One sample attribute as a flat list (Fig. 15-style series)."""
        samples = self.samples if run is None else self.run_samples(run)
        try:
            return [getattr(s, fieldname) for s in samples]
        except AttributeError:
            raise TelemetryError(
                f"unknown sample field: {fieldname!r}") from None


def proxy_series(samples: Sequence[IntervalSample]) -> List[float]:
    """The proxy-power time series of a sample list (convenience for
    Fig. 15-style plots and the OCC loop)."""
    return [s.proxy_w for s in samples]
