"""Prometheus text exposition (format 0.0.4) for a MetricsRegistry.

The registry's JSON snapshot is the repo-native format; this module
renders the same data the way a stock Prometheus scraper expects, so
``GET /metrics`` with ``Accept: text/plain`` plugs straight into a
standard scrape config.  Differences the renderer papers over:

* registry histogram buckets are per-bucket counts; Prometheus
  ``_bucket`` series are cumulative and always end with ``le="+Inf"``;
* label values need the exposition-format escaping (backslash, double
  quote, newline);
* snapshot-only fields (``min``/``max``/``quantiles``) have no place in
  the classic histogram exposition and are dropped.
"""

from __future__ import annotations

from typing import Dict, List

from .metrics import MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_ESCAPES = (("\\", "\\\\"), ('"', '\\"'), ("\n", "\\n"))


def _escape(value: str) -> str:
    for raw, cooked in _ESCAPES:
        value = value.replace(raw, cooked)
    return value


def _labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape(str(v))}"'
             for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    f = float(value)
    return repr(int(f)) if f.is_integer() else repr(f)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (one trailing \\n)."""
    lines: List[str] = []
    snapshot = registry.collect()
    for name, doc in snapshot.items():
        kind = doc["kind"]
        if doc["description"]:
            lines.append(f"# HELP {name} {_escape(doc['description'])}")
        lines.append(f"# TYPE {name} {kind}")
        for series in doc["series"]:
            labels = series.get("labels", {})
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_labels(labels)} {_num(series['value'])}")
            elif kind == "histogram":
                cumulative = 0
                for bucket in series["buckets"]:
                    cumulative += bucket["count"]
                    le = bucket["le"]
                    le_str = "+Inf" if le == "+Inf" else _num(float(le))
                    le_label = 'le="' + le_str + '"'
                    lines.append(
                        f"{name}_bucket{_labels(labels, le_label)} "
                        f"{cumulative}")
                lines.append(
                    f"{name}_sum{_labels(labels)} {_num(series['sum'])}")
                lines.append(
                    f"{name}_count{_labels(labels)} {series['count']}")
    return "\n".join(lines) + "\n" if lines else "\n"
