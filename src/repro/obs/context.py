"""Request-scoped observability context.

One :class:`RequestContext` travels with a served request from the
moment the HTTP front end accepts it until the response is written —
across coroutine boundaries (``contextvars`` propagate through asyncio
tasks and ``asyncio.to_thread``) and, by explicit tagging, into the
execution engine's worker processes.  Everything request-scoped hangs
off it:

* the request id (client-supplied ``X-Request-Id`` or generated here),
  which the tracer stamps onto every span opened while the context is
  active, so one Perfetto track shows the whole request;
* the latency breakdown: the context tiles the request's wall time
  into ``queue`` (validation / admission / trace build), ``batch``
  (micro-batching window wait) and ``exec`` (engine run) segments that
  the access log reports per request;
* cache attribution (did the engine answer from the content-addressed
  cache?).

The context is deliberately cheap: when nothing installs one (every
non-serve code path), the contextvar read in the tracer is the only
cost, and the disabled-tracer fast path does not even do that.
"""

from __future__ import annotations

import itertools
import os
import re
import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import Dict, Iterator, List, Optional, Tuple

_REQUEST: ContextVar[Optional["RequestContext"]] = ContextVar(
    "repro_request_context", default=None)

# request ids must stay printable and bounded: they end up in log
# lines, trace args, and response headers
_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:\-]{0,63}$")
_SEQ = itertools.count()
_PREFIX = os.urandom(3).hex()


def new_request_id() -> str:
    """A process-unique request id (``req-<rand>-<seq>``)."""
    return f"req-{_PREFIX}-{next(_SEQ):06x}"


def clean_request_id(raw: Optional[str]) -> Optional[str]:
    """A client-supplied id, or None when absent/unusable."""
    if raw is None:
        return None
    raw = raw.strip()
    return raw if _ID_RE.match(raw) else None


class RequestContext:
    """Per-request id + latency-segment accounting.

    The segment model tiles the request's lifetime::

        accept ... submit ........ batch start ........ done ... reply
        |-queue-----|--batch-------|---exec-------------|-finalize-|

    ``note_result`` may be called once per engine task (a compare
    request submits many); the breakdown uses the earliest submit, the
    earliest batch start, and the latest completion, so concurrent
    tasks are not double-counted and the three segments still tile the
    interval they jointly cover.
    """

    __slots__ = ("request_id", "route", "method", "started_ns",
                 "first_submit_ns", "first_batch_ns", "last_done_ns",
                 "cache_hit", "sources")

    def __init__(self, request_id: str, *, route: str = "",
                 method: str = ""):
        self.request_id = request_id
        self.route = route
        self.method = method
        self.started_ns = time.perf_counter_ns()
        self.first_submit_ns: Optional[int] = None
        self.first_batch_ns: Optional[int] = None
        self.last_done_ns: Optional[int] = None
        self.cache_hit = False
        self.sources: List[str] = []

    # ---- accounting ---------------------------------------------------

    def note_result(self, submit_ns: int, batch_start_ns: Optional[int],
                    done_ns: int, source: Optional[str] = None) -> None:
        """Record one engine-task (or fast-path) round trip."""
        if self.first_submit_ns is None \
                or submit_ns < self.first_submit_ns:
            self.first_submit_ns = submit_ns
        if batch_start_ns is not None:
            start = max(batch_start_ns, submit_ns)
            if self.first_batch_ns is None \
                    or start < self.first_batch_ns:
                self.first_batch_ns = start
        if self.last_done_ns is None or done_ns > self.last_done_ns:
            self.last_done_ns = done_ns
        if source is not None:
            self.sources.append(source)
            if source == "cache":
                self.cache_hit = True

    # ---- reporting ----------------------------------------------------

    def segments_ns(self, end_ns: Optional[int] = None,
                    ) -> Dict[str, int]:
        """``{"queue": ns, "batch": ns, "exec": ns, "finalize": ns}``;
        the four values sum exactly to the request's wall time."""
        end = end_ns if end_ns is not None else time.perf_counter_ns()
        total = max(0, end - self.started_ns)
        if self.first_submit_ns is None or self.last_done_ns is None:
            # never reached the engine (healthz, validation error):
            # everything it did counts as queue-side work
            return {"queue": total, "batch": 0, "exec": 0,
                    "finalize": 0}
        submit = min(max(self.first_submit_ns, self.started_ns), end)
        batch_start = submit if self.first_batch_ns is None \
            else min(max(self.first_batch_ns, submit), end)
        done = min(max(self.last_done_ns, batch_start), end)
        return {"queue": submit - self.started_ns,
                "batch": batch_start - submit,
                "exec": done - batch_start,
                "finalize": end - done}

    def segment_spans(self, end_ns: Optional[int] = None,
                      ) -> List[Tuple[str, int, int]]:
        """``(name, start_perf_ns, dur_ns)`` per non-empty segment, in
        timeline order — the per-request rows of the Perfetto view."""
        segs = self.segments_ns(end_ns)
        out: List[Tuple[str, int, int]] = []
        cursor = self.started_ns
        for name in ("queue", "batch", "exec"):
            dur = segs[name]
            if dur > 0:
                out.append((name, cursor, dur))
            cursor += dur
        return out


def current_request() -> Optional[RequestContext]:
    """The active request context, or None outside a request."""
    return _REQUEST.get()


def current_request_id() -> Optional[str]:
    ctx = _REQUEST.get()
    return ctx.request_id if ctx is not None else None


def activate(ctx: Optional[RequestContext]) -> Token:
    """Install ``ctx`` as the active request; returns the reset token."""
    return _REQUEST.set(ctx)


def deactivate(token: Token) -> None:
    _REQUEST.reset(token)


@contextmanager
def request_scope(request) -> Iterator[Optional[RequestContext]]:
    """Run a block under a request context.

    ``request`` may be a :class:`RequestContext`, a bare request-id
    string (a lightweight context is created — how engine workers adopt
    the requesting id), or None (no-op).
    """
    if request is None:
        yield None
        return
    ctx = request if isinstance(request, RequestContext) \
        else RequestContext(str(request))
    token = activate(ctx)
    try:
        yield ctx
    finally:
        deactivate(token)
