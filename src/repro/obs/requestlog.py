"""Structured JSON-lines access log for the simulation service.

One line per served request, written at response time::

    {"id": "req-...", "route": "/v1/simulate", "method": "POST",
     "status": 200, "ok": true, "outcome": "ok", "degraded": false,
     "source": "engine", "cache_hit": false, "queue_ms": 0.2,
     "batch_ms": 1.1, "exec_ms": 8.4, "finalize_ms": 0.1,
     "total_ms": 9.8, "seq": 17}

``queue_ms + batch_ms + exec_ms + finalize_ms`` tiles ``total_ms``
exactly (the segments come from one :class:`~repro.obs.context.
RequestContext`), so the log is also the ground truth the acceptance
check sums against.  Lines are append-only, flushed per record, and
keyed by the same request id the trace and the client log carry.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union


class AccessLog:
    """Append-only JSON-lines sink; safe to share across threads."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._seq = 0

    def write(self, record: Dict[str, object]) -> None:
        with self._lock:
            if self._fh.closed:
                return
            self._seq += 1
            record = dict(record, seq=self._seq)
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_access_log(path: Union[str, Path],
                    ) -> List[Dict[str, object]]:
    """Parse an access log back into records (blank lines skipped)."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def open_access_log(path: Optional[Union[str, Path]],
                    ) -> Optional[AccessLog]:
    """An :class:`AccessLog` for ``path``, or None when unset."""
    return AccessLog(path) if path else None
