"""Labeled metrics: counters, gauges, and histograms.

The registry is the in-process analog of the paper's performance-counter
infrastructure: every subsystem that wants to expose "how often / how
long / how much" does it through a named metric instead of an ad-hoc
attribute.  A process-global default registry makes instrumentation
drop-in (``get_registry().counter("repro_runs_total").inc()``); the
telemetry session installs a fresh registry per run so exports are
scoped to one CLI invocation.

Metrics are labeled: one ``Counter`` holds a family of monotonically
increasing series keyed by label sets, Prometheus-style, so
``runs.inc(config="p10")`` and ``runs.inc(config="p9")`` stay separate.
All state is plain Python floats/dicts — snapshot via
:meth:`MetricsRegistry.collect`, which returns a JSON-serializable tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TelemetryError

_LabelKey = Tuple[Tuple[str, str], ...]

# The canonical metric-name table: every metric the library itself
# registers, with its kind.  ``repro lint`` rule R006 statically checks
# that each ``.counter()/.gauge()/.histogram()`` literal in src/ appears
# here with the matching kind — the compile-time mirror of the runtime
# "one name = one kind" registry semantics below.  Add new wiring names
# here first.
WELL_KNOWN_METRICS: Dict[str, str] = {
    "repro_runs_total": "counter",
    "repro_run_seconds": "histogram",
    "repro_simulations_total": "counter",
    "repro_simulated_instructions_total": "counter",
    "repro_power_eval_seconds": "histogram",
    "repro_occ_degraded_ticks_total": "counter",
    "repro_occ_failsafe_ticks_total": "counter",
    "repro_faults_injected_total": "counter",
    "repro_campaign_runs_total": "counter",
    "repro_exec_tasks_total": "counter",
    "repro_exec_cache_hits_total": "counter",
    "repro_exec_cache_misses_total": "counter",
    "repro_exec_batch_seconds": "histogram",
    "repro_serve_requests_total": "counter",
    "repro_serve_request_seconds": "histogram",
    "repro_serve_batches_total": "counter",
    "repro_serve_batch_size": "histogram",
    "repro_serve_singleflight_joins_total": "counter",
    "repro_serve_shed_total": "counter",
    "repro_serve_inflight": "gauge",
    "repro_serve_proxy_estimates_total": "counter",
    "repro_serve_request_stage_seconds": "histogram",
    "repro_serve_slo_breaches_total": "counter",
    "repro_exec_cache_corrupt_total": "counter",
    "repro_exec_pool_rebuilds_total": "counter",
    "repro_exec_task_retries_total": "counter",
    "repro_serve_breaker_transitions_total": "counter",
    "repro_serve_breaker_state": "gauge",
    "repro_chaos_faults_fired_total": "counter",
    "repro_fast_simulations_total": "counter",
    "repro_cluster_requests_total": "counter",
    "repro_cluster_request_seconds": "histogram",
    "repro_cluster_singleflight_joins_total": "counter",
    "repro_cluster_failovers_total": "counter",
    "repro_cluster_tick_errors_total": "counter",
    "repro_cluster_worker_kills_total": "counter",
    "repro_cluster_worker_restarts_total": "counter",
}

# Quantiles reported in every histogram snapshot (and scraped by the
# SLO tooling).  Estimated from the bucket counts, so accuracy is
# bucket-resolution-bound — fine for dashboards, not for billing.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Common naming/description plumbing for all metric kinds."""

    kind = "metric"

    def __init__(self, name: str, description: str = ""):
        if not name or any(c.isspace() for c in name):
            raise TelemetryError(f"invalid metric name: {name!r}")
        self.name = name
        self.description = description


class Counter(_Metric):
    """A monotonically increasing value (per label set)."""

    kind = "counter"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._series: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (amount={amount})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._series.values())

    def collect(self) -> List[Dict[str, object]]:
        return [{"labels": dict(key), "value": val}
                for key, val in sorted(self._series.items())]


class Gauge(_Metric):
    """A point-in-time value that can go up or down (per label set)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._series: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def collect(self) -> List[Dict[str, object]]:
        return [{"labels": dict(key), "value": val}
                for key, val in sorted(self._series.items())]


# Default histogram buckets: wide log-spaced range that covers both
# sub-millisecond model evaluations and multi-second suite runs.
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)   # +1 = overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_Metric):
    """A distribution with fixed upper-bound buckets (per label set)."""

    kind = "histogram"

    def __init__(self, name: str, description: str = "",
                 buckets: Optional[Sequence[float]] = None):
        super().__init__(name, description)
        bounds = tuple(buckets if buckets is not None else DEFAULT_BUCKETS)
        if not bounds or list(bounds) != sorted(bounds):
            raise TelemetryError(
                f"histogram {name} buckets must be ascending and non-empty")
        self.buckets = bounds
        self._series: Dict[_LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        series.bucket_counts[idx] += 1
        series.count += 1
        series.sum += value
        series.min = min(series.min, value)
        series.max = max(series.max, value)

    def _quantile(self, series: "_HistogramSeries", q: float) -> float:
        """Bucket-interpolated quantile estimate, clamped to the
        observed [min, max] so tiny samples don't report a bucket
        bound nothing ever reached."""
        if not series.count:
            return 0.0
        rank = q * series.count
        seen = 0.0
        lower = 0.0
        for i, n in enumerate(series.bucket_counts):
            if n == 0:
                continue
            upper = self.buckets[i] if i < len(self.buckets) \
                else series.max
            if seen + n >= rank:
                frac = (rank - seen) / n
                est = lower + (upper - lower) * frac
                return min(max(est, series.min), series.max)
            seen += n
            lower = upper
        return series.max

    def quantile(self, q: float, **labels: object) -> float:
        """Estimated ``q``-quantile (0 < q < 1) for one label set."""
        if not 0.0 < q < 1.0:
            raise TelemetryError(f"quantile must be in (0, 1), got {q}")
        series = self._series.get(_label_key(labels))
        if series is None:
            return 0.0
        return self._quantile(series, q)

    def summary(self, **labels: object) -> Dict[str, float]:
        series = self._series.get(_label_key(labels))
        if series is None or not series.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0}
        return {"count": series.count, "sum": series.sum,
                "mean": series.sum / series.count,
                "min": series.min, "max": series.max}

    def collect(self) -> List[Dict[str, object]]:
        out = []
        for key, series in sorted(self._series.items()):
            out.append({
                "labels": dict(key),
                "count": series.count,
                "sum": series.sum,
                "min": series.min if series.count else 0.0,
                "max": series.max if series.count else 0.0,
                "buckets": [
                    {"le": bound, "count": n} for bound, n in
                    zip(list(self.buckets) + ["+Inf"],
                        series.bucket_counts)],
                "quantiles": {
                    f"p{int(q * 100)}": self._quantile(series, q)
                    for q in SNAPSHOT_QUANTILES},
            })
        return out


class MetricsRegistry:
    """A namespace of metrics.  Registration is idempotent per kind:
    asking twice for the same counter returns the same object; asking
    for an existing name as a different kind raises."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, description: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            return existing
        metric = cls(name, description, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(self, name: str, description: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, description,
                                   buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> Dict[str, object]:
        """JSON-serializable snapshot of every metric."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[name] = {"kind": metric.kind,
                         "description": metric.description,
                         "series": metric.collect()}
        return out


_default_registry = MetricsRegistry()
_current_registry = _default_registry


def get_registry() -> MetricsRegistry:
    """The process-current registry (global default unless a telemetry
    session has installed its own)."""
    return _current_registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as current (None restores the global
    default); returns the previously current registry."""
    global _current_registry
    previous = _current_registry
    _current_registry = registry if registry is not None \
        else _default_registry
    return previous
