"""PFLY / CLY analysis (Sections I, III-C, IV-A).

The paper feeds absolute APEX power projections into **PFLY**
(Power-Frequency Limited Yield) and **CLY** (Core Limited Yield)
"for product offering consideration": given manufacturing variation in
leakage and achievable frequency, what fraction of dies can be sold at
a given (frequency, power, good-core-count) offering?

The model:

* per-die process variation draws a frequency capability factor and a
  leakage factor from correlated lognormal-ish distributions (fast dies
  leak more — the classic frequency/leakage correlation);
* per-core defect/variation independently disables cores (CLY);
* a die passes a (frequency, socket power) offering when enough cores
  are functional and the socket power at that frequency fits the
  envelope.

Deterministic given the seed, like every sampler in this library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ModelError
from ..power.scaling import VFCurve, VFPoint


@dataclass
class ProcessVariation:
    """Die-to-die and core-to-core variation parameters."""

    frequency_sigma: float = 0.05       # die frequency capability spread
    leakage_sigma: float = 0.30         # die leakage spread (lognormal)
    freq_leak_correlation: float = 0.6  # fast dies leak more
    core_defect_rate: float = 0.04      # probability a core is dead
    cores_per_die: int = 16             # physical cores fabricated

    def __post_init__(self) -> None:
        if not 0.0 <= self.core_defect_rate < 1.0:
            raise ModelError("defect rate must be in [0, 1)")
        if not -1.0 <= self.freq_leak_correlation <= 1.0:
            raise ModelError("correlation must be in [-1, 1]")


@dataclass
class Offering:
    """One product point: what the customer buys."""

    name: str
    frequency_ghz: float
    good_cores: int                 # cores that must be functional
    socket_power_budget_w: float


@dataclass
class DieSample:
    """One simulated die."""

    frequency_capability_ghz: float
    leakage_scale: float
    functional_cores: int


@dataclass
class YieldResult:
    offering: Offering
    yield_fraction: float
    limited_by: Dict[str, float]    # loss attribution

    @property
    def loss_fraction(self) -> float:
        return 1.0 - self.yield_fraction


def sample_dies(variation: ProcessVariation, count: int, *,
                nominal_ghz: float = 4.0, seed: int = 11,
                ) -> List[DieSample]:
    """Draw a population of dies under the variation model."""
    if count <= 0:
        raise ModelError("need a positive die count")
    rng = np.random.default_rng(seed)
    z_freq = rng.standard_normal(count)
    z_ind = rng.standard_normal(count)
    rho = variation.freq_leak_correlation
    z_leak = rho * z_freq + np.sqrt(1 - rho * rho) * z_ind
    freq = nominal_ghz * (1.0 + variation.frequency_sigma * z_freq)
    leak = np.exp(variation.leakage_sigma * z_leak)
    cores = rng.binomial(variation.cores_per_die,
                         1.0 - variation.core_defect_rate, count)
    return [DieSample(frequency_capability_ghz=float(f),
                      leakage_scale=float(l),
                      functional_cores=int(c))
            for f, l, c in zip(freq, leak, cores)]


class YieldAnalyzer:
    """Evaluates offerings against a die population.

    ``core_dynamic_w`` / ``core_leakage_w`` describe the per-core power
    of the *target workload* at the nominal point — exactly the numbers
    APEX + Einspower produce and the paper says feed "into PFLY and CLY
    analysis for product offering consideration".
    """

    def __init__(self, *, core_dynamic_w: float, core_leakage_w: float,
                 uncore_power_w: float = 50.0,
                 nominal_ghz: float = 4.0,
                 curve: VFCurve = None):
        if core_dynamic_w <= 0 or core_leakage_w < 0:
            raise ModelError("invalid core power decomposition")
        self.core_dynamic_w = core_dynamic_w
        self.core_leakage_w = core_leakage_w
        self.uncore_power_w = uncore_power_w
        self.nominal_ghz = nominal_ghz
        self.curve = curve or VFCurve(VFPoint(nominal_ghz, 1.0))

    def socket_power(self, die: DieSample, offering: Offering) -> float:
        """Socket power of a die running the offering's configuration."""
        v = self.curve.voltage_at(offering.frequency_ghz)
        v0 = self.curve.voltage_at(self.nominal_ghz)
        dyn_scale = (v / v0) ** 2 * (offering.frequency_ghz
                                     / self.nominal_ghz)
        leak_scale = (v / v0) ** 2 * die.leakage_scale
        cores = offering.good_cores
        return (cores * (self.core_dynamic_w * dyn_scale
                         + self.core_leakage_w * leak_scale)
                + self.uncore_power_w)

    def evaluate(self, offering: Offering,
                 dies: Sequence[DieSample]) -> YieldResult:
        """PFLY + CLY for one offering over a die population."""
        if not dies:
            raise ModelError("need at least one die")
        passed = 0
        losses = {"frequency": 0, "cores": 0, "power": 0}
        for die in dies:
            if die.frequency_capability_ghz < offering.frequency_ghz:
                losses["frequency"] += 1
                continue
            if die.functional_cores < offering.good_cores:
                losses["cores"] += 1
                continue
            if self.socket_power(die, offering) \
                    > offering.socket_power_budget_w:
                losses["power"] += 1
                continue
            passed += 1
        n = len(dies)
        return YieldResult(
            offering=offering,
            yield_fraction=passed / n,
            limited_by={k: v / n for k, v in losses.items()})

    def offering_sweep(self, offerings: Sequence[Offering],
                       dies: Sequence[DieSample]) -> List[YieldResult]:
        return [self.evaluate(o, dies) for o in offerings]


def find_max_frequency_offering(analyzer: YieldAnalyzer,
                                dies: Sequence[DieSample], *,
                                good_cores: int,
                                socket_power_budget_w: float,
                                min_yield: float = 0.8,
                                step_ghz: float = 0.05) -> Offering:
    """Highest-frequency offering that still meets the yield floor —
    the pivot-point search behind product definition."""
    if not 0 < min_yield <= 1:
        raise ModelError("min_yield must be in (0, 1]")
    best = None
    freq = analyzer.curve.fmin_ghz
    while freq <= analyzer.curve.fmax_ghz + 1e-9:
        offering = Offering(
            name=f"{good_cores}c@{freq:.2f}GHz",
            frequency_ghz=round(freq, 4),
            good_cores=good_cores,
            socket_power_budget_w=socket_power_budget_w)
        result = analyzer.evaluate(offering, dies)
        if result.yield_fraction >= min_yield:
            best = offering
        freq += step_ghz
    if best is None:
        raise ModelError("no offering meets the yield floor")
    return best
