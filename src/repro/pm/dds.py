"""Digital Droop Sensor (Section IV-B).

A CPM-style sensor embedded in each core measures the timing margin
seen by the transistors at sub-nanosecond timescales; when the margin
collapses (a voltage droop caused by a sudden current swing), it
triggers the coarse throttle controls within a few cycles.

The model: supply voltage responds to current steps through a 2nd-order
(RLC-ish) response; the sensor compares instantaneous margin against a
trip threshold with programmable hysteresis.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List

from ..errors import ModelError, SimulationError


@dataclass
class DroopEvent:
    cycle: int
    depth_mv: float
    duration_cycles: int


class SupplyModel:
    """Second-order supply response to per-cycle current draw.

    ``v(t)`` sags when current rises faster than the regulator responds;
    parameters give a resonance in the ~50-cycle range like the
    mid-frequency droop the paper's references characterize.
    """

    def __init__(self, nominal_mv: float = 1000.0, *,
                 impedance_mv_per_a: float = 8.0,
                 damping: float = 0.12, stiffness: float = 0.02):
        self.nominal_mv = nominal_mv
        self.impedance = impedance_mv_per_a
        self.damping = damping
        self.stiffness = stiffness
        self._sag = 0.0
        self._sag_velocity = 0.0
        self._last_current = 0.0

    def step(self, current_a: float) -> float:
        """Advance one cycle; returns the instantaneous voltage (mV).

        A NaN/inf current would poison the sag integrator state for
        every later cycle, so non-finite inputs are rejected up front.
        """
        if not math.isfinite(current_a):
            raise SimulationError(
                f"non-finite current fed to SupplyModel.step: "
                f"{current_a!r}")
        di = current_a - self._last_current
        self._last_current = current_a
        # current steps kick the sag; the grid spring-dampens back
        self._sag_velocity += di * self.impedance * self.stiffness * 10
        self._sag_velocity -= self.stiffness * self._sag
        self._sag_velocity *= (1.0 - self.damping)
        self._sag += self._sag_velocity
        if self._sag < 0:
            self._sag = 0.0
        # the sensor measures dynamic margin relative to the DC
        # operating point, so only the transient sag is visible
        return self.nominal_mv - self._sag


class DigitalDroopSensor:
    """Trip detector over the supply model's margin."""

    def __init__(self, *, trip_margin_mv: float = 35.0,
                 release_margin_mv: float = 20.0,
                 nominal_mv: float = 1000.0):
        if release_margin_mv >= trip_margin_mv:
            raise ModelError("release margin must be below trip margin")
        self.trip_mv = nominal_mv - trip_margin_mv
        self.release_mv = nominal_mv - release_margin_mv
        self.tripped = False
        self.events: List[DroopEvent] = []
        self._event_start = 0
        self._event_depth = 0.0
        self._cycle = 0

    def sample(self, voltage_mv: float) -> bool:
        """Feed one cycle's voltage; returns True while throttling is
        requested."""
        self._cycle += 1
        if not self.tripped and voltage_mv < self.trip_mv:
            self.tripped = True
            self._event_start = self._cycle
            self._event_depth = voltage_mv
        elif self.tripped:
            self._event_depth = min(self._event_depth, voltage_mv)
            if voltage_mv > self.release_mv:
                self.tripped = False
                self.events.append(DroopEvent(
                    cycle=self._event_start,
                    depth_mv=self.trip_mv - self._event_depth
                    + (self.release_mv - self.trip_mv),
                    duration_cycles=self._cycle - self._event_start))
        return self.tripped


def simulate_droop(currents_a, *, sensor: DigitalDroopSensor = None,
                   supply: SupplyModel = None):
    """Run a current trace through supply + sensor; returns
    (voltages, throttle_flags, sensor)."""
    sensor = sensor or DigitalDroopSensor()
    supply = supply or SupplyModel()
    voltages: List[float] = []
    flags: List[bool] = []
    for current in currents_a:
        v = supply.step(current)
        voltages.append(v)
        flags.append(sensor.sample(v))
    return voltages, flags, sensor
