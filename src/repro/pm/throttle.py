"""Core throttling (Section IV-B).

Two flavours, as shipped:

* **fine-grained instruction throttling** — for fixed-frequency
  operation (or at Fmin): an adaptive duty-cycle controller on dispatch
  bandwidth keeps the core under its current/thermal limit, with the
  power proxy closing the loop ("core power proxy feedback allows for
  faster learning");
* **coarse throttle points** — fast-engage controls at pipeline control
  points that respond to droop events flagged by the DDS within a few
  cycles.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import List

from ..errors import ModelError, SimulationError


@dataclass
class ThrottleState:
    cycle: int
    duty: float                  # fraction of dispatch slots allowed
    power_estimate_w: float
    limit_w: float


class FineGrainThrottle:
    """Adaptive duty-cycle controller driven by power-proxy feedback."""

    def __init__(self, limit_w: float, *, min_duty: float = 0.125,
                 step: float = 0.05):
        if limit_w <= 0:
            raise ModelError("limit must be positive")
        if not 0 < min_duty <= 1:
            raise ModelError("min_duty must be in (0, 1]")
        self.limit_w = limit_w
        self.min_duty = min_duty
        self.step = step
        self.duty = 1.0
        self.history: List[ThrottleState] = []
        self._cycle = 0

    def update(self, proxy_power_w: float) -> float:
        """Feed one proxy reading; returns the new dispatch duty.

        A NaN/inf reading would silently freeze or saturate the duty
        controller (NaN fails both comparisons below) and land in the
        history; telemetry loss must be handled by the caller (the OCC
        staleness path), not absorbed here.
        """
        if not math.isfinite(proxy_power_w):
            raise SimulationError(
                f"non-finite proxy power fed to FineGrainThrottle."
                f"update: {proxy_power_w!r}")
        self._cycle += 1
        if proxy_power_w > self.limit_w:
            overshoot = proxy_power_w / self.limit_w - 1.0
            self.duty = max(self.min_duty,
                            self.duty - self.step * (1 + 4 * overshoot))
        elif proxy_power_w < 0.95 * self.limit_w:
            self.duty = min(1.0, self.duty + self.step / 2)
        self.history.append(ThrottleState(
            cycle=self._cycle, duty=self.duty,
            power_estimate_w=proxy_power_w, limit_w=self.limit_w))
        return self.duty

    def failsafe(self) -> float:
        """Engage maximum throttle without a proxy reading.

        The OCC's last resort when telemetry stays stale past its
        budget: clamp the duty to the floor and log a history entry at
        the limit (the most conservative finite estimate available).
        """
        self._cycle += 1
        self.duty = self.min_duty
        self.history.append(ThrottleState(
            cycle=self._cycle, duty=self.duty,
            power_estimate_w=self.limit_w, limit_w=self.limit_w))
        return self.duty

    def settle(self, open_loop_power_w: float, *,
               iterations: int = 200) -> ThrottleState:
        """Iterate to steady state against a workload whose unthrottled
        power is ``open_loop_power_w`` (power scales ~ duty)."""
        for _ in range(iterations):
            self.update(open_loop_power_w * self.duty)
        return self.history[-1]


class CoarseThrottle:
    """Fast-engage throttle tied to the droop sensor.

    When engaged it blocks a large fraction of dispatch for a short
    programmable window ("numerous control points in the core pipeline,
    execution engines, and caches/queues"), then releases gradually to
    avoid re-exciting the supply resonance.
    """

    def __init__(self, *, block_fraction: float = 0.75,
                 hold_cycles: int = 16, release_cycles: int = 32):
        if not 0 < block_fraction <= 1:
            raise ModelError("block fraction must be in (0, 1]")
        self.block_fraction = block_fraction
        self.hold_cycles = hold_cycles
        self.release_cycles = release_cycles
        self._hold = 0
        self._release = 0
        self.engage_count = 0
        self.throttled_cycles = 0

    def tick(self, droop_flag: bool) -> float:
        """Advance one cycle; returns allowed dispatch fraction."""
        if droop_flag:
            if self._hold == 0 and self._release == 0:
                self.engage_count += 1
            self._hold = self.hold_cycles
            self._release = self.release_cycles
        if self._hold > 0:
            self._hold -= 1
            self.throttled_cycles += 1
            return 1.0 - self.block_fraction
        if self._release > 0:
            self._release -= 1
            self.throttled_cycles += 1
            ramp = 1.0 - self._release / self.release_cycles
            return 1.0 - self.block_fraction * (1.0 - ramp)
        return 1.0


def run_throttled_current(currents_a, sensor, supply,
                          throttle: CoarseThrottle = None):
    """Closed loop: droop sensor drives the coarse throttle, which
    scales the demanded current.  Returns (voltages, duties)."""
    throttle = throttle or CoarseThrottle()
    voltages: List[float] = []
    duties: List[float] = []
    flag = False
    for current in currents_a:
        duty = throttle.tick(flag)
        v = supply.step(current * duty)
        flag = sensor.sample(v)
        voltages.append(v)
        duties.append(duty)
    return voltages, duties
