"""Workload Optimized Frequency (Section IV-A).

WOF raises the operating frequency of workloads that draw less power
than the thermal/voltage design points (TDP/RDP), deterministically:
the boost is computed from the workload's **effective capacitance
ratio** (its power at nominal V/f relative to the design-point
workload), then fed through the V/f curve to find the highest frequency
that stays inside the envelope.

The MMA interaction is modeled too: when the MMA is idle it is power
gated (its leakage returned to the budget), and architected hint
instructions wake it ahead of use so the power-on latency stays off the
critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import CoreConfig
from ..errors import ModelError
from ..power.scaling import VFCurve, VFPoint, dynamic_power_scale, \
    frequency_at_power


@dataclass
class WofDesignPoint:
    """Socket design constraints WOF must respect."""

    tdp_core_w: float            # per-core share of the thermal budget
    rdp_core_w: float            # voltage-regulation (current) limit
    nominal_ghz: float = 4.0
    curve: VFCurve = None

    def __post_init__(self) -> None:
        if self.tdp_core_w <= 0 or self.rdp_core_w <= 0:
            raise ModelError("design-point budgets must be positive")
        if self.curve is None:
            self.curve = VFCurve(VFPoint(self.nominal_ghz, 1.0))

    @property
    def envelope_w(self) -> float:
        return min(self.tdp_core_w, self.rdp_core_w)


@dataclass
class WofDecision:
    """The frequency decision for one workload."""

    workload: str
    effective_cap_ratio: float
    boost_ghz: float
    nominal_ghz: float
    mma_gated: bool
    reclaimed_leakage_w: float

    @property
    def boost_ratio(self) -> float:
        return self.boost_ghz / self.nominal_ghz


class WofGovernor:
    """Deterministic WOF: same workload + same sort -> same frequency."""

    def __init__(self, config: CoreConfig, design: WofDesignPoint, *,
                 reference_power_w: Optional[float] = None):
        self.config = config
        self.design = design
        # power of the design-point (TDP-setting) workload at nominal
        self.reference_power_w = reference_power_w or design.envelope_w

    def effective_capacitance_ratio(self, workload_power_w: float) -> float:
        """Workload power relative to the design-point workload at the
        same V/f — the quantity APEX+Einspower feed into PFLY/CLY."""
        if workload_power_w <= 0:
            raise ModelError("workload power must be positive")
        return workload_power_w / self.reference_power_w

    def decide(self, workload: str, workload_power_w: float, *,
               mma_idle: bool = False) -> WofDecision:
        """Pick the WOF frequency for a characterized workload."""
        reclaimed = 0.0
        power = workload_power_w
        if mma_idle and self.config.issue.mma_present:
            # firmware power-gates the idle MMA and spends its leakage
            reclaimed = self.config.power.mma_leakage_w
            power = max(1e-6, power - reclaimed)
        ratio = self.effective_capacitance_ratio(power)
        headroom = self.design.envelope_w / max(power, 1e-9)
        boost = frequency_at_power(self.design.curve,
                                   self.design.nominal_ghz, headroom)
        boost = max(boost, self.design.nominal_ghz * 0.5)
        return WofDecision(
            workload=workload,
            effective_cap_ratio=ratio,
            boost_ghz=boost,
            nominal_ghz=self.design.nominal_ghz,
            mma_gated=mma_idle and self.config.issue.mma_present,
            reclaimed_leakage_w=reclaimed)

    def power_at_boost(self, workload_power_w: float,
                       decision: WofDecision) -> float:
        """Workload power after the boost is applied (sanity: must stay
        inside the envelope)."""
        scale = dynamic_power_scale(self.design.curve,
                                    self.design.nominal_ghz,
                                    decision.boost_ghz)
        base = workload_power_w - decision.reclaimed_leakage_w
        return base * scale


@dataclass
class MMAPowerGate:
    """Firmware policy for gating the idle MMA (Section IV-A).

    "the firmware can select how long the MMA must be idle before
    powering off"; hint instructions wake the unit proactively so the
    wake latency is hidden.
    """

    idle_cycles_before_off: int = 5000
    wake_latency_cycles: int = 64

    def __post_init__(self) -> None:
        self._idle = 0
        self._powered = True
        self.gated_cycles = 0
        self.exposed_wake_cycles = 0

    @property
    def powered(self) -> bool:
        return self._powered

    def tick(self, cycles: int, mma_busy: bool, *,
             wake_hint_seen: bool = False) -> None:
        """Advance the policy by an execution window."""
        if cycles <= 0:
            raise ModelError("cycles must be positive")
        if mma_busy:
            if not self._powered:
                # hint hides the wake; a cold start pays the latency
                if not wake_hint_seen:
                    self.exposed_wake_cycles += self.wake_latency_cycles
                self._powered = True
            self._idle = 0
            return
        self._idle += cycles
        if self._powered and self._idle >= self.idle_cycles_before_off:
            self._powered = False
        if not self._powered:
            self.gated_cycles += cycles

    def force_off(self, cycles: int) -> None:
        """Fail-safe gating: power the MMA off immediately, skipping
        the idle-threshold wait.  The next busy tick repowers it (and
        pays the wake latency unless a hint was seen) as usual."""
        if cycles <= 0:
            raise ModelError("cycles must be positive")
        self._powered = False
        self._idle += cycles
        self.gated_cycles += cycles
