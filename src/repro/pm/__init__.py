"""Core power management (Section IV): Workload Optimized Frequency,
instruction throttling, the digital droop sensor and the firmware loop."""

from .wof import (MMAPowerGate, WofDecision, WofDesignPoint, WofGovernor)
from .throttle import (CoarseThrottle, FineGrainThrottle, ThrottleState,
                       run_throttled_current)
from .dds import (DigitalDroopSensor, DroopEvent, SupplyModel,
                  simulate_droop)
from .occ import CoreTelemetry, OccTickResult, OnChipController
from .yield_analysis import (DieSample, Offering, ProcessVariation,
                             YieldAnalyzer, YieldResult,
                             find_max_frequency_offering, sample_dies)

__all__ = [
    "MMAPowerGate", "WofDecision", "WofDesignPoint", "WofGovernor",
    "CoarseThrottle", "FineGrainThrottle", "ThrottleState",
    "run_throttled_current",
    "DigitalDroopSensor", "DroopEvent", "SupplyModel", "simulate_droop",
    "CoreTelemetry", "OccTickResult", "OnChipController",
    "DieSample", "Offering", "ProcessVariation", "YieldAnalyzer",
    "YieldResult", "find_max_frequency_offering", "sample_dies",
]
