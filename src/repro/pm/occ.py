"""On-chip-controller style firmware loop tying the PM pieces together.

A periodic control loop (the OCC runs at ~250us ticks on real parts)
that reads the per-core power proxies, applies the WOF frequency
decision for the socket, engages fine-grained throttling on cores that
exceed their share, and manages MMA power gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..errors import ModelError
from .throttle import FineGrainThrottle
from .wof import MMAPowerGate, WofDecision, WofDesignPoint, WofGovernor


@dataclass
class CoreTelemetry:
    """Per-tick input from one core."""

    core_id: int
    proxy_power_w: float
    mma_busy: bool = False
    wake_hint_seen: bool = False

    @classmethod
    def from_sample(cls, sample, core_id: int = 0) -> "CoreTelemetry":
        """Build one tick's telemetry from a sampler interval
        (:class:`repro.obs.sampler.IntervalSample`): the proxy reading
        is the interval's proxy power, MMA busyness comes from the
        interval's MMA issue activity, and accumulator moves act as the
        wake hint (they precede MMA bursts)."""
        events = getattr(sample, "events", None) or {}
        return cls(core_id=core_id,
                   proxy_power_w=sample.proxy_w,
                   mma_busy=events.get("issue_mma", 0) > 0,
                   wake_hint_seen=events.get("mma_move", 0) > 0)


@dataclass
class OccTickResult:
    frequency_ghz: float
    wof: WofDecision
    core_duties: Dict[int, float]
    socket_power_w: float
    mma_powered: Dict[int, bool]


class OnChipController:
    """The firmware loop."""

    def __init__(self, governor: WofGovernor, cores: int, *,
                 socket_budget_w: float,
                 tick_cycles: int = 100000):
        if cores <= 0:
            raise ModelError("need at least one core")
        if socket_budget_w <= 0:
            raise ModelError("socket budget must be positive")
        self.governor = governor
        self.cores = cores
        self.socket_budget_w = socket_budget_w
        self.tick_cycles = tick_cycles
        per_core = socket_budget_w / cores
        self._throttles = {i: FineGrainThrottle(per_core * 1.15)
                           for i in range(cores)}
        self._gates = {i: MMAPowerGate() for i in range(cores)}
        self.history: List[OccTickResult] = []

    def tick(self, telemetry: List[CoreTelemetry]) -> OccTickResult:
        """One control interval."""
        if len(telemetry) != self.cores:
            raise ModelError("telemetry must cover every core")
        socket_power = sum(t.proxy_power_w for t in telemetry)
        mean_power = socket_power / self.cores
        all_mma_idle = all(not t.mma_busy for t in telemetry)
        decision = self.governor.decide(
            "socket", mean_power, mma_idle=all_mma_idle)
        duties: Dict[int, float] = {}
        powered: Dict[int, bool] = {}
        for t in telemetry:
            duties[t.core_id] = \
                self._throttles[t.core_id].update(t.proxy_power_w)
            gate = self._gates[t.core_id]
            gate.tick(self.tick_cycles, t.mma_busy,
                      wake_hint_seen=t.wake_hint_seen)
            powered[t.core_id] = gate.powered
        result = OccTickResult(
            frequency_ghz=decision.boost_ghz,
            wof=decision,
            core_duties=duties,
            socket_power_w=socket_power,
            mma_powered=powered)
        self.history.append(result)
        return result

    def run_from_samples(
            self, per_core_samples: Mapping[int, Sequence]) \
            -> List[OccTickResult]:
        """Drive the control loop from measured sampler series instead
        of synthetic telemetry: one
        :class:`repro.obs.sampler.IntervalSample` sequence per core,
        one tick per aligned interval (truncated to the shortest
        series)."""
        if set(per_core_samples) != set(range(self.cores)):
            raise ModelError(
                f"need sample series for cores 0..{self.cores - 1}")
        ticks = min(len(s) for s in per_core_samples.values())
        results: List[OccTickResult] = []
        for t in range(ticks):
            telemetry = [
                CoreTelemetry.from_sample(per_core_samples[i][t],
                                          core_id=i)
                for i in range(self.cores)]
            results.append(self.tick(telemetry))
        return results
