"""On-chip-controller style firmware loop tying the PM pieces together.

A periodic control loop (the OCC runs at ~250us ticks on real parts)
that reads the per-core power proxies, applies the WOF frequency
decision for the socket, engages fine-grained throttling on cores that
exceed their share, and manages MMA power gating.

The loop is *fail-safe*: real OCC firmware cannot assume its telemetry
fabric delivers a fresh, finite reading every tick.  A core whose
reading is lost or corrupt (non-finite proxy, missing event data) is
driven from its last-good value for up to ``staleness_budget``
consecutive ticks; past that — or when no good reading was ever seen —
the controller escalates to fail-safe mode for the tick: frequency
drops to Fmin, every core is throttled to its duty floor, and the MMA
is force-gated.  Every degradation is counted both on the controller
and through the metrics registry, and surfaced per tick on
:class:`OccTickResult`.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import ModelError
from ..obs.metrics import get_registry
from .throttle import FineGrainThrottle
from .wof import MMAPowerGate, WofDecision, WofGovernor


@dataclass
class CoreTelemetry:
    """Per-tick input from one core.

    ``telemetry_ok=False`` marks a *lost* reading — the sensor fabric
    delivered nothing usable — which is a different condition from a
    genuinely idle core reporting zeros.  The OCC staleness path keys
    off this flag.
    """

    core_id: int
    proxy_power_w: float
    mma_busy: bool = False
    wake_hint_seen: bool = False
    telemetry_ok: bool = True

    @property
    def usable(self) -> bool:
        """A reading the control law can safely consume."""
        return (self.telemetry_ok
                and math.isfinite(self.proxy_power_w)
                and self.proxy_power_w >= 0.0)

    @classmethod
    def from_sample(cls, sample, core_id: int = 0) -> "CoreTelemetry":
        """Build one tick's telemetry from a sampler interval
        (:class:`repro.obs.sampler.IntervalSample`): the proxy reading
        is the interval's proxy power, MMA busyness comes from the
        interval's MMA issue activity, and accumulator moves act as the
        wake hint (they precede MMA bursts).

        A sample with a missing or empty ``events`` mapping, or a
        non-finite proxy reading, is telemetry *loss* — not an idle
        core — and yields ``telemetry_ok=False`` so the OCC staleness
        path engages instead of mistaking "no data" for zero activity.
        """
        events = getattr(sample, "events", None)
        proxy = getattr(sample, "proxy_w", float("nan"))
        try:
            proxy = float(proxy)
        except (TypeError, ValueError):
            proxy = float("nan")
        if not events or not math.isfinite(proxy):
            return cls(core_id=core_id, proxy_power_w=proxy,
                       telemetry_ok=False)
        return cls(core_id=core_id,
                   proxy_power_w=proxy,
                   mma_busy=events.get("issue_mma", 0) > 0,
                   wake_hint_seen=events.get("mma_move", 0) > 0)


@dataclass
class OccTickResult:
    frequency_ghz: float
    wof: WofDecision
    core_duties: Dict[int, float]
    socket_power_w: float
    mma_powered: Dict[int, bool]
    degraded_cores: Tuple[int, ...] = ()
    failsafe: bool = False


class OnChipController:
    """The firmware loop."""

    def __init__(self, governor: WofGovernor, cores: int, *,
                 socket_budget_w: float,
                 tick_cycles: int = 100000,
                 staleness_budget: int = 2,
                 fmin_ratio: float = 0.5):
        if cores <= 0:
            raise ModelError("need at least one core")
        if socket_budget_w <= 0:
            raise ModelError("socket budget must be positive")
        if staleness_budget < 0:
            raise ModelError("staleness budget must be >= 0")
        if not 0 < fmin_ratio <= 1:
            raise ModelError("fmin ratio must be in (0, 1]")
        self.governor = governor
        self.cores = cores
        self.socket_budget_w = socket_budget_w
        self.tick_cycles = tick_cycles
        self.staleness_budget = staleness_budget
        self.fmin_ratio = fmin_ratio
        per_core = socket_budget_w / cores
        self._throttles = {i: FineGrainThrottle(per_core * 1.15)
                           for i in range(cores)}
        self._gates = {i: MMAPowerGate() for i in range(cores)}
        self._last_good: Dict[int, CoreTelemetry] = {}
        self._stale_ticks: Dict[int, int] = {i: 0 for i in range(cores)}
        self.degraded_ticks = 0
        self.failsafe_ticks = 0
        self.history: List[OccTickResult] = []

    @property
    def fmin_ghz(self) -> float:
        return self.governor.design.nominal_ghz * self.fmin_ratio

    def _validate(self, telemetry: List[CoreTelemetry]):
        """Split raw telemetry into usable readings and loss handling.

        Returns ``(validated, degraded, failsafe)``: the telemetry the
        control law should consume (lost readings replaced by the
        core's last-good value while inside the staleness budget), the
        ids of cores running on substituted data this tick, and whether
        any core exhausted its budget (escalate to fail-safe).
        """
        validated: List[CoreTelemetry] = []
        degraded: List[int] = []
        failsafe = False
        for t in telemetry:
            if t.usable:
                self._last_good[t.core_id] = t
                self._stale_ticks[t.core_id] = 0
                validated.append(t)
                continue
            degraded.append(t.core_id)
            self._stale_ticks[t.core_id] += 1
            last = self._last_good.get(t.core_id)
            if last is None \
                    or self._stale_ticks[t.core_id] > self.staleness_budget:
                failsafe = True
            substitute = last if last is not None else CoreTelemetry(
                core_id=t.core_id, proxy_power_w=0.0)
            validated.append(CoreTelemetry(
                core_id=t.core_id,
                proxy_power_w=substitute.proxy_power_w,
                mma_busy=substitute.mma_busy,
                wake_hint_seen=False))
        return validated, tuple(degraded), failsafe

    def tick(self, telemetry: List[CoreTelemetry]) -> OccTickResult:
        """One control interval."""
        if len(telemetry) != self.cores:
            raise ModelError("telemetry must cover every core")
        validated, degraded, failsafe = self._validate(telemetry)
        if degraded:
            self.degraded_ticks += 1
            get_registry().counter(
                "repro_occ_degraded_ticks_total",
                "OCC ticks that ran on substituted last-good "
                "telemetry").inc()
        if failsafe:
            return self._failsafe_tick(validated, degraded)
        socket_power = sum(t.proxy_power_w for t in validated)
        mean_power = socket_power / self.cores
        all_mma_idle = all(not t.mma_busy for t in validated)
        decision = self.governor.decide(
            "socket", mean_power, mma_idle=all_mma_idle)
        duties: Dict[int, float] = {}
        powered: Dict[int, bool] = {}
        for t in validated:
            duties[t.core_id] = \
                self._throttles[t.core_id].update(t.proxy_power_w)
            gate = self._gates[t.core_id]
            gate.tick(self.tick_cycles, t.mma_busy,
                      wake_hint_seen=t.wake_hint_seen)
            powered[t.core_id] = gate.powered
        result = OccTickResult(
            frequency_ghz=decision.boost_ghz,
            wof=decision,
            core_duties=duties,
            socket_power_w=socket_power,
            mma_powered=powered,
            degraded_cores=degraded)
        self.history.append(result)
        return result

    def _failsafe_tick(self, validated: List[CoreTelemetry],
                       degraded: Tuple[int, ...]) -> OccTickResult:
        """Telemetry stayed stale past the budget: Fmin, duty floors,
        MMA gated — the safest operating point that needs no sensor."""
        self.failsafe_ticks += 1
        get_registry().counter(
            "repro_occ_failsafe_ticks_total",
            "OCC ticks spent in fail-safe mode (Fmin + max throttle "
            "+ MMA gated)").inc()
        design = self.governor.design
        decision = WofDecision(
            workload="socket-failsafe",
            effective_cap_ratio=1.0,
            boost_ghz=self.fmin_ghz,
            nominal_ghz=design.nominal_ghz,
            mma_gated=True,
            reclaimed_leakage_w=0.0)
        duties: Dict[int, float] = {}
        powered: Dict[int, bool] = {}
        for t in validated:
            duties[t.core_id] = self._throttles[t.core_id].failsafe()
            self._gates[t.core_id].force_off(self.tick_cycles)
            powered[t.core_id] = False
        socket_power = sum(t.proxy_power_w for t in validated)
        result = OccTickResult(
            frequency_ghz=self.fmin_ghz,
            wof=decision,
            core_duties=duties,
            socket_power_w=socket_power,
            mma_powered=powered,
            degraded_cores=degraded,
            failsafe=True)
        self.history.append(result)
        return result

    def run_from_samples(
            self, per_core_samples: Mapping[int, Sequence]) \
            -> List[OccTickResult]:
        """Drive the control loop from measured sampler series instead
        of synthetic telemetry: one
        :class:`repro.obs.sampler.IntervalSample` sequence per core,
        one tick per aligned interval (truncated to the shortest
        series)."""
        if set(per_core_samples) != set(range(self.cores)):
            raise ModelError(
                f"need sample series for cores 0..{self.cores - 1}")
        ticks = min(len(s) for s in per_core_samples.values())
        results: List[OccTickResult] = []
        for t in range(ticks):
            telemetry = [
                CoreTelemetry.from_sample(per_core_samples[i][t],
                                          core_id=i)
                for i in range(self.cores)]
            results.append(self.tick(telemetry))
        return results
