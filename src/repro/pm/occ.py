"""On-chip-controller style firmware loop tying the PM pieces together.

A periodic control loop (the OCC runs at ~250us ticks on real parts)
that reads the per-core power proxies, applies the WOF frequency
decision for the socket, engages fine-grained throttling on cores that
exceed their share, and manages MMA power gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ModelError
from .throttle import FineGrainThrottle
from .wof import MMAPowerGate, WofDecision, WofDesignPoint, WofGovernor


@dataclass
class CoreTelemetry:
    """Per-tick input from one core."""

    core_id: int
    proxy_power_w: float
    mma_busy: bool = False
    wake_hint_seen: bool = False


@dataclass
class OccTickResult:
    frequency_ghz: float
    wof: WofDecision
    core_duties: Dict[int, float]
    socket_power_w: float
    mma_powered: Dict[int, bool]


class OnChipController:
    """The firmware loop."""

    def __init__(self, governor: WofGovernor, cores: int, *,
                 socket_budget_w: float,
                 tick_cycles: int = 100000):
        if cores <= 0:
            raise ModelError("need at least one core")
        if socket_budget_w <= 0:
            raise ModelError("socket budget must be positive")
        self.governor = governor
        self.cores = cores
        self.socket_budget_w = socket_budget_w
        self.tick_cycles = tick_cycles
        per_core = socket_budget_w / cores
        self._throttles = {i: FineGrainThrottle(per_core * 1.15)
                           for i in range(cores)}
        self._gates = {i: MMAPowerGate() for i in range(cores)}
        self.history: List[OccTickResult] = []

    def tick(self, telemetry: List[CoreTelemetry]) -> OccTickResult:
        """One control interval."""
        if len(telemetry) != self.cores:
            raise ModelError("telemetry must cover every core")
        socket_power = sum(t.proxy_power_w for t in telemetry)
        mean_power = socket_power / self.cores
        all_mma_idle = all(not t.mma_busy for t in telemetry)
        decision = self.governor.decide(
            "socket", mean_power, mma_idle=all_mma_idle)
        duties: Dict[int, float] = {}
        powered: Dict[int, bool] = {}
        for t in telemetry:
            duties[t.core_id] = \
                self._throttles[t.core_id].update(t.proxy_power_w)
            gate = self._gates[t.core_id]
            gate.tick(self.tick_cycles, t.mma_busy,
                      wake_hint_seen=t.wake_hint_seen)
            powered[t.core_id] = gate.powered
        result = OccTickResult(
            frequency_ghz=decision.boost_ghz,
            wof=decision,
            core_duties=duties,
            socket_power_w=socket_power,
            mma_powered=powered)
        self.history.append(result)
        return result
