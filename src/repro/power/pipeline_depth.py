"""Optimal pipeline depth analysis (Section II-A, Fig. 2).

Re-implements the Srinivasan/Zyuban-style study the POWER10 concept
phase ran on the POWER9 M0/M1 models: for a range of pipeline depths
(expressed as FO4 per stage) and core power budgets, find the
power-limited frequency and the resulting throughput (BIPS), normalized
to the baseline optimum.  The paper's result: the optimum sits at
~27 FO4 and is stable across the power targets of interest (0.5x-1.0x
of the POWER9 baseline power).

Model (after [42], [52] and the Einspower-decomposed power scaling the
paper describes):

* frequency  f(FO4) = 1 / (FO4 + latch_overhead_fo4), in units where
  the baseline depth gives the baseline frequency;
* performance: time per instruction = useful work + hazard stalls.
  Deeper pipes (small FO4) raise the cycle count of each hazard
  (branch redirects, load-use bubbles) proportionally to depth;
* power components scale individually: latch-clock power grows with
  pipeline depth (more latches, higher f), logic switching grows with
  f, arrays/RF grow weakly with depth, leakage is constant;
* power-limited frequency: if power at f exceeds the budget, voltage
  and frequency scale down together (P ~ V^2 f, f ~ V) until it fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import ModelError

LATCH_OVERHEAD_FO4 = 3.0      # latch insertion + skew per stage
BASELINE_FO4 = 27.0           # POWER9-class design point


@dataclass
class DepthPowerModel:
    """Power decomposition at the baseline depth (arbitrary watts).

    The four buckets mirror the paper's "detailed Einspower reports
    separating out latch-clock, logic data-switching, array and register
    file components", which were "individually scaled according to
    functions of the new target design pipeline depth".
    """

    latch_clock_w: float = 1.9
    logic_switch_w: float = 1.2
    array_w: float = 0.7
    regfile_w: float = 0.4
    leakage_w: float = 0.6

    def power_at(self, fo4: float, frequency_ratio: float,
                 voltage_ratio: float = 1.0) -> float:
        """Total power at a depth/frequency/voltage point."""
        if fo4 <= 0:
            raise ModelError("FO4 must be positive")
        depth_ratio = (BASELINE_FO4 + LATCH_OVERHEAD_FO4) \
            / (fo4 + LATCH_OVERHEAD_FO4)
        # latch count grows superlinearly with depth (extra staging,
        # more hazard-tracking state)
        latch = self.latch_clock_w * depth_ratio ** 1.4
        logic = self.logic_switch_w
        array = self.array_w * depth_ratio ** 0.3
        regfile = self.regfile_w * depth_ratio ** 0.5
        dynamic = (latch + logic + array + regfile) * frequency_ratio
        dynamic *= voltage_ratio ** 2
        leakage = self.leakage_w * voltage_ratio
        return dynamic + leakage


@dataclass
class DepthPerformanceModel:
    """Hazard-based time-per-instruction model.

    ``base_cpi`` is the hazard-free cycles per instruction at the
    baseline depth; hazards contribute stall cycles proportional to the
    number of stages they span.
    """

    base_cpi: float = 0.50
    branch_hazard_per_instr: float = 0.015   # redirects per instruction
    branch_stages_at_baseline: float = 14.0
    load_hazard_per_instr: float = 0.08      # load-use stalls
    load_stages_at_baseline: float = 3.0

    def bips(self, fo4: float, frequency_ratio: float) -> float:
        depth_ratio = (BASELINE_FO4 + LATCH_OVERHEAD_FO4) \
            / (fo4 + LATCH_OVERHEAD_FO4)
        cpi = (self.base_cpi
               + self.branch_hazard_per_instr
               * self.branch_stages_at_baseline * depth_ratio
               + self.load_hazard_per_instr
               * self.load_stages_at_baseline * depth_ratio)
        return frequency_ratio / cpi


@dataclass
class DepthPoint:
    fo4: float
    frequency_ratio: float      # after power limiting
    voltage_ratio: float
    bips: float
    power_w: float


def analyze_depth(fo4_values: Sequence[float],
                  power_budget_ratio: float, *,
                  power_model: DepthPowerModel = None,
                  perf_model: DepthPerformanceModel = None) -> List[DepthPoint]:
    """Sweep pipeline depth under one power budget (fraction of the
    baseline power); returns the power-limited operating points."""
    if power_budget_ratio <= 0:
        raise ModelError("power budget must be positive")
    power_model = power_model or DepthPowerModel()
    perf_model = perf_model or DepthPerformanceModel()
    baseline_power = power_model.power_at(BASELINE_FO4, 1.0)
    budget = baseline_power * power_budget_ratio
    points: List[DepthPoint] = []
    for fo4 in fo4_values:
        if fo4 <= 0:
            raise ModelError("FO4 must be positive")
        raw_freq = (BASELINE_FO4 + LATCH_OVERHEAD_FO4) \
            / (fo4 + LATCH_OVERHEAD_FO4)
        # power-limited V/f scaling: f ~ V, dynamic ~ V^2 f ~ f^3
        lo, hi = 0.2, 1.0
        for _ in range(48):
            mid = (lo + hi) / 2
            p = power_model.power_at(fo4, raw_freq * mid, mid)
            if p > budget:
                hi = mid
            else:
                lo = mid
        vf = lo
        freq = raw_freq * vf
        power = power_model.power_at(fo4, freq, vf)
        points.append(DepthPoint(
            fo4=fo4, frequency_ratio=freq, voltage_ratio=vf,
            bips=perf_model.bips(fo4, freq), power_w=power))
    return points


def optimal_fo4(points: Sequence[DepthPoint]) -> float:
    """Depth with maximum throughput."""
    if not points:
        raise ModelError("no points to optimize over")
    return max(points, key=lambda p: p.bips).fo4


def depth_study(fo4_values: Sequence[float] = tuple(range(9, 46, 2)),
                budgets: Sequence[float] = (0.5, 0.7, 0.85, 1.0),
                ) -> Dict[float, List[DepthPoint]]:
    """The full Fig. 2 sweep: one BIPS-vs-FO4 curve per power target,
    normalized to the baseline optimum of the 1.0x budget curve."""
    curves = {b: analyze_depth(fo4_values, b) for b in budgets}
    reference = None
    for point in curves[max(budgets)]:
        if abs(point.fo4 - BASELINE_FO4) < 1.01:
            reference = point.bips
    if not reference:
        reference = max(p.bips for p in curves[max(budgets)])
    for pts in curves.values():
        for p in pts:
            p.bips /= reference
    return curves
