"""APEX: accelerated power extraction (Section III-C).

The paper's APEX instruments the RTL with LFSR switching counters, runs
on the Awan hardware-accelerated platform, and extracts activity in
batches at configurable intervals — achieving ~5000x the speed of
software RTLSim power integration with identical accuracy, because the
power math is done on *counts per interval* instead of per-cycle signal
waveforms.

This module reproduces the methodology contrast:

* :func:`detailed_reference_power` integrates power the RTLSim way —
  walking every cycle of an expanded activity schedule (deliberately
  the slow path; it is the accuracy reference).
* :class:`Apex` samples the same activity through an
  :class:`~repro.power.lfsr.LfsrBank` at interval boundaries and
  computes power from the extracted counts with vectorized math.

Both produce the same energy totals (tests assert equality within
rounding), and ``benchmarks/bench_apex_speedup.py`` measures the
speedup ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.activity import ActivityCounters, EVENT_NAMES
from ..core.config import CoreConfig
from ..errors import ModelError
from ..obs.tracing import span as _obs_span
from .einspower import EinspowerModel
from .lfsr import LfsrBank


@dataclass
class ApexInterval:
    """One extraction interval: counts plus on-the-fly power."""

    index: int
    instructions: int
    cycles: int
    counts: Dict[str, int]
    power_w: float
    ipc: float


@dataclass
class ApexRun:
    """Result of an APEX-style characterization of one workload."""

    workload: str
    config_name: str
    intervals: List[ApexInterval]
    total_power_w: float
    total_ipc: float
    elapsed_seconds: float
    metadata: Dict[str, object] = field(default_factory=dict)


def _interval_power_w(config: CoreConfig, counts: Dict[str, int],
                      cycles: int, utilizations: Dict[str, float]) -> float:
    """Simplified on-the-fly power from extracted counts: event energies
    ("pre-extracted activity signal groupings and associated effective
    capacitance") plus the clock/leakage estimate."""
    pcfg = config.power
    runtime_ns = cycles / pcfg.frequency_ghz
    energy_pj = sum(counts.get(ev, 0) * pcfg.energy.energy_pj(ev)
                    for ev in counts)
    dynamic_w = energy_pj / runtime_ns / 1000.0
    floor = pcfg.gating_floor
    clock_w = sum(
        w * (floor + (1.0 - floor) * utilizations.get(unit, 0.0))
        for unit, w in pcfg.unit_clock_w.items())
    return dynamic_w + clock_w + pcfg.leakage_w + (
        pcfg.mma_leakage_w if config.issue.mma_present else 0.0)


class Apex:
    """APEX characterization driver for one core configuration."""

    def __init__(self, config: CoreConfig,
                 signals: Sequence[str] = EVENT_NAMES):
        self.config = config
        self.signals = list(signals)

    def run(self, trace, *, interval_instructions: int = 2000,
            warmup_fraction: float = 0.0, engine=None) -> ApexRun:
        """Characterize a workload with interval-batched extraction.

        Window simulations go through the execution engine (pass
        ``engine`` to share workers/cache; None means the environment
        default); the LFSR fold stays serial and in interval order,
        because the bank is stateful across intervals.
        """
        if interval_instructions <= 0:
            raise ModelError("interval must be positive")
        from ..exec.executor import Engine, run_sim_plan, sim_task
        if engine is None:
            engine = Engine()
        with _obs_span("apex.run", "power",
                       workload=getattr(trace, "name", "?"),
                       config=self.config.name,
                       interval_instructions=interval_instructions) as sp:
            bank = LfsrBank(self.signals)
            intervals: List[ApexInterval] = []
            windows = trace.windows(interval_instructions)
            results = run_sim_plan(
                engine,
                [sim_task(self.config, w,
                          warmup_fraction=warmup_fraction)
                 for w in windows])
            total_cycles = 0
            total_instr = 0
            energy_weighted = 0.0
            for i, result in enumerate(results):
                act = result.activity
                bank.record({ev: act.events[ev] for ev in self.signals})
                counts = bank.extract()
                utils = {u: act.utilization(u)
                         for u in act.unit_busy_cycles}
                power = _interval_power_w(self.config, counts,
                                          act.cycles, utils)
                intervals.append(ApexInterval(
                    index=i, instructions=act.instructions,
                    cycles=act.cycles, counts=counts, power_w=power,
                    ipc=act.ipc))
                total_cycles += act.cycles
                total_instr += act.instructions
                energy_weighted += power * act.cycles
            if not intervals:
                raise ModelError("trace produced no intervals")
            sp.set(intervals=len(intervals))
            return ApexRun(
                workload=getattr(trace, "name", "?"),
                config_name=self.config.name,
                intervals=intervals,
                total_power_w=energy_weighted / total_cycles,
                total_ipc=total_instr / total_cycles,
                elapsed_seconds=sp.duration_s,
                metadata={"interval_instructions": interval_instructions,
                          "chip_model":
                          not self.config.hierarchy.infinite_l2})


def apex_power_from_activity(config: CoreConfig,
                             activity: ActivityCounters) -> float:
    """APEX fast path on an existing activity record: vectorized count x
    energy dot product plus clock/leakage."""
    pcfg = config.power
    names = list(activity.events.keys())
    counts = np.array([activity.events[n] for n in names], dtype=float)
    energies = np.array([pcfg.energy.energy_pj(n) for n in names])
    runtime_ns = activity.cycles / pcfg.frequency_ghz
    dynamic_w = float(counts @ energies) / runtime_ns / 1000.0
    floor = pcfg.gating_floor
    clock_w = sum(
        w * (floor + (1.0 - floor) * activity.utilization(u))
        for u, w in pcfg.unit_clock_w.items())
    return dynamic_w + clock_w + pcfg.leakage_w + (
        pcfg.mma_leakage_w if config.issue.mma_present else 0.0)


def detailed_reference_power(config: CoreConfig,
                             activity: ActivityCounters,
                             *, max_cycles: Optional[int] = None) -> float:
    """The accuracy-reference slow path: integrate energy cycle by cycle
    over an expanded activity schedule, the way software RTLSim power
    integration walks signal waveforms.

    Events are spread uniformly over the run (the schedule RTLSim would
    see for a steady-state proxy loop); the result matches the fast path
    to floating-point rounding, which is the paper's "identical
    accuracy" claim — only the cost differs.
    """
    pcfg = config.power
    cycles = activity.cycles if max_cycles is None \
        else min(activity.cycles, max_cycles)
    if cycles <= 0:
        raise ModelError("activity has no cycles")
    # per-event: (energy, per-cycle rate)
    rates = [(pcfg.energy.energy_pj(name), count / activity.cycles)
             for name, count in activity.events.items() if count]
    floor = pcfg.gating_floor
    clock_per_cycle_w = sum(
        w * (floor + (1.0 - floor) * activity.utilization(u))
        for u, w in pcfg.unit_clock_w.items())
    total_pj = 0.0
    accumulators = [0.0] * len(rates)
    for _cycle in range(cycles):
        # walk every tracked signal every cycle, firing events whenever
        # the accumulated fractional count crosses one
        for i, (energy, rate) in enumerate(rates):
            accumulators[i] += rate
            if accumulators[i] >= 1.0:
                fired = int(accumulators[i])
                accumulators[i] -= fired
                total_pj += fired * energy
    # leftover fractional events
    for i, (energy, _rate) in enumerate(rates):
        total_pj += accumulators[i] * energy
    runtime_ns = cycles / pcfg.frequency_ghz
    dynamic_w = total_pj / runtime_ns / 1000.0
    return dynamic_w + clock_per_cycle_w + pcfg.leakage_w + (
        pcfg.mma_leakage_w if config.issue.mma_present else 0.0)


def compare_core_vs_chip(core_config: CoreConfig, chip_config: CoreConfig,
                         traces, *, warmup_fraction: float = 0.3,
                         engine=None, tier: str = "detailed"):
    """Run the Fig. 10 experiment: the same workloads through the core
    model (infinite L2) and the chip model (full hierarchy); returns
    (ipc, power) points for both.

    All (workload, model) runs form one flat engine plan, so workers
    and the result cache cover the whole experiment.
    """
    if not core_config.hierarchy.infinite_l2:
        raise ModelError("core model must be built with infinite_l2=True")
    if chip_config.hierarchy.infinite_l2:
        raise ModelError("chip model must have the full hierarchy")
    from ..exec.executor import Engine, run_sim_plan, sim_task
    if engine is None:
        engine = Engine()
    traces = list(traces)
    pairs = [(trace, label, config)
             for trace in traces
             for label, config in (("core", core_config),
                                   ("chip", chip_config))]
    results = run_sim_plan(
        engine,
        [sim_task(config, trace, warmup_fraction=warmup_fraction,
                  tier=tier)
         for trace, _label, config in pairs])
    points = [{"workload": trace.name} for trace in traces]
    for k, ((_trace, label, config), result) in enumerate(
            zip(pairs, results)):
        row = points[k // 2]
        report = EinspowerModel(config).report(result.activity)
        row[f"{label}_ipc"] = result.ipc
        row[f"{label}_power_w"] = report.total_w
    return points
