"""LFSR event counters, as instrumented into the RTL for APEX.

Section III-C: "the RTL is instrumented with edge- and level-triggered
LFSR counters for the subset of signals used by Einspower for its power
calculations."  LFSRs are used in hardware because a maximal-length
linear feedback shift register increments with a single XOR per cycle
(far cheaper than a binary adder); the count is recovered by inverting
the LFSR sequence.

We implement a real Fibonacci LFSR with maximal-length taps plus the
decode table that converts an LFSR state back to an event count — the
same extract step APEX's batch routine performs.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ModelError

# maximal-length tap masks (XOR of tapped bits feeds bit 0)
_TAPS = {
    8: 0b10111000,
    16: 0b1101000000001000,
    24: 0b111000010000000000000000,
    32: 0b10000000001000000000000000000011,
}


class LfsrCounter:
    """A width-bit maximal-length LFSR used as an event counter."""

    def __init__(self, width: int = 16):
        if width not in _TAPS:
            raise ModelError(f"unsupported LFSR width: {width}")
        self.width = width
        self._taps = _TAPS[width]
        self._mask = (1 << width) - 1
        self._state = 1             # non-zero seed
        self.saturated = False

    @property
    def state(self) -> int:
        return self._state

    def tick(self, times: int = 1) -> None:
        """Advance the LFSR by ``times`` events."""
        state = self._state
        for _ in range(times):
            feedback = bin(state & self._taps).count("1") & 1
            state = ((state << 1) | feedback) & self._mask
            if state == 1:
                # wrapped the maximal sequence: count is ambiguous
                self.saturated = True
        self._state = state

    def reset(self) -> None:
        self._state = 1
        self.saturated = False


class LfsrDecoder:
    """Inverts LFSR states back to event counts (the extract step)."""

    def __init__(self, width: int = 16):
        if width > 16:
            raise ModelError(
                "decode tables above 16 bits are impractical in memory; "
                "use a 16-bit counter with saturation instead")
        self._table: Dict[int, int] = {}
        lfsr = LfsrCounter(width)
        period = (1 << width) - 1
        for count in range(period):
            self._table[lfsr.state] = count
            lfsr.tick()
        self.period = period

    def decode(self, state: int) -> int:
        if state not in self._table:
            raise ModelError(f"state {state:#x} is not in the sequence")
        return self._table[state]


class LfsrBank:
    """A bank of named LFSR counters with batch extract.

    APEX samples "at configurable intervals, or at specific simulation
    events"; ``extract`` reads and resets every counter, returning the
    per-signal counts since the previous extraction.
    """

    def __init__(self, signal_names: List[str], width: int = 16):
        if not signal_names:
            raise ModelError("need at least one signal")
        self.width = width
        self._counters = {name: LfsrCounter(width)
                          for name in signal_names}
        self._decoder = LfsrDecoder(width)

    def record(self, counts: Dict[str, int]) -> None:
        """Accumulate switching events into the counters."""
        for name, n in counts.items():
            if name not in self._counters:
                raise ModelError(f"unknown signal {name!r}")
            if n:
                self._counters[name].tick(n)

    def extract(self) -> Dict[str, int]:
        """Batch-read all counters (decode + reset)."""
        out: Dict[str, int] = {}
        for name, counter in self._counters.items():
            if counter.saturated:
                out[name] = self._decoder.period      # clipped
            else:
                out[name] = self._decoder.decode(counter.state)
            counter.reset()
        return out
