"""The hardware core power proxy (Section IV-C, Fig. 15).

POWER10 implements a small set of event counters whose weighted sum the
power-management firmware reads as a fast power estimate.  The paper's
methodology: ~500 candidate counters observed during RTLSim power runs,
thousands of constrained model fits (input budget, non-negative
coefficients, intercept on/off), and a final 16-counter design with
9.8% active-power error (<5% counting static contributors), accurate
down to ~50-cycle granularity.

We reproduce the full flow: candidate generation (real events plus
derived/debug-counter style composites), the constrained design-space
sweep, counter selection, and windowed-prediction error vs time
granularity (Fig. 15b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.regression import (FitResult, GreedyFeatureSelector,
                                   mean_abs_pct_error)
from ..core.activity import EVENT_NAMES
from ..core.config import CoreConfig
from ..errors import ModelError
from .einspower import EinspowerModel

# Derived candidate counters, standing in for the designers' debug
# instrumentation ("instrumentation counters added by designers to debug
# and validate design functionality").  Each is a named function of the
# base events, per cycle.
_DERIVED: Dict[str, Tuple[str, ...]] = {
    "mem_ops": ("load_issue", "store_issue"),
    "vector_ops": ("issue_vsx", "issue_fp"),
    "frontend_ops": ("fetch_instr", "decode_instr"),
    "translation_ops": ("erat_lookup", "tlb_lookup"),
    "queue_writes": ("issueq_write", "loadq_write", "storeq_write"),
    "cache_hierarchy": ("l2_access", "l3_access", "mem_access"),
    "flush_activity": ("flush_instr", "flush_event"),
    "rf_traffic": ("rf_read", "rf_write"),
    "mma_activity": ("issue_mma", "mma_acc_access", "mma_move"),
    "miss_activity": ("l1d_miss", "icache_miss", "erat_miss"),
}


def candidate_counter_names() -> List[str]:
    """All proxy counter candidates (base events + derived)."""
    return list(EVENT_NAMES) + list(_DERIVED)


def _feature_matrix(rate_rows: Sequence[Dict[str, float]]) -> np.ndarray:
    names = candidate_counter_names()
    rows = []
    for rates in rate_rows:
        row = [rates[ev] for ev in EVENT_NAMES]
        row += [sum(rates[e] for e in events)
                for events in _DERIVED.values()]
        rows.append(row)
    return np.array(rows)


@dataclass
class ProxyDesign:
    """A selected power-proxy implementation."""

    fit: FitResult
    include_static_w: float      # leakage + active-idle added on read

    @property
    def counters(self) -> List[str]:
        return self.fit.feature_names

    @property
    def num_counters(self) -> int:
        return len(self.fit.feature_names)

    def predict_active_w(self, features: np.ndarray) -> np.ndarray:
        return self.fit.predict(features)

    def predict_total_w(self, features: np.ndarray) -> np.ndarray:
        return self.predict_active_w(features) + self.include_static_w


@dataclass
class DesignPoint:
    """One entry of the proxy design-space sweep."""

    num_counters: int
    nonnegative: bool
    intercept: bool
    active_error_pct: float
    total_error_pct: float


class PowerProxyDesigner:
    """Runs the counter-selection methodology for one configuration."""

    def __init__(self, config: CoreConfig, *, tier: str = "detailed"):
        self.config = config
        self._reference = EinspowerModel(config)
        self.tier = tier

    def _simulate(self, trace, *, warmup_fraction: float):
        from ..fastsim.dispatch import simulate_tiered
        return simulate_tiered(self.config, trace, tier=self.tier,
                               warmup_fraction=warmup_fraction)

    def characterize(self, traces, *, warmup_fraction: float = 0.3):
        """Run workloads, returning (features, active_w, total_w)."""
        rate_rows: List[Dict[str, float]] = []
        active: List[float] = []
        total: List[float] = []
        for trace in traces:
            result = self._simulate(trace,
                                    warmup_fraction=warmup_fraction)
            rate_rows.append(dict(result.activity.rates()))
            report = self._reference.report(result.activity)
            active.append(report.active_w)
            total.append(report.total_w)
        if not rate_rows:
            raise ModelError("no workloads characterized")
        return (_feature_matrix(rate_rows), np.array(active),
                np.array(total))

    def design_space(self, features: np.ndarray, active_w: np.ndarray,
                     total_w: np.ndarray,
                     counter_budgets: Sequence[int] = (2, 4, 8, 16, 32),
                     ) -> List[DesignPoint]:
        """Sweep (input budget x coefficient sign x intercept)."""
        static = float(np.mean(total_w - active_w))
        points: List[DesignPoint] = []
        for budget in counter_budgets:
            for nonneg in (True, False):
                for intercept in (True, False):
                    selector = GreedyFeatureSelector(
                        candidate_counter_names(),
                        nonnegative=nonneg, intercept=intercept)
                    fit = selector.fit(features, active_w, budget)
                    pred = fit.predict(features)
                    points.append(DesignPoint(
                        num_counters=len(fit.feature_indices),
                        nonnegative=nonneg,
                        intercept=intercept,
                        active_error_pct=mean_abs_pct_error(
                            active_w, pred),
                        total_error_pct=mean_abs_pct_error(
                            total_w, pred + static)))
        return points

    def select(self, features: np.ndarray, active_w: np.ndarray,
               total_w: np.ndarray, *, num_counters: int = 16,
               nonnegative: bool = True) -> ProxyDesign:
        """Pick the final proxy implementation (paper: 16 counters,
        hardware-friendly non-negative weights)."""
        selector = GreedyFeatureSelector(
            candidate_counter_names(), nonnegative=nonnegative,
            intercept=True)
        fit = selector.fit(features, active_w, num_counters)
        static = float(np.mean(total_w - active_w))
        return ProxyDesign(fit=fit, include_static_w=static)

    def granularity_error(self, design: ProxyDesign, trace,
                          window_cycles: Sequence[int],
                          *, warmup_fraction: float = 0.2,
                          ) -> Dict[int, float]:
        """Fig. 15(b): total-power prediction error vs time granularity.

        The trace is re-measured in instruction windows sized to land
        near each requested cycle granularity; each window is measured
        at steady state (repeated with warmup, like the L1-contained
        proxies).  Small windows carry high sampling variance — few
        events per sample — reproducing the error blow-up below
        ~50 cycles.
        """
        base = self._simulate(trace, warmup_fraction=warmup_fraction)
        base_cpi = base.cpi
        errors: Dict[int, float] = {}
        for cycles in window_cycles:
            if cycles <= 0:
                raise ModelError("granularity must be positive")
            instr_per_window = max(2, int(cycles / base_cpi))
            rate_rows = []
            truth = []
            for window in trace.windows(instr_per_window):
                steady = window.repeated(4)
                result = self._simulate(steady, warmup_fraction=0.5)
                rate_rows.append(dict(result.activity.rates()))
                truth.append(
                    self._reference.report(result.activity).total_w)
            feats = _feature_matrix(rate_rows)
            pred = design.predict_total_w(feats)
            truth_arr = np.array(truth)
            # firmware calibrates the proxy's constant offset against a
            # reference measurement; the granularity study isolates the
            # per-window (variance) error on top of that
            pred = pred + float(np.mean(truth_arr - pred))
            errors[cycles] = mean_abs_pct_error(truth_arr, pred)
        return errors
