"""Voltage/frequency/technology scaling helpers.

Supports the WOF/PFLY analyses: converting an effective-capacitance
ratio into frequency headroom under a power envelope, and the
14nm-to-7nm technology translation the paper explicitly excludes from
its iso-V/f headline numbers (provided here so socket studies can apply
it separately).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError


@dataclass
class VFPoint:
    """One voltage/frequency operating point."""

    frequency_ghz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0 or self.voltage_v <= 0:
            raise ModelError("frequency and voltage must be positive")


@dataclass
class VFCurve:
    """Linear V-f curve around a nominal point: V = v0 + k (f - f0).

    Good enough in the WOF operating window; the paper's firmware works
    with tabulated curves of the same shape.
    """

    nominal: VFPoint
    volts_per_ghz: float = 0.075
    fmin_ghz: float = 2.0
    fmax_ghz: float = 4.6

    def voltage_at(self, frequency_ghz: float) -> float:
        if not self.fmin_ghz <= frequency_ghz <= self.fmax_ghz:
            raise ModelError(
                f"{frequency_ghz} GHz outside [{self.fmin_ghz}, "
                f"{self.fmax_ghz}]")
        return self.nominal.voltage_v + self.volts_per_ghz * (
            frequency_ghz - self.nominal.frequency_ghz)


def dynamic_power_scale(curve: VFCurve, from_ghz: float,
                        to_ghz: float) -> float:
    """Dynamic power ratio moving along the V-f curve (C V^2 f)."""
    v_from = curve.voltage_at(from_ghz)
    v_to = curve.voltage_at(to_ghz)
    return (v_to / v_from) ** 2 * (to_ghz / from_ghz)


def leakage_power_scale(curve: VFCurve, from_ghz: float,
                        to_ghz: float) -> float:
    """Leakage ratio (~V^2 in the operating window)."""
    v_from = curve.voltage_at(from_ghz)
    v_to = curve.voltage_at(to_ghz)
    return (v_to / v_from) ** 2


def frequency_at_power(curve: VFCurve, base_ghz: float,
                       power_ratio_budget: float, *,
                       tolerance: float = 1e-4) -> float:
    """Highest frequency whose dynamic power stays within
    ``power_ratio_budget`` x the power at ``base_ghz`` (the WOF boost
    search)."""
    if power_ratio_budget <= 0:
        raise ModelError("power budget ratio must be positive")
    lo, hi = curve.fmin_ghz, curve.fmax_ghz
    if dynamic_power_scale(curve, base_ghz, hi) <= power_ratio_budget:
        return hi
    if dynamic_power_scale(curve, base_ghz, lo) > power_ratio_budget:
        return lo
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if dynamic_power_scale(curve, base_ghz, mid) \
                <= power_ratio_budget:
            lo = mid
        else:
            hi = mid
    return lo


# Technology translation 14nm (GlobalFoundries HP) -> 7nm (Samsung HP).
# The paper's 2.6x core figure is iso-voltage/frequency and excludes
# these; socket-level TCO studies may apply them on top.
TECH_14_TO_7_CAP_SCALE = 0.62       # switched capacitance per function
TECH_14_TO_7_LEAKAGE_SCALE = 0.70
TECH_14_TO_7_AREA_SCALE = 0.45


def apply_technology_scaling(power_w: float, *,
                             leakage_fraction: float = 0.15) -> float:
    """Translate a 14nm power number to the 7nm node at iso-V/f."""
    if not 0.0 <= leakage_fraction <= 1.0:
        raise ModelError("leakage fraction must be in [0, 1]")
    dynamic = power_w * (1.0 - leakage_fraction)
    leakage = power_w * leakage_fraction
    return (dynamic * TECH_14_TO_7_CAP_SCALE
            + leakage * TECH_14_TO_7_LEAKAGE_SCALE)
