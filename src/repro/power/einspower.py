"""Einspower-style detailed power reports.

The reference power model of the methodology (Sections II-A, III-B):
given a configuration's coefficients and one run's activity, produce a
per-component report separating **latch-clock**, **logic data
switching**, **array**, and **register file** power, plus leakage —
exactly the decomposition the paper says the pipeline-depth study and
the counter-model fitting consumed.

Power composition per component::

    clock_w  = unit_clock_w * clock_share * enable_fraction
    enable_fraction = floor + (1 - floor) * unit_utilization
    event_w  = sum(count[e] * pJ[e]) / runtime_ns / 1000
    ghost_w  = ghost_factor * event_w          (arrays and RFs only)

"Active power" follows the paper's definition: the workload-dependent
part, i.e. total minus leakage minus active-idle (the clock power at the
gating floor with zero utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..core.activity import ActivityCounters
from ..core.config import CoreConfig
from ..errors import ModelError
from ..obs.metrics import get_registry
from ..obs.tracing import span as _obs_span
from .components import COMPONENTS, Component


@dataclass
class ComponentPower:
    """Power of one component, split by category."""

    name: str
    category: str
    clock_w: float
    switch_w: float           # event-driven (logic/array/rf) switching
    ghost_w: float

    @property
    def total_w(self) -> float:
        return self.clock_w + self.switch_w + self.ghost_w


@dataclass
class PowerReport:
    """Full-core power report for one run."""

    config_name: str
    components: Dict[str, ComponentPower]
    leakage_w: float
    mma_leakage_w: float
    idle_clock_w: float        # clock power at gating floor, zero activity
    cycles: int
    frequency_ghz: float

    @property
    def dynamic_w(self) -> float:
        return sum(c.total_w for c in self.components.values())

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w + self.mma_leakage_w

    @property
    def active_w(self) -> float:
        """Workload-dependent power: total minus leakage and active-idle."""
        return max(0.0, self.total_w - self.leakage_w
                   - self.mma_leakage_w - self.idle_clock_w)

    @property
    def clock_w(self) -> float:
        return sum(c.clock_w for c in self.components.values())

    def by_category(self) -> Dict[str, float]:
        out: Dict[str, float] = {"clock": 0.0, "logic": 0.0,
                                 "array": 0.0, "rf": 0.0}
        for comp in self.components.values():
            out["clock"] += comp.clock_w
            if comp.category in out:
                out[comp.category] += comp.switch_w + comp.ghost_w
        return out

    def by_unit(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        by_name = {c.name: c for c in COMPONENTS}
        for name, comp in self.components.items():
            unit = by_name[name].unit
            out[unit] = out.get(unit, 0.0) + comp.total_w
        return out


class EinspowerModel:
    """The detailed (reference) power model for one core configuration."""

    def __init__(self, config: CoreConfig):
        self.config = config

    def report(self, activity: ActivityCounters, *,
               mma_powered: bool = True) -> PowerReport:
        if activity.cycles <= 0:
            raise ModelError("activity has no cycles; run a simulation")
        with _obs_span("einspower.report", "power",
                       config=self.config.name,
                       cycles=activity.cycles) as sp:
            report = self._report(activity, mma_powered=mma_powered)
            sp.set(total_w=round(report.total_w, 3))
        get_registry().histogram(
            "repro_power_eval_seconds",
            "wall time of Einspower report evaluations").observe(
                sp.duration_s, config=self.config.name)
        return report

    def _report(self, activity: ActivityCounters, *,
                mma_powered: bool) -> PowerReport:
        pcfg = self.config.power
        runtime_ns = activity.cycles / pcfg.frequency_ghz
        floor = pcfg.gating_floor

        comps: Dict[str, ComponentPower] = {}
        idle_clock_w = 0.0
        for comp in COMPONENTS:
            unit_w = pcfg.unit_clock_w.get(comp.unit, 0.0)
            share_w = unit_w * comp.clock_share
            util = activity.utilization(comp.unit)
            if comp.unit == "mma" and not mma_powered:
                clock_w = 0.0
            else:
                clock_w = share_w * (floor + (1.0 - floor) * util)
                idle_clock_w += share_w * floor
            event_pj = sum(
                activity.events[ev] * pcfg.energy.energy_pj(ev)
                for ev in comp.events)
            switch_w = event_pj / runtime_ns / 1000.0
            ghost_w = 0.0
            if comp.category in ("array", "rf"):
                ghost_w = pcfg.ghost_factor * switch_w
            comps[comp.name] = ComponentPower(
                name=comp.name, category=comp.category,
                clock_w=clock_w, switch_w=switch_w, ghost_w=ghost_w)

        mma_leak = pcfg.mma_leakage_w if (
            self.config.issue.mma_present and mma_powered) else 0.0
        return PowerReport(
            config_name=self.config.name,
            components=comps,
            leakage_w=pcfg.leakage_w,
            mma_leakage_w=mma_leak,
            idle_clock_w=idle_clock_w,
            cycles=activity.cycles,
            frequency_ghz=pcfg.frequency_ghz)

    def component_power_vector(
            self, activity: ActivityCounters) -> Mapping[str, float]:
        """Per-component totals — the training target of the bottom-up
        counter models (Section III-D)."""
        report = self.report(activity)
        return {name: cp.total_w for name, cp in report.components.items()}
