"""Powerminer: switching and clock-gating statistics (Section III-B).

"The IBM EDA team developed Powerminer to provide a full range of stats
for logic activity directly related to power consumption, including
logic/data/ghost switching stats and clock gating."  Designers used its
feedback to optimize without running the full Einspower physical-design
flow.

Our Powerminer consumes the same simulated activity as Einspower and
reports, per clock-gating unit:

* **clock-enable fraction** — cycles the unit's latches were clocked
  (gating floor + utilization), the paper's "% of Clock enabled";
* **data switching** — write events into arrays/RFs per cycle;
* **ghost switching** — input switching not corresponding to a write
  (modeled as the configured ghost factor applied to data switching);
* **potential vs observed latch switching** — the paper's project
  tracking metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.activity import ActivityCounters, UNIT_NAMES
from ..core.config import CoreConfig
from ..errors import ModelError
from .components import COMPONENTS

# events that represent a write into a stateful structure
_WRITE_EVENTS = {
    "ibuffer_write", "rename_write", "issueq_write", "rf_write",
    "loadq_write", "storeq_write", "lmq_alloc", "l1d_access",
    "icache_access", "l2_access", "l3_access", "mma_acc_access",
}


@dataclass
class UnitSwitchingStats:
    """Per-unit switching report."""

    unit: str
    clock_enable_fraction: float
    data_switching_per_cycle: float
    ghost_switching_per_cycle: float
    potential_latch_switching: float   # if clocked every enabled cycle
    observed_latch_switching: float    # actual write activity

    @property
    def gating_fraction(self) -> float:
        """% of clocks gated off (inverse of clock enable)."""
        return 1.0 - self.clock_enable_fraction


@dataclass
class PowerminerReport:
    """Full switching report for one run."""

    config_name: str
    units: Dict[str, UnitSwitchingStats]

    @property
    def mean_clock_enable(self) -> float:
        vals = [u.clock_enable_fraction for u in self.units.values()]
        return sum(vals) / len(vals)

    @property
    def total_ghost_per_cycle(self) -> float:
        return sum(u.ghost_switching_per_cycle
                   for u in self.units.values())

    def flagged_ghost_units(self, threshold: float = 0.05) -> List[str]:
        """Units whose ghost switching exceeds the review threshold —
        the paper's "flagged and addressed" workflow."""
        return sorted(u.unit for u in self.units.values()
                      if u.ghost_switching_per_cycle > threshold)


class Powerminer:
    """Switching-stat extractor for one core configuration."""

    def __init__(self, config: CoreConfig):
        self.config = config
        self._unit_write_events: Dict[str, List[str]] = {
            unit: [] for unit in UNIT_NAMES}
        for comp in COMPONENTS:
            for event in comp.events:
                if event in _WRITE_EVENTS:
                    self._unit_write_events[comp.unit].append(event)

    def report(self, activity: ActivityCounters) -> PowerminerReport:
        if activity.cycles <= 0:
            raise ModelError("activity has no cycles")
        floor = self.config.power.gating_floor
        ghost = self.config.power.ghost_factor
        units: Dict[str, UnitSwitchingStats] = {}
        for unit in UNIT_NAMES:
            util = activity.utilization(unit)
            enable = floor + (1.0 - floor) * util
            writes = sum(activity.events[ev]
                         for ev in self._unit_write_events[unit])
            data_sw = writes / activity.cycles
            units[unit] = UnitSwitchingStats(
                unit=unit,
                clock_enable_fraction=enable,
                data_switching_per_cycle=data_sw,
                ghost_switching_per_cycle=ghost * data_sw,
                potential_latch_switching=enable,
                observed_latch_switching=min(enable, data_sw))
        return PowerminerReport(config_name=self.config.name, units=units)
