"""Power modeling stack: Einspower reports, Powerminer switching stats,
APEX accelerated extraction, M1-linked counter models, the hardware
power proxy, the pipeline-depth study and V/f scaling."""

from .components import COMPONENT_NAMES, COMPONENTS, Component
from .einspower import ComponentPower, EinspowerModel, PowerReport
from .powerminer import Powerminer, PowerminerReport, UnitSwitchingStats
from .lfsr import LfsrBank, LfsrCounter, LfsrDecoder
from .apex import (Apex, ApexInterval, ApexRun, apex_power_from_activity,
                   compare_core_vs_chip, detailed_reference_power)
from .models import (BottomUpModel, TopDownModel, TrainingSet,
                     build_training_set, compare_top_down_bottom_up,
                     fit_bottom_up, fit_top_down, input_sweep)
from .proxy import (DesignPoint, PowerProxyDesigner, ProxyDesign,
                    candidate_counter_names)
from .pipeline_depth import (BASELINE_FO4, DepthPerformanceModel,
                             DepthPoint, DepthPowerModel, analyze_depth,
                             depth_study, optimal_fo4)
from .scaling import (VFCurve, VFPoint, apply_technology_scaling,
                      dynamic_power_scale, frequency_at_power,
                      leakage_power_scale)

__all__ = [
    "COMPONENT_NAMES", "COMPONENTS", "Component",
    "ComponentPower", "EinspowerModel", "PowerReport",
    "Powerminer", "PowerminerReport", "UnitSwitchingStats",
    "LfsrBank", "LfsrCounter", "LfsrDecoder",
    "Apex", "ApexInterval", "ApexRun", "apex_power_from_activity",
    "compare_core_vs_chip", "detailed_reference_power",
    "BottomUpModel", "TopDownModel", "TrainingSet",
    "build_training_set", "compare_top_down_bottom_up",
    "fit_bottom_up", "fit_top_down", "input_sweep",
    "DesignPoint", "PowerProxyDesigner", "ProxyDesign",
    "candidate_counter_names",
    "BASELINE_FO4", "DepthPerformanceModel", "DepthPoint",
    "DepthPowerModel", "analyze_depth", "depth_study", "optimal_fo4",
    "VFCurve", "VFPoint", "apply_technology_scaling",
    "dynamic_power_scale", "frequency_at_power", "leakage_power_scale",
]
