"""The 39-component power decomposition of the modeled core.

Section III-D: "39 components were defined and a counter-based power
model was implemented for each of them".  This module is the canonical
inventory: each component belongs to a clock-gating unit (one of
:data:`repro.core.activity.UNIT_NAMES`), has a power category in the
Einspower taxonomy (latch-clock is reported separately; the dynamic
categories here are ``logic`` data switching, ``array`` and register
file ``rf``), owns a set of activity events, and takes a share of its
unit's latch/clock power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.activity import EVENT_NAMES, UNIT_NAMES
from ..errors import ModelError

CATEGORIES = ("logic", "array", "rf", "clock")


@dataclass(frozen=True)
class Component:
    """One macro-level power component."""

    name: str
    unit: str                    # clock-gating domain
    category: str
    events: Tuple[str, ...]      # activity events charged here
    clock_share: float           # share of the unit's clock power


_RAW_COMPONENTS: List[Component] = [
    # --- instruction fetch ------------------------------------------------
    Component("icache", "ifu", "array",
              ("icache_access", "icache_miss"), 0.40),
    Component("fetch_pipe", "ifu", "logic", ("fetch_instr",), 0.30),
    Component("predecode", "ifu", "logic", ("predecode_instr",), 0.15),
    Component("ibuffer", "ifu", "array", ("ibuffer_write",), 0.15),
    Component("bp_direction", "branch", "array", ("bp_dir_lookup",), 0.45),
    Component("bp_target", "branch", "array", ("bp_tgt_lookup",), 0.30),
    Component("branch_exec", "branch", "logic",
              ("issue_branch", "bp_mispredict"), 0.25),
    # --- decode/dispatch --------------------------------------------------
    Component("decode", "decode", "logic", ("decode_instr",), 0.70),
    Component("fusion_logic", "decode", "logic", ("fusion_pair",), 0.30),
    Component("dispatch", "dispatch", "logic", ("dispatch_iop",), 0.60),
    Component("rename", "dispatch", "array", ("rename_write",), 0.40),
    Component("issue_queue", "issueq", "array",
              ("issueq_write", "issueq_wakeup"), 1.00),
    Component("completion_table", "completion", "array",
              ("complete_instr",), 0.60),
    Component("flush_recovery", "completion", "logic",
              ("flush_instr", "flush_event"), 0.40),
    # --- register files and execution -------------------------------------
    Component("regfile", "regfile", "rf", ("rf_read", "rf_write"), 1.00),
    Component("fx_alu", "fx", "logic", ("issue_fx",), 1.00),
    Component("fx_muldiv", "fx_muldiv", "logic",
              ("issue_fx_muldiv",), 1.00),
    Component("cr_exec", "cr", "logic", ("issue_cr",), 1.00),
    Component("fp_scalar", "fp", "logic", ("issue_fp",), 1.00),
    Component("vsu_fma", "vsu", "logic", ("issue_vsx",), 1.00),
    Component("mma_grid", "mma", "logic", ("issue_mma",), 0.70),
    Component("mma_acc", "mma", "rf",
              ("mma_acc_access", "mma_move"), 0.30),
    # --- load/store -------------------------------------------------------
    Component("lsu_agen", "lsu", "logic", ("agen",), 0.30),
    Component("load_queue", "lsu", "array",
              ("load_issue", "loadq_write"), 0.25),
    Component("store_queue", "lsu", "array",
              ("store_issue", "storeq_write", "storeq_merge"), 0.25),
    Component("lmq", "lsu", "array", ("lmq_alloc",), 0.20),
    Component("l1d_array", "l1d", "array", ("l1d_access",), 0.70),
    Component("l1d_ctl", "l1d", "logic", ("l1d_miss",), 0.30),
    # --- translation ------------------------------------------------------
    Component("erat", "erat_mmu", "array",
              ("erat_lookup", "erat_miss"), 0.40),
    Component("tlb", "erat_mmu", "array",
              ("tlb_lookup", "tlb_miss"), 0.40),
    Component("mmu_walk", "erat_mmu", "logic", ("tablewalk",), 0.20),
    Component("prefetch_engine", "prefetch", "logic",
              ("prefetch_issued", "prefetch_useful"), 1.00),
    # --- nest-side caches -------------------------------------------------
    Component("l2_array", "l2", "array", ("l2_access",), 0.70),
    Component("l2_ctl", "l2", "logic", ("l2_miss",), 0.30),
    Component("l3_array", "l3", "array", ("l3_access",), 0.60),
    Component("l3_ctl", "l3", "logic",
              ("l3_miss", "mem_access"), 0.40),
    # --- pervasive (clock-only components) --------------------------------
    Component("pervasive_clock", "issueq", "clock", (), 0.0),
    Component("thread_mgmt", "dispatch", "clock", (), 0.0),
    Component("core_misc", "completion", "clock", (), 0.0),
]

COMPONENTS: Tuple[Component, ...] = tuple(_RAW_COMPONENTS)
COMPONENT_NAMES: Tuple[str, ...] = tuple(c.name for c in COMPONENTS)

# Event -> component lookup (each event charged to exactly one component).
EVENT_COMPONENT: Dict[str, str] = {}
for _comp in COMPONENTS:
    for _ev in _comp.events:
        if _ev in EVENT_COMPONENT:
            raise ModelError(
                f"event {_ev} assigned to two components")
        EVENT_COMPONENT[_ev] = _comp.name


def validate_inventory() -> None:
    """Sanity-check the component table; raises on inconsistency."""
    if len(COMPONENTS) != 39:
        raise ModelError(
            f"expected 39 components, found {len(COMPONENTS)}")
    for comp in COMPONENTS:
        if comp.unit not in UNIT_NAMES:
            raise ModelError(f"{comp.name}: unknown unit {comp.unit}")
        if comp.category not in CATEGORIES:
            raise ModelError(
                f"{comp.name}: unknown category {comp.category}")
        for ev in comp.events:
            if ev not in EVENT_NAMES:
                raise ModelError(f"{comp.name}: unknown event {ev}")
    uncharged = set(EVENT_NAMES) - set(EVENT_COMPONENT)
    if uncharged:
        raise ModelError(f"events charged nowhere: {sorted(uncharged)}")


def components_of_unit(unit: str) -> List[Component]:
    return [c for c in COMPONENTS if c.unit == unit]


validate_inventory()
