"""Analysis utilities: metrics, constrained regression, and report
formatting for the benchmark harness."""

from .metrics import (bips, efficiency_gain, energy_delay_product, geomean,
                      perf_per_watt, weighted_mean)
from .regression import (FitResult, GreedyFeatureSelector,
                         mean_abs_pct_error, nnls, ols, predict)
from .report import format_comparison, format_series, format_table
from .validate import (EnvironmentRow, PowerValidationRow,
                       RegressionReport, cross_environment_performance,
                       cross_model_power, generational_goal_check,
                       regression_check)

__all__ = [
    "bips", "efficiency_gain", "energy_delay_product", "geomean",
    "perf_per_watt", "weighted_mean",
    "FitResult", "GreedyFeatureSelector", "mean_abs_pct_error",
    "nnls", "ols", "predict",
    "format_comparison", "format_series", "format_table",
    "EnvironmentRow", "PowerValidationRow", "RegressionReport",
    "cross_environment_performance", "cross_model_power",
    "generational_goal_check", "regression_check",
]
