"""Regression utilities for counter-based power modeling.

The paper builds its M1-linked power models and hardware power proxy
with "counter-based power modeling methodologies based on machine
learning techniques": linear models over performance-counter rates,
fitted under implementation constraints (bounded input counts,
non-negative coefficients, with/without intercept).  This module
provides exactly that toolbox:

* :func:`ols` — ordinary least squares (numpy lstsq),
* :func:`nnls` — non-negative least squares (projected coordinate
  descent; scipy-free fallback is unnecessary since scipy ships, but we
  keep the implementation explicit for bounded behaviour),
* :class:`GreedyFeatureSelector` — forward stepwise selection to the
  requested input budget, the mechanism behind Figs. 11 and 15(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModelError


def _design(x: np.ndarray, intercept: bool) -> np.ndarray:
    if intercept:
        return np.hstack([x, np.ones((x.shape[0], 1))])
    return x


def ols(x: np.ndarray, y: np.ndarray, *,
        intercept: bool = True) -> np.ndarray:
    """Least-squares fit; returns coefficients (intercept last if any)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
        raise ModelError("design matrix and target sizes do not match")
    design = _design(x, intercept)
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    return coef


def nnls(x: np.ndarray, y: np.ndarray, *, intercept: bool = True,
         iterations: int = 500) -> np.ndarray:
    """Non-negative least squares via scipy, intercept unconstrained."""
    from scipy.optimize import nnls as scipy_nnls
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if not intercept:
        coef, _ = scipy_nnls(x, y)
        return coef
    # unconstrained intercept: alternate between intercept and nn coefs
    icept = float(np.mean(y))
    coef = np.zeros(x.shape[1])
    for _ in range(12):
        coef, _ = scipy_nnls(x, y - icept)
        icept = float(np.mean(y - x @ coef))
    return np.append(coef, icept)


def predict(x: np.ndarray, coef: np.ndarray, *,
            intercept: bool = True) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    return _design(x, intercept) @ coef


def mean_abs_pct_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean |error| as a percentage of the true value (paper's metric)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    denom = np.where(np.abs(y_true) < 1e-12, 1e-12, np.abs(y_true))
    return float(np.mean(np.abs(y_true - y_pred) / denom) * 100.0)


@dataclass
class FitResult:
    """A fitted constrained linear model."""

    feature_indices: List[int]
    feature_names: List[str]
    coefficients: np.ndarray
    intercept_used: bool
    nonnegative: bool
    train_error_pct: float

    def predict(self, x_full: np.ndarray) -> np.ndarray:
        x = np.asarray(x_full, dtype=float)[:, self.feature_indices]
        return predict(x, self.coefficients, intercept=self.intercept_used)


class GreedyFeatureSelector:
    """Forward stepwise selection of model inputs.

    Mirrors the paper's model-design exploration: "thousands of models
    were generated with different modeling constraints, such as number
    of inputs, coefficient ranges (all positive or not), intercepts
    (with and without)".
    """

    def __init__(self, feature_names: Sequence[str], *,
                 nonnegative: bool = False, intercept: bool = True):
        self.feature_names = list(feature_names)
        self.nonnegative = nonnegative
        self.intercept = intercept

    def _fit(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.nonnegative:
            return nnls(x, y, intercept=self.intercept)
        return ols(x, y, intercept=self.intercept)

    def fit(self, x: np.ndarray, y: np.ndarray,
            max_inputs: int) -> FitResult:
        """Select up to ``max_inputs`` features greedily by train error."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if max_inputs <= 0:
            raise ModelError("max_inputs must be positive")
        if x.shape[1] != len(self.feature_names):
            raise ModelError("feature-name count mismatch")
        chosen: List[int] = []
        remaining = list(range(x.shape[1]))
        best_coef: Optional[np.ndarray] = None
        best_err = float("inf")
        while remaining and len(chosen) < max_inputs:
            round_best: Optional[Tuple[float, int, np.ndarray]] = None
            for idx in remaining:
                cols = chosen + [idx]
                coef = self._fit(x[:, cols], y)
                err = mean_abs_pct_error(
                    y, predict(x[:, cols], coef, intercept=self.intercept))
                if round_best is None or err < round_best[0]:
                    round_best = (err, idx, coef)
            err, idx, coef = round_best
            if err >= best_err - 1e-9 and chosen:
                break       # no further improvement
            chosen.append(idx)
            remaining.remove(idx)
            best_err = err
            best_coef = coef
        return FitResult(
            feature_indices=chosen,
            feature_names=[self.feature_names[i] for i in chosen],
            coefficients=best_coef,
            intercept_used=self.intercept,
            nonnegative=self.nonnegative,
            train_error_pct=best_err)
