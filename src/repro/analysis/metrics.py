"""Performance/efficiency metrics shared by benchmarks and reports."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..errors import ModelError


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the SPEC aggregation rule)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ModelError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ModelError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def weighted_mean(values: Sequence[float],
                  weights: Sequence[float]) -> float:
    if len(values) != len(weights) or not values:
        raise ModelError("values and weights must align and be non-empty")
    total = sum(weights)
    if total <= 0:
        raise ModelError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total


def bips(ipc: float, frequency_ghz: float) -> float:
    """Billions of instructions per second (Fig. 2's y-axis)."""
    if ipc < 0 or frequency_ghz <= 0:
        raise ModelError("ipc must be >= 0 and frequency positive")
    return ipc * frequency_ghz


def perf_per_watt(ipc: float, power_w: float) -> float:
    if power_w <= 0:
        raise ModelError("power must be positive")
    return ipc / power_w


def energy_delay_product(power_w: float, seconds: float) -> float:
    """EDP = energy x delay; lower is better."""
    if power_w < 0 or seconds <= 0:
        raise ModelError("need non-negative power and positive time")
    return power_w * seconds * seconds


def efficiency_gain(perf_ratio: float, power_ratio: float) -> float:
    """Perf/W ratio between two designs (the paper's 2.6x metric)."""
    if perf_ratio <= 0 or power_ratio <= 0:
        raise ModelError("ratios must be positive")
    return perf_ratio / power_ratio
