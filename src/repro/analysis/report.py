"""Plain-text table/series formatting for benchmark harness output.

Every ``benchmarks/bench_*.py`` prints the rows/series of its paper
table or figure through these helpers, so the output format is uniform
and EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence
from ..errors import AnalysisError


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table."""
    cols = len(headers)
    for row in rows:
        if len(row) != cols:
            raise AnalysisError("row width does not match headers")
    cells = [[str(h) for h in headers]] + \
            [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(r[c]) for r in cells) for c in range(cols)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title: str, series: Mapping[str, Sequence[float]],
                  x_label: str, x_values: Sequence[object]) -> str:
    """A figure rendered as one column per series (x in the first)."""
    headers = [x_label] + list(series.keys())
    rows: List[List[object]] = []
    for i, x in enumerate(x_values):
        rows.append([x] + [vals[i] for vals in series.values()])
    return format_table(title, headers, rows)


def format_comparison(title: str, paper: Mapping[str, float],
                      measured: Mapping[str, float]) -> str:
    """Paper-vs-measured table for EXPERIMENTS.md."""
    rows = []
    for key in paper:
        p = paper[key]
        m = measured.get(key, float("nan"))
        ratio = m / p if p else float("nan")
        rows.append([key, round(p, 3), round(m, 3), f"{ratio:.2f}x"])
    return format_table(title, ["quantity", "paper", "measured",
                                "measured/paper"], rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
