"""Cross-model / cross-environment validation (Section III-A/III-B).

The paper's proxies exist partly so the *same* workloads can run on
every environment (RTLSim, M1, APEX, hardware) and results can be
cross-checked.  This module provides the comparison machinery:

* :func:`cross_model_power` — detailed (Einspower) vs APEX vs a fitted
  counter model on the same runs;
* :func:`cross_environment_performance` — the timing model at different
  fidelities (full-chip vs infinite-L2 core model) on the same trace;
* :func:`regression_check` — the project-tracking use: compare one
  model version's suite results against a stored baseline and flag
  per-workload regressions (the paper's "detect performance regressions
  ... and pinpoint cases where core performance does not achieve the
  generational performance improvement goals").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..core.config import CoreConfig
from ..core.pipeline import simulate
from ..errors import ModelError
from ..power.apex import apex_power_from_activity
from ..power.einspower import EinspowerModel


@dataclass
class PowerValidationRow:
    workload: str
    einspower_w: float
    apex_w: float
    model_w: float

    @property
    def apex_error_pct(self) -> float:
        return abs(self.apex_w - self.einspower_w) \
            / self.einspower_w * 100.0

    @property
    def model_error_pct(self) -> float:
        return abs(self.model_w - self.einspower_w) \
            / self.einspower_w * 100.0


def cross_model_power(config: CoreConfig, traces, model=None, *,
                      warmup_fraction: float = 0.3,
                      ) -> List[PowerValidationRow]:
    """Validate APEX and (optionally) a fitted counter model against the
    Einspower reference on the same activity."""
    import numpy as np
    from ..core.activity import EVENT_NAMES
    reference = EinspowerModel(config)
    rows: List[PowerValidationRow] = []
    for trace in traces:
        result = simulate(config, trace, warmup_fraction=warmup_fraction)
        ein = reference.report(result.activity)
        apex = apex_power_from_activity(config, result.activity)
        model_w = ein.total_w
        if model is not None:
            rates = result.activity.rates()
            features = np.array([[rates[ev] for ev in EVENT_NAMES]])
            static = ein.total_w - ein.active_w
            model_w = float(model.predict(features)[0]) + static
        rows.append(PowerValidationRow(
            workload=trace.name, einspower_w=ein.total_w,
            apex_w=apex, model_w=model_w))
    if not rows:
        raise ModelError("no workloads to validate")
    return rows


@dataclass
class EnvironmentRow:
    workload: str
    chip_ipc: float
    core_ipc: float

    @property
    def divergence_pct(self) -> float:
        return (self.core_ipc / self.chip_ipc - 1.0) * 100.0


def cross_environment_performance(chip_config: CoreConfig,
                                  core_config: CoreConfig, traces, *,
                                  warmup_fraction: float = 0.3,
                                  ) -> List[EnvironmentRow]:
    """Same traces at two modeling fidelities (Fig. 10's purpose)."""
    rows = []
    for trace in traces:
        chip = simulate(chip_config, trace,
                        warmup_fraction=warmup_fraction)
        core = simulate(core_config, trace,
                        warmup_fraction=warmup_fraction)
        rows.append(EnvironmentRow(workload=trace.name,
                                   chip_ipc=chip.ipc,
                                   core_ipc=core.ipc))
    if not rows:
        raise ModelError("no workloads to compare")
    return rows


@dataclass
class RegressionReport:
    regressions: Dict[str, float]       # workload -> ratio vs baseline
    improvements: Dict[str, float]
    unchanged: Dict[str, float]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)


def regression_check(current: Mapping[str, float],
                     baseline: Mapping[str, float], *,
                     tolerance: float = 0.02) -> RegressionReport:
    """Compare per-workload metrics against a stored baseline.

    ``current``/``baseline`` map workload name to a
    higher-is-better metric (IPC, perf/W).  Workloads missing from
    either side are an error — silently dropping coverage is how
    regressions escape.
    """
    if set(current) != set(baseline):
        missing = set(current) ^ set(baseline)
        raise ModelError(f"workload sets differ: {sorted(missing)}")
    if tolerance < 0:
        raise ModelError("tolerance must be non-negative")
    regressions, improvements, unchanged = {}, {}, {}
    for name, value in current.items():
        base = baseline[name]
        if base <= 0:
            raise ModelError(f"baseline for {name} must be positive")
        ratio = value / base
        if ratio < 1.0 - tolerance:
            regressions[name] = ratio
        elif ratio > 1.0 + tolerance:
            improvements[name] = ratio
        else:
            unchanged[name] = ratio
    return RegressionReport(regressions=regressions,
                            improvements=improvements,
                            unchanged=unchanged)


def generational_goal_check(p9_ipc: Mapping[str, float],
                            p10_ipc: Mapping[str, float], *,
                            goal: float = 1.25) -> Dict[str, float]:
    """Workloads falling short of the generational improvement goal
    (the paper's target: "at least a 25% boost in per-core throughput").
    Returns {workload: achieved_ratio} for the shortfalls."""
    if set(p9_ipc) != set(p10_ipc):
        raise ModelError("workload sets differ")
    return {name: p10_ipc[name] / p9_ipc[name]
            for name in p9_ipc
            if p10_ipc[name] / p9_ipc[name] < goal}
