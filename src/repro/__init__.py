"""repro — a reproduction of "Energy Efficiency Boost in the AI-Infused
POWER10 Processor" (ISCA 2021).

The package models the paper's two subjects — the POWER10 core's energy
efficiency mechanisms and the MMA inline AI accelerator — together with
the complete pre-silicon methodology built around them (Einspower /
Powerminer / APEX power tooling, workload proxies and Tracepoints,
counter-based power models, SERMiner reliability analysis, and the WOF
power-management stack).

Quickstart::

    from repro.core import power9_config, power10_config, simulate_trace
    from repro.workloads import specint_proxies

    trace = specint_proxies(names=["xz"])[0]
    p9 = simulate_trace(power9_config(), trace)
    p10 = simulate_trace(power10_config(), trace)
    print(p10.ipc / p9.ipc, p10.power_w / p9.power_w)
"""

__version__ = "1.0.0"

from . import (analysis, core, obs, pm, power, reliability, tracegen,
               workloads)

__all__ = ["analysis", "core", "obs", "pm", "power", "reliability",
           "tracegen", "workloads", "__version__"]
