"""Campaign runner: N seeded fault-injection runs with checkpointing.

The methodology is the counter-vs-ground-truth loop the related work
applies to power models, pointed at the defensive stack instead: every
run draws a reproducible fault schedule, executes the timing model with
the injector installed, exercises the PM stack (fail-safe OCC + droop
loop) on the run's telemetry, and classifies the outcome against a
golden (injection-free) reference:

* ``masked`` — nothing observable happened;
* ``detected`` — a validity check tripped (counter parity analog,
  strict event accounting, model input validation) and the run
  fail-stopped;
* ``degraded`` — the run completed architecturally correct but the
  defenses engaged (timing perturbation, OCC last-good/fail-safe
  substitution, droop throttle);
* ``sdc`` — silent data corruption: architected outputs differ and no
  defense noticed;
* ``hang`` — the per-run cycle-budget watchdog fired
  (:class:`~repro.errors.HangError`), converting a runaway simulation
  into a classified outcome instead of wedging the campaign.

The runner writes a JSON checkpoint after *every* run; an interrupted
campaign resumed from its checkpoint produces results bit-identical to
an uninterrupted one, because per-run seeds derive only from
``(campaign seed, run index)`` and runs share no mutable state.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..core import power9_config, power10_config
from ..core.pipeline import simulate
from ..errors import HangError, ReproError, ResilienceError
from ..obs.metrics import get_registry
from ..obs.sampler import CycleIntervalSampler
from ..pm.dds import DigitalDroopSensor, SupplyModel
from ..pm.occ import OnChipController
from ..pm.throttle import CoarseThrottle, run_throttled_current
from ..pm.wof import WofDesignPoint, WofGovernor
from ..reliability.latches import build_population
from .faults import FaultSchedule, generate_schedule
from .injector import FaultInjector, injection

OUTCOMES = ("masked", "detected", "degraded", "sdc", "hang")

CHECKPOINT_VERSION = 1


# The campaign workload namespace is the shared one: identical names
# fingerprint to identical exec-cache keys everywhere.
from ..workloads.resolve import resolve_workload  # noqa: E402  (re-export)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's results.

    Frozen: the fingerprint of this record guards checkpoint resume —
    resuming under a different configuration is an error, not a silent
    mix of incompatible runs.
    """

    seed: int = 0
    runs: int = 8
    workload: str = "xz"
    instructions: int = 2000
    faults_per_run: int = 3
    generation: str = "power10"          # "power9" | "power10"
    interval_cycles: int = 500
    cycle_budget_factor: float = 8.0
    staleness_budget: int = 2

    def __post_init__(self) -> None:
        if self.runs <= 0:
            raise ResilienceError("campaign needs at least one run")
        if self.instructions <= 0:
            raise ResilienceError("instructions must be positive")
        if self.faults_per_run <= 0:
            raise ResilienceError("faults_per_run must be positive")
        if self.generation not in ("power9", "power10"):
            raise ResilienceError(
                f"unknown generation {self.generation!r}")
        if self.cycle_budget_factor <= 1.0:
            raise ResilienceError(
                "cycle_budget_factor must exceed 1.0 (the golden run)")

    def fingerprint(self) -> str:
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def run_seed(self, index: int) -> int:
        """Per-run seed: a pure function of (campaign seed, index)."""
        return (self.seed * 1_000_003 + index * 7919 + 1) & 0x7FFFFFFF


@dataclass
class RunRecord:
    """One campaign run's classified outcome."""

    index: int
    seed: int
    outcome: str
    detail: str
    cycles: int                       # -1 when the run fail-stopped
    schedule: Dict[str, object]       # FaultSchedule.to_json()
    injections: List[Dict[str, object]] = field(default_factory=list)
    pm: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {"index": self.index, "seed": self.seed,
                "outcome": self.outcome, "detail": self.detail,
                "cycles": self.cycles, "schedule": self.schedule,
                "injections": list(self.injections),
                "pm": dict(self.pm)}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "RunRecord":
        try:
            return cls(index=int(data["index"]), seed=int(data["seed"]),
                       outcome=str(data["outcome"]),
                       detail=str(data["detail"]),
                       cycles=int(data["cycles"]),
                       schedule=dict(data["schedule"]),
                       injections=list(data["injections"]),
                       pm=dict(data.get("pm", {})))
        except (KeyError, TypeError, ValueError) as exc:
            raise ResilienceError(
                f"malformed campaign run record: {exc}") from exc


@dataclass
class CampaignResult:
    """All completed runs of one campaign."""

    config: CampaignConfig
    records: List[RunRecord]
    golden_cycles: int

    def counts(self) -> Dict[str, int]:
        out = {name: 0 for name in OUTCOMES}
        for record in self.records:
            out[record.outcome] += 1
        return out

    @property
    def complete(self) -> bool:
        return len(self.records) >= self.config.runs

    def to_json(self) -> Dict[str, object]:
        return {"config": asdict(self.config),
                "fingerprint": self.config.fingerprint(),
                "golden_cycles": self.golden_cycles,
                "counts": self.counts(),
                "records": [r.to_json() for r in self.records]}


class CampaignRunner:
    """Executes a campaign, checkpointing after every run."""

    def __init__(self, config: CampaignConfig, *,
                 checkpoint: Optional[os.PathLike] = None):
        self.config = config
        self.core_config = (power9_config()
                            if config.generation == "power9"
                            else power10_config())
        self.trace = resolve_workload(config.workload,
                                      config.instructions)
        self.population = build_population(self.core_config)
        self.checkpoint_path = (Path(checkpoint)
                                if checkpoint is not None else None)
        self._golden: Optional[Dict[str, object]] = None

    # ---- golden reference --------------------------------------------

    def golden(self) -> Dict[str, object]:
        """The injection-free reference run (computed once, lazily).

        Deterministic, so a resumed campaign recomputes the identical
        reference instead of trusting the checkpoint's copy; the
        checkpoint's golden cycle count is only used as a consistency
        check.
        """
        if self._golden is None:
            sampler = CycleIntervalSampler(self.config.interval_cycles)
            result = simulate(self.core_config, self.trace,
                              sampler=sampler)
            from ..power.einspower import EinspowerModel
            power_w = EinspowerModel(
                self.core_config).report(result.activity).total_w
            self._golden = {
                "cycles": result.cycles,
                "instructions": result.instructions,
                "flops": result.flops,
                "events": dict(result.activity.events),
                "power_w": power_w,
                "n_intervals": max(1, len(sampler.samples)),
                "activity": result.activity,
            }
        return self._golden

    # ---- one run ------------------------------------------------------

    def run_one(self, index: int) -> RunRecord:
        golden = self.golden()
        seed = self.config.run_seed(index)
        schedule = generate_schedule(
            seed,
            population=self.population,
            n_instructions=len(self.trace.instructions),
            n_intervals=int(golden["n_intervals"]),
            n_faults=self.config.faults_per_run)
        budget = int(golden["cycles"]
                     * self.config.cycle_budget_factor)
        injector = FaultInjector(schedule, cycle_budget=budget)
        sampler = CycleIntervalSampler(self.config.interval_cycles)
        registry = get_registry()
        for fault in schedule.faults:
            registry.counter(
                "repro_faults_injected_total",
                "faults delivered by injection campaigns").inc(
                    kind=fault.kind)

        outcome = detail = None
        cycles = -1
        pm_stats: Dict[str, int] = {}
        try:
            with injection(injector):
                result = simulate(self.core_config, self.trace,
                                  sampler=sampler)
        except HangError as exc:
            outcome, detail = "hang", str(exc)
        except ReproError as exc:
            outcome, detail = "detected", \
                f"{type(exc).__name__}: {exc}"
        else:
            cycles = result.cycles
            pm_stats = self._pm_phase(injector, sampler.samples)
            outcome, detail = self._classify(golden, result, pm_stats)

        registry.counter(
            "repro_campaign_runs_total",
            "campaign runs classified, by outcome").inc(outcome=outcome)
        return RunRecord(
            index=index, seed=seed, outcome=outcome, detail=detail,
            cycles=cycles, schedule=schedule.to_json(),
            injections=[r.to_json() for r in injector.records],
            pm=pm_stats)

    def _pm_phase(self, injector: FaultInjector,
                  samples) -> Dict[str, int]:
        """Drive the fail-safe OCC and the droop loop from this run's
        telemetry; returns the defense counters."""
        if not samples:
            return {"occ_degraded": 0, "occ_failsafe": 0,
                    "droop_engages": 0, "droop_events": 0}
        golden = self.golden()
        envelope = max(1e-3, float(golden["power_w"]))
        governor = WofGovernor(
            self.core_config,
            WofDesignPoint(tdp_core_w=envelope,
                           rdp_core_w=envelope * 1.1))
        occ = OnChipController(
            governor, cores=1, socket_budget_w=envelope,
            staleness_budget=self.config.staleness_budget)
        occ.run_from_samples({0: list(samples)})

        # droop surface: per-interval proxy power read as the demanded
        # current (non-finite readings draw nothing); injected steps
        # overlaid on top, then the sensor/coarse-throttle closed loop
        currents = [s.proxy_w if math.isfinite(s.proxy_w) else 0.0
                    for s in samples]
        currents = injector.apply_droop(currents)
        throttle = CoarseThrottle()
        sensor = DigitalDroopSensor()
        run_throttled_current(currents, sensor, SupplyModel(),
                              throttle)
        return {"occ_degraded": occ.degraded_ticks,
                "occ_failsafe": occ.failsafe_ticks,
                "droop_engages": throttle.engage_count,
                "droop_events": len(sensor.events)}

    @staticmethod
    def _classify(golden: Dict[str, object], result,
                  pm_stats: Dict[str, int]):
        arch_same = (dict(result.activity.events) == golden["events"]
                     and result.flops == golden["flops"]
                     and result.instructions == golden["instructions"])
        timing_same = result.cycles == golden["cycles"]
        if not arch_same:
            return "sdc", ("architected activity diverged from the "
                           "golden run with no detection")
        defenses = (pm_stats.get("occ_degraded", 0)
                    + pm_stats.get("occ_failsafe", 0)
                    + pm_stats.get("droop_engages", 0))
        if not timing_same:
            return "degraded", (
                f"timing perturbed: {result.cycles} vs golden "
                f"{golden['cycles']} cycles")
        if defenses:
            return "degraded", (
                f"PM defenses engaged (occ_degraded="
                f"{pm_stats.get('occ_degraded', 0)}, occ_failsafe="
                f"{pm_stats.get('occ_failsafe', 0)}, droop_engages="
                f"{pm_stats.get('droop_engages', 0)})")
        return "masked", "bit-identical to the golden run"

    # ---- campaign loop with checkpoint/resume ------------------------

    def run(self, *, max_runs: Optional[int] = None,
            workers: Optional[int] = None,
            cache=None, engine=None) -> CampaignResult:
        """Execute (or resume) the campaign.

        ``max_runs`` bounds how many *new* runs this invocation
        executes — the test harness uses it to simulate a killed
        campaign.  Runs go through the execution engine
        (:class:`repro.exec.Engine`) as ``campaign`` tasks, which is
        valid because each run's fault schedule is a pure function of
        ``(campaign seed, index)``; ``workers``/``cache`` configure a
        fresh engine (None falls back to ``$REPRO_WORKERS`` /
        ``$REPRO_CACHE_DIR``), or pass ``engine`` to share one.

        The checkpoint is written after every completed batch (every
        run when serial, every ``workers`` runs when parallel), and
        cache hits replay into it exactly like executed runs — a warm
        rerun reproduces the checkpoint bit for bit.
        """
        from ..exec.executor import (Engine, ExecPlan, campaign_task)
        if engine is None:
            engine = Engine(workers=workers, cache=cache)
        golden = self.golden()
        records = self._load_checkpoint(int(golden["cycles"]))
        done = {r.index for r in records}
        pending = [i for i in range(self.config.runs) if i not in done]
        if max_runs is not None:
            pending = pending[:max_runs]
        batch_size = max(1, engine.workers)
        for start in range(0, len(pending), batch_size):
            batch = pending[start:start + batch_size]
            payloads = engine.run(ExecPlan(
                [campaign_task(self.config, i) for i in batch]))
            records.extend(RunRecord.from_json(p) for p in payloads)
            records.sort(key=lambda r: r.index)
            self._write_checkpoint(records, int(golden["cycles"]))
        return CampaignResult(config=self.config, records=records,
                              golden_cycles=int(golden["cycles"]))

    def _load_checkpoint(self, golden_cycles: int) -> List[RunRecord]:
        path = self.checkpoint_path
        if path is None or not path.is_file():
            return []
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ResilienceError(
                f"unreadable campaign checkpoint {path}: {exc}") from exc
        if data.get("version") != CHECKPOINT_VERSION:
            raise ResilienceError(
                f"checkpoint {path} has version "
                f"{data.get('version')!r}, expected {CHECKPOINT_VERSION}")
        if data.get("fingerprint") != self.config.fingerprint():
            raise ResilienceError(
                f"checkpoint {path} belongs to a different campaign "
                f"configuration — refusing to resume")
        if data.get("golden_cycles") != golden_cycles:
            raise ResilienceError(
                f"checkpoint {path} golden reference "
                f"({data.get('golden_cycles')}) does not match this "
                f"tree ({golden_cycles}) — the model changed under the "
                f"campaign")
        return [RunRecord.from_json(r) for r in data.get("records", [])]

    def _write_checkpoint(self, records: List[RunRecord],
                          golden_cycles: int) -> None:
        path = self.checkpoint_path
        if path is None:
            return
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.config.fingerprint(),
            "config": asdict(self.config),
            "golden_cycles": golden_cycles,
            "records": [r.to_json() for r in records],
        }
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)
