"""AVF-style campaign reporting and the SERMiner cross-check.

SERMiner (Section III-E) *predicts* which latch groups are derated —
flips into them should not propagate — from clock-utilization statics.
The campaign *measures* the same thing: every latch-flip injection
records whether it propagated at the injection site.  This module
joins the two views per latch group:

* **predicted vulnerable** — the group's switching activity on the
  campaign workload meets the VT threshold (the same rule
  :class:`~repro.reliability.serminer.SERMiner` applies);
* **observed propagated** — at least one injected flip into the group
  propagated.

Agreement between the columns is the end-to-end validation of the
derating claim; the report also carries the campaign's outcome
histogram and the measured AVF (fraction of latch flips that caused
any failure), which is the quantity derating is supposed to bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.activity import ActivityCounters
from ..errors import ResilienceError
from ..reliability.latches import LatchPopulation
from .campaign import OUTCOMES, CampaignResult


@dataclass
class GroupCheck:
    """Prediction-vs-observation for one injected latch group."""

    unit: str
    group_index: int
    group_kind: str
    injections: int
    propagated: int
    predicted_vulnerable: bool

    @property
    def observed_vulnerable(self) -> bool:
        return self.propagated > 0

    @property
    def agrees(self) -> bool:
        return self.predicted_vulnerable == self.observed_vulnerable

    def to_json(self) -> Dict[str, object]:
        return {"unit": self.unit, "group_index": self.group_index,
                "group_kind": self.group_kind,
                "injections": self.injections,
                "propagated": self.propagated,
                "predicted_vulnerable": self.predicted_vulnerable,
                "observed_vulnerable": self.observed_vulnerable,
                "agrees": self.agrees}


@dataclass
class CampaignReport:
    """Aggregated campaign outcomes plus the derating cross-check."""

    workload: str
    generation: str
    runs: int
    outcome_counts: Dict[str, int]
    faults_by_kind: Dict[str, int]
    latch_flips: int
    latch_flips_propagated: int
    vt: int
    checks: List[GroupCheck]

    @property
    def avf(self) -> float:
        """Architectural vulnerability proxy: fraction of latch flips
        that propagated (lower = more derating observed)."""
        if not self.latch_flips:
            return 0.0
        return self.latch_flips_propagated / self.latch_flips

    @property
    def agreement_pct(self) -> float:
        """How often SERMiner's static call matched the injection."""
        if not self.checks:
            return 100.0
        agree = sum(1 for c in self.checks if c.agrees)
        return 100.0 * agree / len(self.checks)

    def to_json(self) -> Dict[str, object]:
        return {"workload": self.workload,
                "generation": self.generation,
                "runs": self.runs,
                "outcome_counts": dict(self.outcome_counts),
                "faults_by_kind": dict(self.faults_by_kind),
                "latch_flips": self.latch_flips,
                "latch_flips_propagated": self.latch_flips_propagated,
                "avf": self.avf,
                "vt": self.vt,
                "agreement_pct": self.agreement_pct,
                "checks": [c.to_json() for c in self.checks]}

    def render_text(self) -> str:
        lines = [
            f"fault campaign: {self.runs} run(s) of {self.workload} "
            f"on {self.generation}",
            "outcomes: " + "  ".join(
                f"{name}={self.outcome_counts.get(name, 0)}"
                for name in OUTCOMES),
            f"latch flips: {self.latch_flips} injected, "
            f"{self.latch_flips_propagated} propagated "
            f"(AVF {self.avf:.2f})",
            f"SERMiner cross-check @ VT={self.vt}%: "
            f"{self.agreement_pct:.0f}% agreement over "
            f"{len(self.checks)} injected group(s)",
        ]
        for check in self.checks:
            mark = "ok" if check.agrees else "MISMATCH"
            lines.append(
                f"  {check.unit:10s} g{check.group_index:<3d} "
                f"{check.group_kind:7s} inj={check.injections:<3d} "
                f"prop={check.propagated:<3d} "
                f"predicted={'vuln' if check.predicted_vulnerable else 'derated':7s} "
                f"[{mark}]")
        return "\n".join(lines)


def build_report(result: CampaignResult,
                 population: LatchPopulation,
                 golden_activity: ActivityCounters, *,
                 vt: int = 50) -> CampaignReport:
    """Join campaign records with SERMiner's static prediction."""
    if not 0 < vt <= 100:
        raise ResilienceError(f"VT must be in (0, 100]: {vt}")
    switching = population.switching(golden_activity)
    predicted = {(g.unit, g.index): s >= max(1.0 - vt / 100.0, 1e-9)
                 for g, s in switching.items()}
    kinds = {(g.unit, g.index): g.kind for g in population.groups}

    faults_by_kind: Dict[str, int] = {}
    flips = 0
    flips_propagated = 0
    per_group: Dict[tuple, Dict[str, int]] = {}
    for record in result.records:
        for injection in record.injections:
            fault = injection["fault"]
            kind = str(fault.get("kind"))
            faults_by_kind[kind] = faults_by_kind.get(kind, 0) + 1
            if kind != "latch_flip":
                continue
            flips += 1
            key = (str(fault["unit"]), int(fault["group_index"]))
            stats = per_group.setdefault(
                key, {"injections": 0, "propagated": 0})
            stats["injections"] += 1
            if injection.get("propagated"):
                stats["propagated"] += 1
                flips_propagated += 1

    checks = []
    for key in sorted(per_group):
        stats = per_group[key]
        checks.append(GroupCheck(
            unit=key[0], group_index=key[1],
            group_kind=kinds.get(key, "control"),
            injections=stats["injections"],
            propagated=stats["propagated"],
            predicted_vulnerable=bool(predicted.get(key, False))))

    return CampaignReport(
        workload=result.config.workload,
        generation=result.config.generation,
        runs=len(result.records),
        outcome_counts=result.counts(),
        faults_by_kind=faults_by_kind,
        latch_flips=flips,
        latch_flips_propagated=flips_propagated,
        vt=vt,
        checks=checks)
