"""Service-level chaos: seeded process/cache/connection faults.

PR 3's fault layer attacks the *simulated core* (latch flips, counter
corruption, droop).  This module attacks the system that serves those
simulations — the paper's fail-safe philosophy applied one level up:
§IV-B demands the OCC keep the chip safe when its telemetry is lost,
and the serve/exec stack must likewise degrade predictably when a pool
worker is SIGKILLed, a cache entry rots, or a batch stalls.

The taxonomy (:data:`SERVICE_FAULT_KINDS`):

* ``worker_kill``  — SIGKILL the pool worker mid-task (the engine must
  rebuild the pool and re-dispatch, bit-identically);
* ``worker_stall`` — the worker sleeps past every deadline (the
  engine's watchdog must kill the pool and raise ``DeadlineError``);
* ``cache_corrupt`` — a cache entry is overwritten with torn JSON just
  before it is read (must read as a miss, be recounted, recomputed,
  and rewritten);
* ``cache_perm``   — a cache entry loses its read permission (ditto;
  vacuous when running as root, which can read anything);
* ``slow_batch``   — the batch thread sleeps before calling the engine
  (deadline pressure without killing anything);
* ``conn_drop``    — the server abruptly closes an accepted connection
  without responding (the client must see a transport error, never a
  torn body);
* ``worker_down``  — a whole serve worker dies mid-burst (the cluster
  supervisor claims the token and kills a worker; the router must
  fail the shard over with zero SDC and no lost requests).

Faults are *armed* as token files in a directory named by
``$REPRO_CHAOS_DIR`` and *claimed* exactly once via an atomic
``os.rename`` — safe across the parent, the batch thread, and forked
pool workers, all of which share the directory.  When the variable is
unset (the default, and always in production paths) every hook is a
no-op that never even imports this module.  ``$REPRO_CHAOS_PARENT``
pins the arming process id so worker-kind faults only ever fire inside
a *forked worker*, never the serving process itself.

:class:`ChaosCampaign` replays one seeded loadgen schedule under each
fault class and writes an availability report
(good/degraded/rejected/failed per class) with a zero-SDC assertion:
every 200-OK non-degraded body must be bit-identical to the fault-free
reference run.  ``repro chaos`` is the CLI front end.

This module deliberately imports neither ``asyncio`` nor ``threading``
nor ``concurrent.futures``: every effect runs synchronously in
whatever process claimed the token (the concurrency contracts R007-
R011 stay trivially satisfied).
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ChaosError
from ..obs.metrics import get_registry

#: environment variables the hooks check (hook call sites mirror the
#: ENV_CHAOS_DIR literal to avoid importing this module on hot paths)
ENV_CHAOS_DIR = "REPRO_CHAOS_DIR"
ENV_CHAOS_PARENT = "REPRO_CHAOS_PARENT"

WORKER_KILL = "worker_kill"
WORKER_STALL = "worker_stall"
CACHE_CORRUPT = "cache_corrupt"
CACHE_PERM = "cache_perm"
SLOW_BATCH = "slow_batch"
CONN_DROP = "conn_drop"
WORKER_DOWN = "worker_down"

# worker_down is appended (never inserted) so the per-kind RNG streams
# below stay stable for the pre-existing kinds
SERVICE_FAULT_KINDS: Tuple[str, ...] = (
    WORKER_KILL, WORKER_STALL, CACHE_CORRUPT, CACHE_PERM, SLOW_BATCH,
    CONN_DROP, WORKER_DOWN)

#: fault kinds that must fire inside a forked pool worker, never the
#: process that armed the campaign
_WORKER_KINDS = (WORKER_KILL, WORKER_STALL)

#: fault kinds that need a target cache-entry path that exists
_CACHE_KINDS = (CACHE_CORRUPT, CACHE_PERM)

#: hook name -> fault kinds that hook can fire.  The hooks live in
#: exec/executor.py (worker_task), serve/batcher.py (batch),
#: exec/cache.py (cache_get), serve/server.py (conn) and
#: cluster/supervisor.py (cluster).
HOOK_POINTS: Dict[str, Tuple[str, ...]] = {
    "worker_task": (WORKER_KILL, WORKER_STALL),
    "batch": (SLOW_BATCH,),
    "cache_get": (CACHE_CORRUPT, CACHE_PERM),
    "conn": (CONN_DROP,),
    "cluster": (WORKER_DOWN,),
}

#: bytes written over a cache entry by ``cache_corrupt`` — valid UTF-8,
#: invalid JSON, so the load path must take its corrupt branch
_TORN_ENTRY = b'{"torn": '


@dataclass(frozen=True)
class ServiceFault:
    """One armed service-level fault.

    ``delay_s`` is the sleep duration for the stall kinds
    (``worker_stall`` / ``slow_batch``) and must be positive for them;
    for ``worker_down`` it is how long the cluster supervisor waits
    before killing the victim; the other kinds ignore it.
    """

    kind: str
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ChaosError(
                f"unknown service fault kind {self.kind!r} (choices: "
                f"{', '.join(SERVICE_FAULT_KINDS)})")
        if self.delay_s < 0:
            raise ChaosError(
                f"delay_s must be >= 0, got {self.delay_s}")
        if self.kind in (WORKER_STALL, SLOW_BATCH) and self.delay_s <= 0:
            raise ChaosError(
                f"{self.kind} needs a positive delay_s")

    def to_json(self) -> Dict[str, object]:
        return {"kind": self.kind, "delay_s": self.delay_s}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ServiceFault":
        try:
            return cls(kind=str(data["kind"]),
                       delay_s=float(data.get("delay_s", 0.0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ChaosError(
                f"malformed service fault record: {data!r}") from exc


def generate_service_schedule(seed: int,
                              classes: Sequence[str] = SERVICE_FAULT_KINDS,
                              *, per_class: int = 1,
                              stall_s: float = 10.0,
                              slow_s: float = 0.8,
                              ) -> List[ServiceFault]:
    """A seed-deterministic fault list covering ``classes``.

    Stall durations are drawn in ``[1.0, 1.5] * stall_s`` (so a stall
    armed against a deadline of ``stall_s`` or less always overruns
    it); slow-batch delays in ``[0.5, 1.5] * slow_s``.
    """
    if per_class < 1:
        raise ChaosError(f"per_class must be >= 1, got {per_class}")
    faults: List[ServiceFault] = []
    for kind in classes:
        if kind not in SERVICE_FAULT_KINDS:
            raise ChaosError(
                f"unknown service fault kind {kind!r} (choices: "
                f"{', '.join(SERVICE_FAULT_KINDS)})")
        rng = np.random.default_rng(
            [int(seed), SERVICE_FAULT_KINDS.index(kind)])
        for _ in range(per_class):
            delay = 0.0
            if kind == WORKER_STALL:
                delay = round(stall_s * (1.0 + 0.5 * float(rng.random())), 3)
            elif kind in (SLOW_BATCH, WORKER_DOWN):
                # for worker_down the delay is how long the cluster
                # supervisor waits before killing, so the death lands
                # mid-burst rather than at arm time
                delay = round(slow_s * (0.5 + float(rng.random())), 3)
            faults.append(ServiceFault(kind=kind, delay_s=delay))
    return faults


# --------------------------------------------------------------------------
# The token-file runtime.
# --------------------------------------------------------------------------

class ChaosController:
    """Arms faults as token files and reports what fired.

    A token is claimed by renaming ``NNNN-<kind>.json`` to
    ``NNNN-<kind>.json.fired`` — atomic within a filesystem, so the
    parent process, the batch thread, and every forked pool worker can
    race for the same token and exactly one wins.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def arm(self, faults: Sequence[ServiceFault]) -> List[Path]:
        start = len(list(self.root.glob("*.json"))) \
            + len(list(self.root.glob("*.fired")))
        paths = []
        for offset, fault in enumerate(faults):
            path = self.root / f"{start + offset:04d}-{fault.kind}.json"
            path.write_text(json.dumps(fault.to_json(), sort_keys=True))
            paths.append(path)
        return paths

    def armed(self) -> List[ServiceFault]:
        """Faults still waiting to fire."""
        return [ServiceFault.from_json(json.loads(p.read_text()))
                for p in sorted(self.root.glob("*.json"))]

    def fired(self) -> List[ServiceFault]:
        """Faults that were claimed (by any process)."""
        return [ServiceFault.from_json(json.loads(p.read_text()))
                for p in sorted(self.root.glob("*.fired"))]

    def summary(self) -> Dict[str, object]:
        fired = self.fired()
        return {"armed_left": len(self.armed()),
                "fired": [f.to_json() for f in fired]}


@contextlib.contextmanager
def service_chaos(faults: Sequence[ServiceFault], root,
                  ) -> Iterator[ChaosController]:
    """Arm ``faults`` under ``root`` and expose them via the chaos
    environment for the duration of the block.

    Must wrap server/engine *startup* so forked pool workers inherit
    the variables.  ``$REPRO_CHAOS_PARENT`` records this process id:
    worker-kind faults refuse to fire in it, so a serial (in-process)
    execution path can never SIGKILL the server itself.
    """
    controller = ChaosController(root)
    controller.arm(faults)
    prev_dir = os.environ.get(ENV_CHAOS_DIR)
    prev_parent = os.environ.get(ENV_CHAOS_PARENT)
    os.environ[ENV_CHAOS_DIR] = str(controller.root)
    os.environ[ENV_CHAOS_PARENT] = str(os.getpid())
    try:
        yield controller
    finally:
        for name, prev in ((ENV_CHAOS_DIR, prev_dir),
                           (ENV_CHAOS_PARENT, prev_parent)):
            if prev is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = prev


def _in_worker() -> bool:
    parent = os.environ.get(ENV_CHAOS_PARENT)
    return parent is not None and parent != str(os.getpid())


def _claim(path: Path) -> bool:
    try:
        os.rename(path, str(path) + ".fired")
        return True
    except OSError:
        return False


def _fire(fault: ServiceFault, path: Optional[str]) -> None:
    """Execute a claimed fault's effect (in the claiming process)."""
    get_registry().counter(
        "repro_chaos_faults_fired_total",
        "service-level chaos faults fired").inc(kind=fault.kind)
    if fault.kind == WORKER_KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault.kind in (WORKER_STALL, SLOW_BATCH):
        time.sleep(fault.delay_s)
    elif fault.kind == CACHE_CORRUPT:
        with open(path, "wb") as fh:
            fh.write(_TORN_ENTRY)
    elif fault.kind == CACHE_PERM:
        os.chmod(path, 0)
    # CONN_DROP: the hook's caller drops the connection itself.
    # WORKER_DOWN: the cluster supervisor (the caller) sleeps the
    # fault's delay and kills the victim worker itself.


def chaos_point(hook: str, *, path: Optional[str] = None,
                ) -> Optional[ServiceFault]:
    """Fire at most one armed fault eligible at ``hook``.

    Returns the fault that fired (``None`` almost always).  Called
    from guarded sites that first check ``$REPRO_CHAOS_DIR`` with a
    literal, so disabled runs never pay an import or a listdir.
    """
    root = os.environ.get(ENV_CHAOS_DIR, "")
    kinds = HOOK_POINTS.get(hook, ())
    if not root or not kinds:
        return None
    try:
        tokens = sorted(Path(root).glob("*.json"))
    except OSError:
        return None
    for token in tokens:
        try:
            fault = ServiceFault.from_json(json.loads(token.read_text()))
        except (OSError, json.JSONDecodeError, ChaosError):
            continue                   # claimed by a racer, or junk
        if fault.kind not in kinds:
            continue
        if fault.kind in _WORKER_KINDS and not _in_worker():
            continue
        if fault.kind in _CACHE_KINDS \
                and (path is None or not os.path.exists(path)):
            continue
        if not _claim(token):
            continue
        _fire(fault, path)
        return fault
    return None


# --------------------------------------------------------------------------
# The campaign: one seeded loadgen schedule replayed under each fault
# class, judged against the fault-free reference run.
# --------------------------------------------------------------------------

CHAOS_REPORT_SCHEMA = 1

#: loadgen outcomes -> availability classes.  ``rejected`` means the
#: server answered with a structured refusal (503 overload/draining or
#: 504 deadline) — predictable degradation, not damage.
_REFUSAL_STATUSES = (503, 504)


@dataclass(frozen=True)
class ChaosCampaignConfig:
    """One chaos campaign, fully determined by these fields."""

    seed: int = 0
    requests: int = 24
    rate_per_s: float = 30.0
    workers: int = 2
    window_ms: float = 2.0
    deadline_ms: int = 6000
    timeout_s: float = 30.0            # client hang bound per request
    fault_classes: Tuple[str, ...] = SERVICE_FAULT_KINDS
    faults_per_class: int = 2
    stall_s: float = 10.0
    slow_batch_s: float = 0.8
    max_pool_restarts: int = 3

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ChaosError(
                f"requests must be >= 1, got {self.requests}")
        if self.workers < 2:
            raise ChaosError(
                "chaos campaigns need workers >= 2 (worker faults "
                f"only fire in forked pool workers), got {self.workers}")
        if not self.fault_classes:
            raise ChaosError("fault_classes must not be empty")
        for kind in self.fault_classes:
            if kind not in SERVICE_FAULT_KINDS:
                raise ChaosError(
                    f"unknown service fault kind {kind!r} (choices: "
                    f"{', '.join(SERVICE_FAULT_KINDS)})")
        if self.deadline_ms <= 0:
            raise ChaosError(
                f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.stall_s * 1000.0 <= self.deadline_ms:
            raise ChaosError(
                f"stall_s ({self.stall_s}s) must exceed deadline_ms "
                f"({self.deadline_ms}ms) or worker_stall never "
                f"overruns a deadline")

    @classmethod
    def quick(cls, seed: int = 0) -> "ChaosCampaignConfig":
        """The CI smoke shape: small, fast, still every fault class."""
        return cls(seed=seed, requests=12, rate_per_s=40.0,
                   deadline_ms=2500, stall_s=5.0, slow_batch_s=0.5,
                   faults_per_class=1)


class ChaosCampaign:
    """Replays one seeded schedule under each fault class.

    Phase 0 (``none``) runs fault-free and doubles as the reference:
    its per-request body digests are the ground truth for the zero-SDC
    assertion, and its cache directory is reused by the cache-fault
    phases (a cache fault needs warm entries to corrupt).  Every other
    phase gets a cold cache so its faults actually execute work.
    """

    def __init__(self, config: Optional[ChaosCampaignConfig] = None):
        self.config = config if config is not None \
            else ChaosCampaignConfig()

    # -- one phase ------------------------------------------------------

    def _phase_raw(self, faults: Sequence[ServiceFault], cache_dir: str,
                   chaos_root) -> Dict[str, object]:
        from ..serve.loadgen import LoadgenConfig, run_loadgen
        from ..serve.server import ServeConfig, start_in_thread
        cfg = self.config
        serve_cfg = ServeConfig(
            port=0, workers=cfg.workers, cache_dir=cache_dir,
            window_ms=cfg.window_ms,
            default_deadline_ms=cfg.deadline_ms,
            max_pool_restarts=cfg.max_pool_restarts)
        with contextlib.ExitStack() as stack:
            controller = None
            if faults:
                controller = stack.enter_context(
                    service_chaos(faults, chaos_root))
            handle = start_in_thread(serve_cfg)
            try:
                report = run_loadgen(LoadgenConfig(
                    seed=cfg.seed, requests=cfg.requests,
                    rate_per_s=cfg.rate_per_s, host="127.0.0.1",
                    port=handle.port, timeout_s=cfg.timeout_s,
                    deadline_ms=cfg.deadline_ms))
            finally:
                clean = handle.stop(timeout_s=90.0)
            chaos = (controller.summary() if controller is not None
                     else {"armed_left": 0, "fired": []})
        return {"report": report, "clean_drain": clean, "chaos": chaos,
                "faults_armed": len(faults)}

    def _phase_cluster(self, faults: Sequence[ServiceFault],
                       cache_dir: str, chaos_root) -> Dict[str, object]:
        """The ``worker_down`` phase: a two-shard cluster instead of a
        single server, so there is a worker to kill and a survivor to
        absorb the re-routed traffic."""
        from ..cluster.supervisor import Cluster, ClusterConfig
        from ..serve.loadgen import LoadgenConfig, run_loadgen
        cfg = self.config
        cluster_cfg = ClusterConfig(
            shards=2, worker_mode="thread",
            engine_workers=cfg.workers, cache_dir=cache_dir,
            window_ms=cfg.window_ms,
            default_deadline_ms=cfg.deadline_ms,
            max_pool_restarts=cfg.max_pool_restarts)
        with contextlib.ExitStack() as stack:
            controller = None
            if faults:
                controller = stack.enter_context(
                    service_chaos(faults, chaos_root))
            cluster = Cluster(cluster_cfg)
            cluster.start()
            try:
                report = run_loadgen(LoadgenConfig(
                    seed=cfg.seed, requests=cfg.requests,
                    rate_per_s=cfg.rate_per_s, host="127.0.0.1",
                    port=cluster.port, timeout_s=cfg.timeout_s,
                    deadline_ms=cfg.deadline_ms))
            finally:
                clean = cluster.stop()
            chaos = (controller.summary() if controller is not None
                     else {"armed_left": 0, "fired": []})
        return {"report": report, "clean_drain": clean, "chaos": chaos,
                "faults_armed": len(faults)}

    @staticmethod
    def _classify(name: str, phase: Dict[str, object],
                  ref_rows: Dict[str, Dict[str, object]],
                  ) -> Dict[str, object]:
        counts = {"good": 0, "degraded": 0, "rejected": 0, "failed": 0}
        sdc: List[str] = []
        hangs = 0
        for row in phase["report"]["per_request"]:
            outcome = row.get("outcome")
            if outcome == "ok":
                counts["good"] += 1
                ref = ref_rows.get(str(row["id"]))
                if ref is not None and ref.get("outcome") == "ok" \
                        and row.get("body_sha") != ref.get("body_sha"):
                    sdc.append(str(row["id"]))
            elif outcome == "degraded":
                counts["degraded"] += 1
            elif outcome == "error" \
                    and row.get("status") in _REFUSAL_STATUSES:
                counts["rejected"] += 1
            else:                       # 4xx/5xx, torn body, no answer
                counts["failed"] += 1
                if "timed out" in str(row.get("error", "")):
                    hangs += 1          # exceeded the client hang bound
        total = sum(counts.values())
        available = counts["good"] + counts["degraded"]
        return {
            "fault_class": name,
            "counts": counts,
            "availability": available / total if total else 0.0,
            "sdc": sdc,
            "hangs": hangs,
            "clean_drain": bool(phase["clean_drain"]),
            "faults_armed": phase["faults_armed"],
            "faults_fired": len(phase["chaos"]["fired"]),
        }

    # -- the campaign ---------------------------------------------------

    def run(self) -> Dict[str, object]:
        import tempfile
        cfg = self.config
        phases: List[Dict[str, object]] = []
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as td:
            root = Path(td)
            ref_cache = root / "cache-ref"
            reference = self._phase_raw([], str(ref_cache), None)
            ref_rows = {str(r["id"]): r
                        for r in reference["report"]["per_request"]}
            phases.append(self._classify("none", reference, ref_rows))
            for kind in cfg.fault_classes:
                faults = generate_service_schedule(
                    cfg.seed, (kind,), per_class=cfg.faults_per_class,
                    stall_s=cfg.stall_s, slow_s=cfg.slow_batch_s)
                # cache faults need warm entries; everything else
                # needs a cold cache so its work actually executes
                cache_dir = (str(ref_cache) if kind in _CACHE_KINDS
                             else str(root / f"cache-{kind}"))
                if kind == WORKER_DOWN:
                    phase = self._phase_cluster(
                        faults, cache_dir, root / f"chaos-{kind}")
                else:
                    phase = self._phase_raw(faults, cache_dir,
                                            root / f"chaos-{kind}")
                phases.append(self._classify(kind, phase, ref_rows))
        report: Dict[str, object] = {
            "schema": CHAOS_REPORT_SCHEMA,
            "seed": cfg.seed,
            "requests": cfg.requests,
            "offered_rate_per_s": cfg.rate_per_s,
            "workers": cfg.workers,
            "deadline_ms": cfg.deadline_ms,
            "fault_classes": list(cfg.fault_classes),
            "faults_per_class": cfg.faults_per_class,
            "phases": phases,
            "sdc_total": sum(len(p["sdc"]) for p in phases),
            "hangs_total": sum(p["hangs"] for p in phases),
        }
        report["ok"] = (report["sdc_total"] == 0
                        and report["hangs_total"] == 0)
        return report


def run_chaos_campaign(config: Optional[ChaosCampaignConfig] = None,
                       ) -> Dict[str, object]:
    """Convenience wrapper behind ``repro chaos``."""
    return ChaosCampaign(config).run()


def write_chaos_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
