"""Resilience: deterministic fault injection + campaign tooling.

Closes the loop on the paper's two defensive subsystems.  SERMiner
(Section III-E) predicts which latch upsets are derated; the power-
management stack (Section IV-B) is supposed to survive telemetry and
supply upsets.  This package *attacks* both — with seeded, replayable
faults — and classifies what actually happened:

* :mod:`repro.resilience.faults` — the frozen fault taxonomy and the
  seeded schedule generator;
* :mod:`repro.resilience.injector` — the runtime hooks threaded through
  the timing model and the interval sampler (strict no-op when no
  campaign is active);
* :mod:`repro.resilience.campaign` — the resumable campaign runner
  (checkpoint after every run, cycle-budget watchdog, outcome
  classification);
* :mod:`repro.resilience.report` — the AVF-style report cross-checking
  injection outcomes against SERMiner's derating predictions;
* :mod:`repro.resilience.chaos` — the *service-level* fault taxonomy
  (worker kill/stall, cache corruption/permission loss, slow batches,
  connection drops) and the seeded chaos campaign behind
  ``repro chaos``.
"""

from .faults import (CounterFault, DroopFault, Fault, FaultSchedule,
                     LatchFlipFault, TelemetryFault, TraceFault,
                     fault_from_json, generate_schedule)
from .injector import (FaultInjector, InjectionRecord, get_injector,
                       injection)
from .campaign import (CampaignConfig, CampaignResult, CampaignRunner,
                       OUTCOMES, RunRecord, resolve_workload)
from .report import CampaignReport, GroupCheck, build_report
from .chaos import (ChaosCampaign, ChaosCampaignConfig, ChaosController,
                    SERVICE_FAULT_KINDS, ServiceFault, chaos_point,
                    generate_service_schedule, run_chaos_campaign,
                    service_chaos, write_chaos_report)

__all__ = [
    "CounterFault", "DroopFault", "Fault", "FaultSchedule",
    "LatchFlipFault", "TelemetryFault", "TraceFault",
    "fault_from_json", "generate_schedule",
    "FaultInjector", "InjectionRecord", "get_injector", "injection",
    "CampaignConfig", "CampaignResult", "CampaignRunner", "OUTCOMES",
    "RunRecord", "resolve_workload",
    "CampaignReport", "GroupCheck", "build_report",
    "ChaosCampaign", "ChaosCampaignConfig", "ChaosController",
    "SERVICE_FAULT_KINDS", "ServiceFault", "chaos_point",
    "generate_service_schedule", "run_chaos_campaign", "service_chaos",
    "write_chaos_report",
]
