"""Fault injector: the runtime that delivers a schedule into a run.

One :class:`FaultInjector` owns one :class:`~repro.resilience.faults.
FaultSchedule` and is *installed* for the duration of a run via the
:func:`injection` context manager.  The hook points it serves:

* ``core.pipeline._simulate`` calls :func:`get_injector` once per run;
  when an injector is active it applies trace-record faults before the
  walk (:meth:`FaultInjector.begin_sim`) and polls once per decode
  group (:meth:`FaultInjector.poll`) to deliver latch flips and counter
  corruption and to enforce the campaign's cycle-budget watchdog;
* ``obs.sampler.CycleIntervalSampler._emit`` passes every interval
  sample through :meth:`FaultInjector.on_sample` (dropout / stuck-at /
  NaN / blank telemetry);
* the campaign's PM phase routes its current series through
  :meth:`FaultInjector.apply_droop`.

With no injector installed every hook is a single ``is None`` check on
the caller's side, and the simulated results are bit-identical to a
tree without this module — the same guarantee the telemetry layer makes
when sampling is off.

Latch-flip propagation implements SERMiner's vulnerability definition
at run time: a flip only propagates if its latch group was *switching*
in the window containing the injection point.  The group's switching
rate is estimated as (unit signal-event rate over the window) times the
group's activity factor — the same product the static analysis uses
over the whole run — and the fault's pre-drawn ``probe`` decides
whether the strike landed on a switching cycle.  A flip into a gated
group is masked, which is exactly the runtime derating the campaign
report cross-checks against the static prediction.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.activity import ActivityCounters
from ..errors import HangError, ResilienceError
from .faults import (CounterFault, DroopFault, Fault, FaultSchedule,
                     LatchFlipFault, TelemetryFault, TraceFault)

# Events that indicate a unit was clocked during a window (subset of
# the derive_busy_cycles mapping — enough to decide "moved vs idle").
_UNIT_SIGNALS: Dict[str, Sequence[str]] = {
    "ifu": ("icache_access", "fetch_instr"),
    "decode": ("decode_instr",),
    "dispatch": ("dispatch_iop",),
    "issueq": ("issueq_write", "issueq_wakeup"),
    "fx": ("issue_fx",),
    "fx_muldiv": ("issue_fx_muldiv",),
    "branch": ("issue_branch",),
    "cr": ("issue_cr",),
    "fp": ("issue_fp",),
    "vsu": ("issue_vsx",),
    "mma": ("issue_mma",),
    "regfile": ("rf_read", "rf_write"),
    "lsu": ("load_issue", "store_issue"),
    "l1d": ("l1d_access",),
    "erat_mmu": ("erat_lookup",),
    "prefetch": ("prefetch_issued", "l1d_miss"),
    "l2": ("l2_access",),
    "l3": ("l3_access",),
    "completion": ("complete_instr",),
}

# Control corruption in these units wedges instruction delivery and is
# modeled as a pipeline stall; everywhere else a propagated flip
# corrupts the unit's activity stream instead.
_STALL_UNITS = frozenset(
    {"ifu", "decode", "dispatch", "issueq", "completion"})


@dataclass
class InjectionRecord:
    """What actually happened when one fault was delivered."""

    fault: Dict[str, object]      # Fault.to_json()
    applied: bool = True
    propagated: bool = False
    effect: str = "none"
    detail: str = ""

    def to_json(self) -> Dict[str, object]:
        return {"fault": dict(self.fault), "applied": self.applied,
                "propagated": self.propagated, "effect": self.effect,
                "detail": self.detail}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "InjectionRecord":
        return cls(fault=dict(data["fault"]),
                   applied=bool(data["applied"]),
                   propagated=bool(data["propagated"]),
                   effect=str(data["effect"]),
                   detail=str(data.get("detail", "")))


class FaultInjector:
    """Delivers one fault schedule into one simulated run."""

    def __init__(self, schedule: FaultSchedule, *,
                 cycle_budget: Optional[int] = None):
        if cycle_budget is not None and cycle_budget <= 0:
            raise ResilienceError("cycle budget must be positive")
        self.schedule = schedule
        self.cycle_budget = cycle_budget
        self.records: List[InjectionRecord] = []
        self._sim_faults = schedule.sim_faults
        self._trace_faults = sorted(
            (f for f in schedule.faults if isinstance(f, TraceFault)),
            key=lambda f: f.at)
        self._droop_faults = [f for f in schedule.faults
                              if isinstance(f, DroopFault)]
        self._telemetry: Dict[int, TelemetryFault] = {}
        for f in schedule.faults:
            if isinstance(f, TelemetryFault):
                for k in range(f.duration):
                    self._telemetry.setdefault(f.at + k, f)
        self._sim_pos = 0
        self._interval_index = 0
        self._last_proxy: Optional[float] = None
        # per-unit (signal level, cycle) marks for window-local
        # switching estimation
        self._marks: Dict[str, tuple] = {}

    # ---- pipeline hooks ----------------------------------------------

    def begin_sim(self, instructions: List) -> List:
        """Reset run cursors and apply trace-record faults.

        Returns the (possibly corrupted) instruction list; the input is
        never mutated — corrupted records are shallow copies, so the
        trace object stays reusable for clean runs.
        """
        import copy

        self._sim_pos = 0
        self._interval_index = 0
        self._last_proxy = None
        self._marks = {}
        if not self._trace_faults:
            return instructions
        out = list(instructions)
        for fault in self._trace_faults:
            if fault.at >= len(out):
                self.records.append(InjectionRecord(
                    fault=fault.to_json(), applied=False,
                    effect="out-of-range",
                    detail=f"index {fault.at} beyond trace end"))
                continue
            instr = copy.copy(out[fault.at])
            if fault.mode == "address_bit":
                if instr.address is None:
                    self.records.append(InjectionRecord(
                        fault=fault.to_json(), propagated=False,
                        effect="masked",
                        detail="target is not a memory instruction"))
                    continue
                instr.address = instr.address ^ (1 << fault.value)
                detail = f"address bit {fault.value} flipped"
            else:
                if not instr.srcs:
                    self.records.append(InjectionRecord(
                        fault=fault.to_json(), propagated=False,
                        effect="masked",
                        detail="target reads no registers"))
                    continue
                instr.srcs = (fault.value,) + tuple(instr.srcs[1:])
                detail = f"src register swapped to {fault.value}"
            out[fault.at] = instr
            self.records.append(InjectionRecord(
                fault=fault.to_json(), propagated=True,
                effect="trace-corruption", detail=detail))
        return out

    def poll(self, instr_index: int, act: ActivityCounters,
             cycle: int) -> int:
        """Deliver due sim faults; returns extra stall cycles.

        Called once per decode group by the timing model.  Also the
        watchdog: when the run crosses the campaign cycle budget the
        poll raises :class:`~repro.errors.HangError`, which the
        campaign classifies as a hang instead of wedging the driver.
        """
        if self.cycle_budget is not None and cycle > self.cycle_budget:
            raise HangError(
                f"simulation passed {cycle} cycles against a budget of "
                f"{self.cycle_budget} — treating the run as hung")
        stall = 0
        while (self._sim_pos < len(self._sim_faults)
               and self._sim_faults[self._sim_pos].at < instr_index):
            fault = self._sim_faults[self._sim_pos]
            self._sim_pos += 1
            stall += self._deliver(fault, act, cycle)
        return stall

    def _deliver(self, fault: Fault, act: ActivityCounters,
                 cycle: int) -> int:
        if isinstance(fault, CounterFault):
            return self._deliver_counter(fault, act)
        return self._deliver_latch_flip(fault, act, cycle)

    def _deliver_counter(self, fault: CounterFault,
                         act: ActivityCounters) -> int:
        current = act.events.get(fault.event, 0)
        if fault.mode == "zero":
            value = 0
        elif fault.mode == "spike":
            value = current + fault.magnitude
        else:                          # negate: an impossible count
            value = -fault.magnitude
        record = InjectionRecord(
            fault=fault.to_json(), propagated=True,
            effect="counter-corruption",
            detail=f"{fault.event}: {current} -> {value}")
        self.records.append(record)
        # force() validates the write; a negative count raises, which
        # the campaign classifies as *detected* (the parity-check
        # analog), so record first.
        try:
            act.force(fault.event, value)
        except Exception:
            record.effect = "detected"
            record.detail += " (rejected by counter validity check)"
            raise
        return 0

    def _deliver_latch_flip(self, fault: LatchFlipFault,
                            act: ActivityCounters, cycle: int) -> int:
        if fault.group_kind == "config":
            # config latches are set at init and excluded from the
            # protection question (paper III-E); post-init flips into
            # them never reach architected state here
            self.records.append(InjectionRecord(
                fault=fault.to_json(), propagated=False,
                effect="masked", detail="config latch group"))
            return 0
        signals = _UNIT_SIGNALS.get(fault.unit, ())
        level = sum(act.events.get(s, 0) for s in signals)
        mark_level, mark_cycle = self._marks.get(fault.unit, (0, 0))
        self._marks[fault.unit] = (level, cycle)
        rate = (level - mark_level) / max(1, cycle - mark_cycle)
        switching = min(1.0, rate) * fault.activity_factor
        if fault.probe >= switching:
            self.records.append(InjectionRecord(
                fault=fault.to_json(), propagated=False,
                effect="masked",
                detail=f"{fault.unit} group not switching at strike "
                       f"(rate {switching:.2f}, probe "
                       f"{fault.probe:.2f})"))
            return 0
        if fault.unit in _STALL_UNITS:
            self.records.append(InjectionRecord(
                fault=fault.to_json(), propagated=True,
                effect="stall",
                detail=f"{fault.unit} control corrupted, "
                       f"+{fault.stall_cycles} cycles"))
            return fault.stall_cycles
        event = signals[0]
        before = act.events.get(event, 0)
        act.force(event, before + fault.perturb_events)
        self.records.append(InjectionRecord(
            fault=fault.to_json(), propagated=True,
            effect="activity-corruption",
            detail=f"{event}: {before} -> "
                   f"{before + fault.perturb_events}"))
        return 0

    # ---- sampler hook -------------------------------------------------

    def on_sample(self, sample):
        """Filter one interval sample; None means the interval was lost.

        Applies the telemetry fault covering this interval ordinal, if
        any.  The sampler's cursors advance regardless, so a dropped
        interval leaves a gap in the series the way a lost OCC reading
        would.
        """
        idx = self._interval_index
        self._interval_index += 1
        fault = self._telemetry.get(idx)
        if fault is None:
            self._last_proxy = sample.proxy_w
            return sample
        record = InjectionRecord(
            fault=fault.to_json(), propagated=True,
            effect=f"telemetry-{fault.mode}",
            detail=f"interval {idx}")
        self.records.append(record)
        if fault.mode == "drop":
            return None
        if fault.mode == "stuck":
            if self._last_proxy is not None:
                sample.proxy_w = self._last_proxy
            return sample
        if fault.mode == "nan":
            sample.proxy_w = float("nan")
            return sample
        sample.events = {}             # blank: "no data", not "idle"
        return sample

    # ---- PM-phase hook ------------------------------------------------

    def apply_droop(self, currents: Sequence[float]) -> List[float]:
        """Overlay scheduled current steps on a droop-loop series."""
        out = list(currents)
        for fault in self._droop_faults:
            landed = 0
            for k in range(fault.duration):
                i = fault.at + k
                if i < len(out):
                    out[i] += fault.step_a
                    landed += 1
            self.records.append(InjectionRecord(
                fault=fault.to_json(), applied=landed > 0,
                propagated=landed > 0,
                effect="current-step" if landed else "out-of-range",
                detail=f"+{fault.step_a:.1f} A over {landed} tick(s)"))
        return out


_ACTIVE: Optional[FaultInjector] = None


def get_injector() -> Optional[FaultInjector]:
    """The currently installed injector, or None (the common case).

    Hook sites call this once per run / per interval; a None return
    means every injection path is skipped and results are bit-identical
    to a build without the resilience layer.
    """
    return _ACTIVE


@contextlib.contextmanager
def injection(injector: FaultInjector):
    """Install ``injector`` for the duration of the with-block."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ResilienceError(
            "a fault-injection campaign is already active")
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None
