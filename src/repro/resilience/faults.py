"""Deterministic fault taxonomy for injection campaigns.

The paper's reliability and power-management stories are both
*defensive*: SERMiner (Section III-E) argues most latch upsets are
derated away by clock gating, and the DDS/throttle/OCC stack
(Section IV-B) argues the chip survives telemetry and supply upsets.
This module gives those claims something to defend against — a closed
vocabulary of faults, each a frozen, JSON-serializable dataclass, plus
a seeded generator that expands a ``(seed, model)`` pair into the exact
same :class:`FaultSchedule` on every invocation.

Fault kinds (one per attack surface of the reproduction):

* :class:`LatchFlipFault` — an SER bit flip in one latch group of the
  SERMiner :class:`~repro.reliability.latches.LatchPopulation`; whether
  it propagates is decided at injection time from the owning unit's
  clock activity, mirroring the derating definition;
* :class:`CounterFault` — corruption of one activity counter (zeroed,
  spiked, or negated — the last is caught by the counter validity
  check and becomes a *detected* outcome);
* :class:`TelemetryFault` — interval-sample loss: dropped, stuck-at,
  NaN, or blank (events mapping emptied — "no data", not "idle");
* :class:`DroopFault` — an injected current step into the supply model,
  the stimulus the digital droop sensor exists to catch;
* :class:`TraceFault` — corruption of one dynamic instruction record
  (address bit flip or source-register swap).

``at`` is the fault's schedule point; its domain depends on the kind
(dynamic instruction index for latch/counter/trace faults, telemetry
interval ordinal for telemetry faults, droop-loop tick for droop
faults).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar, Dict, List, Optional, Tuple

import numpy as np

from ..core.activity import EVENT_NAMES
from ..errors import ResilienceError
from ..reliability.latches import LatchPopulation

COUNTER_MODES = ("zero", "spike", "negate")
TELEMETRY_MODES = ("drop", "stuck", "nan", "blank")
TRACE_MODES = ("address_bit", "src_reg")


@dataclass(frozen=True)
class Fault:
    """Base record: one scheduled fault."""

    at: int

    kind: ClassVar[str] = "fault"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ResilienceError(
                f"fault schedule point must be >= 0, got {self.at}")

    def to_json(self) -> Dict[str, object]:
        data = asdict(self)
        data["kind"] = self.kind
        return data


@dataclass(frozen=True)
class LatchFlipFault(Fault):
    """SER upset in one latch group at one dynamic instruction.

    ``stall_cycles`` / ``perturb_events`` are the *effect magnitudes*
    if the flip propagates (front-end control latches wedge the
    pipeline; execution-side latches corrupt the activity stream).
    ``activity_factor`` is copied from the targeted
    :class:`~repro.reliability.latches.LatchGroup` and ``probe`` is a
    uniform draw deciding whether the strike lands on a switching
    cycle — all drawn at schedule time so the effect is reproducible.
    """

    unit: str = ""
    group_index: int = 0
    group_kind: str = "control"      # "config" | "control" | "data"
    stall_cycles: int = 64
    perturb_events: int = 8
    activity_factor: float = 1.0
    probe: float = 0.0

    kind: ClassVar[str] = "latch_flip"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.group_kind not in ("config", "control", "data"):
            raise ResilienceError(
                f"unknown latch group kind: {self.group_kind!r}")
        if not 0.0 <= self.activity_factor <= 1.0:
            raise ResilienceError(
                "latch activity factor must be in [0, 1]")
        if not 0.0 <= self.probe < 1.0:
            raise ResilienceError("latch probe must be in [0, 1)")


@dataclass(frozen=True)
class CounterFault(Fault):
    """Corruption of one activity counter."""

    event: str = "complete_instr"
    mode: str = "spike"
    magnitude: int = 1

    kind: ClassVar[str] = "counter"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in COUNTER_MODES:
            raise ResilienceError(f"unknown counter mode: {self.mode!r}")
        if self.event not in EVENT_NAMES:
            raise ResilienceError(
                f"counter fault targets unknown event {self.event!r}")


@dataclass(frozen=True)
class TelemetryFault(Fault):
    """Loss/corruption of sampler intervals [at, at + duration)."""

    mode: str = "drop"
    duration: int = 1

    kind: ClassVar[str] = "telemetry"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in TELEMETRY_MODES:
            raise ResilienceError(
                f"unknown telemetry mode: {self.mode!r}")
        if self.duration <= 0:
            raise ResilienceError("telemetry fault duration must be > 0")


@dataclass(frozen=True)
class DroopFault(Fault):
    """Current step injected into the supply model for ``duration``
    droop-loop ticks starting at ``at``."""

    step_a: float = 30.0
    duration: int = 3

    kind: ClassVar[str] = "droop"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.step_a <= 0 or self.duration <= 0:
            raise ResilienceError(
                "droop fault needs positive step and duration")


@dataclass(frozen=True)
class TraceFault(Fault):
    """Corruption of the dynamic instruction record at index ``at``."""

    mode: str = "address_bit"
    value: int = 6            # bit position, or replacement register

    kind: ClassVar[str] = "trace"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in TRACE_MODES:
            raise ResilienceError(f"unknown trace mode: {self.mode!r}")
        if self.value < 0:
            raise ResilienceError("trace fault value must be >= 0")


_FAULT_TYPES = {cls.kind: cls for cls in
                (LatchFlipFault, CounterFault, TelemetryFault,
                 DroopFault, TraceFault)}


def fault_from_json(data: Dict[str, object]) -> Fault:
    """Rebuild a fault from its :meth:`Fault.to_json` dict."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = _FAULT_TYPES.get(kind)
    if cls is None:
        raise ResilienceError(f"unknown fault kind in schedule: {kind!r}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ResilienceError(
            f"malformed {kind} fault record: {exc}") from exc


@dataclass(frozen=True)
class FaultSchedule:
    """The complete, ordered fault plan of one campaign run."""

    seed: int
    faults: Tuple[Fault, ...]

    def by_kind(self, kind: str) -> List[Fault]:
        return [f for f in self.faults if f.kind == kind]

    @property
    def sim_faults(self) -> List[Fault]:
        """Faults applied inside the timing model, in schedule order."""
        picked = [f for f in self.faults
                  if f.kind in ("latch_flip", "counter")]
        return sorted(picked, key=lambda f: f.at)

    def to_json(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "faults": [f.to_json() for f in self.faults]}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultSchedule":
        if "seed" not in data or "faults" not in data:
            raise ResilienceError("fault schedule JSON needs seed+faults")
        return cls(seed=int(data["seed"]),
                   faults=tuple(fault_from_json(f)
                                for f in data["faults"]))


# Default draw weights over fault kinds; latch flips dominate so the
# SERMiner cross-check accumulates statistics fastest.
DEFAULT_MIX: Dict[str, float] = {
    "latch_flip": 0.40,
    "counter": 0.20,
    "telemetry": 0.15,
    "droop": 0.10,
    "trace": 0.15,
}


def generate_schedule(seed: int, *,
                      population: LatchPopulation,
                      n_instructions: int,
                      n_intervals: int = 8,
                      n_faults: int = 3,
                      mix: Optional[Dict[str, float]] = None,
                      ) -> FaultSchedule:
    """Expand a seed into a reproducible fault schedule.

    All randomness flows through one ``np.random.default_rng(seed)``
    stream, so the same ``(seed, population, n_instructions,
    n_intervals, n_faults, mix)`` tuple yields an identical schedule on
    every call — the property the campaign checkpoint/resume contract
    is built on.
    """
    if n_instructions <= 0:
        raise ResilienceError("n_instructions must be positive")
    if n_faults <= 0:
        raise ResilienceError("n_faults must be positive")
    weights = dict(DEFAULT_MIX if mix is None else mix)
    kinds = sorted(weights)
    probs = np.array([weights[k] for k in kinds], dtype=float)
    if probs.sum() <= 0:
        raise ResilienceError("fault mix weights must sum to > 0")
    probs = probs / probs.sum()
    rng = np.random.default_rng(seed)
    groups = population.groups
    intervals = max(1, n_intervals)
    faults: List[Fault] = []
    for _ in range(n_faults):
        kind = kinds[int(rng.choice(len(kinds), p=probs))]
        if kind == "latch_flip":
            group = groups[int(rng.integers(len(groups)))]
            faults.append(LatchFlipFault(
                at=int(rng.integers(n_instructions)),
                unit=group.unit,
                group_index=group.index,
                group_kind=group.kind,
                stall_cycles=int(rng.integers(32, 2048)),
                perturb_events=int(rng.integers(1, 64)),
                activity_factor=min(1.0, group.activity_factor),
                probe=float(rng.random())))
        elif kind == "counter":
            faults.append(CounterFault(
                at=int(rng.integers(n_instructions)),
                event=EVENT_NAMES[int(rng.integers(len(EVENT_NAMES)))],
                mode=COUNTER_MODES[int(rng.integers(len(COUNTER_MODES)))],
                magnitude=int(rng.integers(1, 10000))))
        elif kind == "telemetry":
            faults.append(TelemetryFault(
                at=int(rng.integers(intervals)),
                mode=TELEMETRY_MODES[
                    int(rng.integers(len(TELEMETRY_MODES)))],
                duration=int(rng.integers(1, 4))))
        elif kind == "droop":
            faults.append(DroopFault(
                at=int(rng.integers(intervals)),
                step_a=float(10.0 + 50.0 * rng.random()),
                duration=int(rng.integers(1, 6))))
        else:
            mode = TRACE_MODES[int(rng.integers(len(TRACE_MODES)))]
            value = int(rng.integers(1, 20)) if mode == "address_bit" \
                else int(rng.integers(0, 32))
            faults.append(TraceFault(
                at=int(rng.integers(n_instructions)),
                mode=mode, value=value))
    return FaultSchedule(seed=seed, faults=tuple(faults))
