"""Fast replay tier: columnar activity extraction + vectorized replay.

The detailed pipeline (:mod:`repro.core.pipeline`) is the oracle — the
bit-honest stand-in for the paper's RTLSim/M1 substrate.  This package
is the repo's APEX: a calibrated fast path that separates the *stateful
event derivation* (caches, TLBs, branch predictors, fusion — all
independent of instruction timing) from the *serial occupancy
recurrence*, precomputes the former once per workload as numpy tensors,
and replays only the latter.  Results are validated differentially
against the oracle (``tests/test_fastsim_diff.py``) and through the
golden figure harness on both tiers; ``repro bench --tier fast``
measures and enforces the fidelity budget (``BENCH_fastsim.json``).

Public surface:

* :func:`simulate_fast` — drop-in for ``core.pipeline.simulate`` (no
  sampler / no fault injection; both force the detailed tier).
* :func:`simulate_tiered` / :data:`TIERS` / :func:`validate_tier` —
  the tier selector used by ``core.simulator`` and the figure code.
* :func:`extract_stream` — the per-workload activity tensor.
* :func:`batch_power` — array-at-a-time power evaluation over many
  activity streams through the existing ``power/`` coefficients.
"""

from .dispatch import TIERS, simulate_tiered, validate_tier
from .extract import ActivityStream, extract_stream
from .power_eval import batch_power
from .replay import simulate_fast

__all__ = [
    "ActivityStream", "TIERS", "batch_power", "extract_stream",
    "simulate_fast", "simulate_tiered", "validate_tier",
]
