"""Activity-stream extraction: the tensor half of the fast tier.

``core.pipeline._simulate`` interleaves two kinds of work in one
per-instruction loop: *stateful event derivation* (I-cache/D-cache and
TLB walks, branch prediction, fusion classification — none of which
depend on instruction timing) and the *serial occupancy recurrence*
(dispatch/issue/retire cycles through finite windows, queues and
ports).  This module performs only the first kind, driving the very
same component classes (:class:`~repro.core.caches.CacheHierarchy`,
:class:`~repro.core.tlb.MMU`, the branch predictors,
:class:`~repro.core.fusion.FusionEngine`) in the exact order the
detailed pipeline would, and stores the outcomes as numpy arrays over
instruction index — the activity tensor that
:mod:`repro.fastsim.replay` consumes.

Extraction is split into sub-passes with independent memo keys so a
config sweep amortizes work (the APEX lever):

* **static** — config-independent: instruction classes, register
  dependence edges (CSR), FLOPs, addresses, I-cache lines.
* **branch** — keyed by predictor kind/scale: per-branch mispredict
  outcomes.
* **fusion** — keyed by (fusion_enabled, decode_width): fused masks,
  post-fusion latencies, fusion-rate stats.
* **memory** — keyed by the cache/MMU geometry plus everything that
  changes *which* accesses happen (decode width, fusion, branch kind,
  EA tagging, store merging): per-access hit/miss outcomes, extra
  translation latencies, per-group fetch stalls, prefetcher totals.

Notably absent from every key: SMT mode, queue/window sizes, port
counts, completion width — a sweep over those replays the same tensor.

Memoization is per trace object (``id`` + ``weakref.finalize``
eviction) so windows and suites do not leak; results are exact — the
differential harness asserts bit-identical event counts against the
detailed tier.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.branch import make_branch_unit
from ..core.caches import CacheHierarchy
from ..core.config import CoreConfig
from ..core.fusion import FusionEngine
from ..core.isa import ACC_BASE, BASE_LATENCY, InstrClass
from ..core.tlb import MMU
from ..errors import SimulationError

#: Fixed class order used for the ``codes`` tensor and per-class counts.
CLASS_ORDER: Tuple[InstrClass, ...] = tuple(InstrClass)
_CODE = {cls: i for i, cls in enumerate(CLASS_ORDER)}
_BASE_LAT = np.array([BASE_LATENCY[cls] for cls in CLASS_ORDER],
                     dtype=np.int64)
_MMA_CODE = _CODE[InstrClass.MMA]


@dataclass
class StaticPass:
    """Config-independent per-instruction tensors."""

    n: int
    codes: np.ndarray          # int8, index into CLASS_ORDER
    base_lat: np.ndarray       # int64, BASE_LATENCY per instruction
    is_load: np.ndarray        # bool
    is_store: np.ndarray       # bool
    is_branch: np.ndarray      # bool
    is_memory: np.ndarray      # bool
    n_srcs: np.ndarray         # int64
    n_dests: np.ndarray        # int64
    flops: np.ndarray          # int64
    lines: np.ndarray          # int64, pc >> 5
    addr: np.ndarray           # int64, -1 when no address
    size: np.ndarray           # int64
    pcs: List[int]             # raw pcs for I-cache walks
    addrs: List[int]           # raw addresses for D-cache walks (0 if none)
    # register dependences in CSR form, aligned with flattened srcs:
    # edge d of instruction i lives in [dep_off[i], dep_off[i+1]);
    # dep_p[d] is the producer index (-1: no in-trace producer) and
    # dep_acc[d] marks MMA accumulator forwarding (ready at issue+1
    # instead of finish).
    dep_off: np.ndarray        # int64, length n+1
    dep_p: np.ndarray          # int64
    dep_acc: np.ndarray        # bool
    branch_idx: List[int]      # indices of branches, program order


@dataclass
class FusionPass:
    """Per-instruction fusion outcome (consumer side)."""

    fused: np.ndarray          # bool: fused with predecessor
    latency: np.ndarray        # int64, post-fusion base latency
    single_agen: np.ndarray    # bool
    single_storeq: np.ndarray  # bool
    fusion_rate: float


@dataclass
class MemoryPass:
    """Cache/TLB outcomes from one interleaved hierarchy walk."""

    newline: np.ndarray        # bool: I-cache access (new 32B sector)
    ic_miss: np.ndarray        # bool: I-cache miss
    gstall: np.ndarray         # int64 per decode group: fetch stall
    erat_lookup: np.ndarray    # int64 per instruction (0..2)
    erat_miss: np.ndarray      # int64 (== tlb_lookup)
    tlb_miss: np.ndarray       # int64 (== tablewalk)
    access_store: np.ndarray   # bool: store that performed a D access
    merged: np.ndarray         # bool: store-queue merge
    load_miss: np.ndarray      # bool
    store_miss: np.ndarray     # bool
    load_delay: np.ndarray     # int64: hierarchy latency + xlat extra
    dm_l3: np.ndarray          # bool: data miss serviced at L3 or memory
    dm_mem: np.ndarray         # bool: data miss serviced at memory
    l1d_miss_rate: float
    l2_miss_rate: float
    pf_issued: int
    pf_useful: int


@dataclass
class ActivityStream:
    """The full activity tensor for one (config, trace) pair."""

    static: StaticPass
    wrong: np.ndarray          # bool per instruction: mispredicted branch
    fusion: FusionPass
    memory: MemoryPass


# --------------------------------------------------------------------------
# Per-trace memo (id keyed, evicted when the trace is collected).
# --------------------------------------------------------------------------

_MEMO: Dict[int, Dict[tuple, object]] = {}


def _memo_slot(trace) -> Optional[Dict[tuple, object]]:
    key = id(trace)
    slot = _MEMO.get(key)
    if slot is None:
        slot = {}
        try:
            weakref.finalize(trace, _MEMO.pop, key, None)
        except TypeError:
            return None        # un-weakref-able trace: skip caching
        _MEMO[key] = slot
    return slot


def memo_size() -> int:
    """Number of live per-trace memo slots (introspection/tests)."""
    return len(_MEMO)


# --------------------------------------------------------------------------
# Sub-passes.
# --------------------------------------------------------------------------

def _static_pass(instructions) -> StaticPass:
    n = len(instructions)
    codes_l: List[int] = []
    n_srcs_l: List[int] = []
    n_dests_l: List[int] = []
    flops_l: List[int] = []
    addr_l: List[int] = []
    size_l: List[int] = []
    pcs: List[int] = []
    addrs: List[int] = []
    branch_idx: List[int] = []
    # flattened read/write edges for vectorized last-writer resolution;
    # (thread, register) packed into one int key (registers < 2**40)
    r_key: List[int] = []
    w_key: List[int] = []
    w_idx: List[int] = []
    w_acc: List[int] = []
    code_of = {id(cls): code for cls, code in _CODE.items()}
    mma = InstrClass.MMA
    br = InstrClass.BRANCH
    bri = InstrClass.BRANCH_IND
    for i, ins in enumerate(instructions):
        cls = ins.iclass
        codes_l.append(code_of[id(cls)])
        srcs = ins.srcs
        dests = ins.dests
        n_srcs_l.append(len(srcs))
        n_dests_l.append(len(dests))
        flops_l.append(ins.flops)
        pcs.append(ins.pc)
        a = ins.address
        if a is None:
            addrs.append(0)
            addr_l.append(-1)
        else:
            addrs.append(a)
            addr_l.append(a)
        size_l.append(ins.size)
        if cls is br or cls is bri:
            branch_idx.append(i)
        tbase = ins.thread << 40
        for s in srcs:
            r_key.append(tbase + s)
        if dests:
            is_acc_producer = cls is mma
            for d in dests:
                w_key.append(tbase + d)
                w_idx.append(i)
                w_acc.append(1 if is_acc_producer and d >= ACC_BASE
                             else 0)

    codes = np.array(codes_l, dtype=np.int8)
    n_srcs = np.array(n_srcs_l, dtype=np.int64)
    n_dests = np.array(n_dests_l, dtype=np.int64)
    flops = np.array(flops_l, dtype=np.int64)
    addr = np.array(addr_l, dtype=np.int64)
    size = np.array(size_l, dtype=np.int64)
    lines = np.array(pcs, dtype=np.int64) >> 5

    # dependence edges: for each read, the most recent earlier write of
    # the same (thread, register) — reg_ready semantics, vectorized
    rk = np.array(r_key, dtype=np.int64) \
        if r_key else np.empty(0, dtype=np.int64)
    wk = np.array(w_key, dtype=np.int64) \
        if w_key else np.empty(0, dtype=np.int64)
    wi = np.array(w_idx, dtype=np.int64)
    wa = np.array(w_acc, dtype=bool)
    ri = np.repeat(np.arange(n, dtype=np.int64), n_srcs)
    dep_p = np.full(len(rk), -1, dtype=np.int64)
    dep_acc = np.zeros(len(rk), dtype=bool)
    if len(rk) and len(wk):
        w_combo = wk * (n + 1) + wi
        order = np.argsort(w_combo, kind="stable")
        w_sorted = w_combo[order]
        pos = np.searchsorted(w_sorted, rk * (n + 1) + ri, side="left") - 1
        valid = pos >= 0
        cand = order[np.clip(pos, 0, None)]
        valid &= wk[cand] == rk
        dep_p[valid] = wi[cand[valid]]
        dep_acc[valid] = wa[cand[valid]]
    dep_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(n_srcs, out=dep_off[1:])

    icodes = codes.astype(np.int64)
    is_load = (codes == _CODE[InstrClass.LOAD]) \
        | (codes == _CODE[InstrClass.VSX_LOAD])
    is_store = (codes == _CODE[InstrClass.STORE]) \
        | (codes == _CODE[InstrClass.VSX_STORE])
    is_branch = (codes == _CODE[InstrClass.BRANCH]) \
        | (codes == _CODE[InstrClass.BRANCH_IND])
    return StaticPass(
        n=n, codes=codes, base_lat=_BASE_LAT[icodes],
        is_load=is_load, is_store=is_store, is_branch=is_branch,
        is_memory=is_load | is_store,
        n_srcs=n_srcs, n_dests=n_dests, flops=flops, lines=lines,
        addr=addr, size=size, pcs=pcs, addrs=addrs,
        dep_off=dep_off, dep_p=dep_p, dep_acc=dep_acc,
        branch_idx=branch_idx)


def _branch_pass(instructions, static: StaticPass, kind: str,
                 scale: float) -> np.ndarray:
    unit = make_branch_unit(kind, scale)
    wrong = np.zeros(static.n, dtype=bool)
    process = unit.process
    for i in static.branch_idx:
        if process(instructions[i]):
            wrong[i] = True
    return wrong


def _fusion_pass(instructions, static: StaticPass, enabled: bool,
                 decode_w: int) -> FusionPass:
    n = static.n
    fused = np.zeros(n, dtype=bool)
    latency = static.base_lat.copy()
    single_agen = np.zeros(n, dtype=bool)
    single_storeq = np.zeros(n, dtype=bool)
    engine = FusionEngine(enabled)
    apply = engine.apply
    for s in range(0, n, decode_w):
        effects = apply(instructions[s:s + decode_w])
        for pos, eff in enumerate(effects):
            if eff is not None:
                i = s + pos
                fused[i] = True
                lat = latency[i] + eff.latency_delta
                latency[i] = lat if lat > 1 else 1
                single_agen[i] = eff.single_agen
                single_storeq[i] = eff.single_storeq_entry
    return FusionPass(fused=fused, latency=latency,
                      single_agen=single_agen,
                      single_storeq=single_storeq,
                      fusion_rate=engine.stats.fusion_rate)


def _memory_pass(static: StaticPass, wrong: np.ndarray, fus: FusionPass,
                 config: CoreConfig) -> MemoryPass:
    n = static.n
    decode_w = config.front_end.decode_width
    ea_tagged = config.ea_tagged_l1

    starts = np.arange(0, n, decode_w, dtype=np.int64)
    n_groups = len(starts)

    # I-cache "new sector" mask: last_icache_line always equals the
    # previous instruction's line, except at the start of a group that
    # follows a mispredict (the redirect resets the tracker to -1).
    lines = static.lines
    newline = np.empty(n, dtype=bool)
    newline[0] = True
    if n > 1:
        np.not_equal(lines[1:], lines[:-1], out=newline[1:])
    if n_groups > 1:
        grp_mis = np.add.reduceat(wrong.astype(np.int64), starts) > 0
        newline[starts[1:][grp_mis[:-1]]] = True

    # store AGEN-skip chain (prev_l1d_access_skipped resets per group)
    sa = fus.fused & fus.single_agen
    prev_sa = np.zeros(n, dtype=bool)
    prev_sa[1:] = sa[:-1]
    prev_sa[starts] = False
    skip = sa & ~prev_sa & static.is_store

    # store-queue merging: previous store (any distance back) ends
    # exactly at this store's address
    merged = np.zeros(n, dtype=bool)
    st_idx = np.flatnonzero(static.is_store)
    if config.lsu.store_merge_enabled and len(st_idx) > 1:
        st_addr = static.addr[st_idx]
        st_size = static.size[st_idx]
        adjacent = st_addr[:-1] + st_size[:-1] == st_addr[1:]
        merged[st_idx[1:][adjacent]] = True

    access_store = static.is_store & ~merged & ~skip

    # ---- the one serial walk: caches + MMU in pipeline order ----------
    hier = CacheHierarchy(config.hierarchy)
    mcfg = config.mmu
    mmu = MMU(mcfg.erat_entries, mcfg.tlb_entries,
              mcfg.tlb_latency, mcfg.walk_latency)
    access_instruction = hier.access_instruction
    access_data = hier.access_data
    translate = mmu.translate
    pcs = static.pcs
    addrs = static.addrs
    load_l = static.is_load.tolist()

    gstall = np.zeros(n_groups, dtype=np.int64)
    load_delay = np.zeros(n, dtype=np.int64)
    load_miss = np.zeros(n, dtype=bool)
    store_miss = np.zeros(n, dtype=bool)
    ic_miss = np.zeros(n, dtype=bool)
    erat_miss_at: List[int] = []   # one entry per missing translate
    tlb_miss_at: List[int] = []
    dm_idx: List[int] = []         # data misses, with service level
    dm_lvl: List[str] = []

    fetch_i = np.flatnonzero(newline).tolist()
    data_i = np.flatnonzero(static.is_load | access_store).tolist()
    nf, nd = len(fetch_i), len(data_i)
    fp = dp = 0
    g = 0
    for s in range(0, n, decode_w):
        e = s + decode_w
        if e > n:
            e = n
        stall = 0
        while fp < nf and fetch_i[fp] < e:
            i = fetch_i[fp]
            fp += 1
            res = access_instruction(pcs[i])
            if not res.l1_hit:
                ic_miss[i] = True
                tr = translate(pcs[i])
                if not tr.erat_hit:
                    erat_miss_at.append(i)
                    if not tr.tlb_hit:
                        tlb_miss_at.append(i)
                stall += res.latency + tr.extra_latency
        if stall:
            gstall[g] = stall
        g += 1
        while dp < nd and data_i[dp] < e:
            i = data_i[dp]
            dp += 1
            res = access_data(addrs[i])
            hit = res.l1_hit
            if load_l[i]:
                extra = 0
                if not ea_tagged or not hit:
                    tr = translate(addrs[i])
                    if not tr.erat_hit:
                        erat_miss_at.append(i)
                        if not tr.tlb_hit:
                            tlb_miss_at.append(i)
                        extra = tr.extra_latency
                load_delay[i] = res.latency + extra
                if not hit:
                    load_miss[i] = True
                    dm_idx.append(i)
                    dm_lvl.append(res.level)
            else:
                if not ea_tagged or not hit:
                    tr = translate(addrs[i])
                    if not tr.erat_hit:
                        erat_miss_at.append(i)
                        if not tr.tlb_hit:
                            tlb_miss_at.append(i)
                if not hit:
                    store_miss[i] = True
                    dm_idx.append(i)
                    dm_lvl.append(res.level)

    # translation event tensors
    erat_miss = np.zeros(n, dtype=np.int64)
    if erat_miss_at:
        np.add.at(erat_miss, erat_miss_at, 1)
    tlb_miss = np.zeros(n, dtype=np.int64)
    if tlb_miss_at:
        np.add.at(tlb_miss, tlb_miss_at, 1)
    # erat_lookup policy: RA-tagged L1s translate on every access,
    # EA-tagged only on an L1 miss (I-side lookups follow the same
    # policy but the I-side RA lookup is counted per access, miss or
    # not, exactly as the detailed fetch loop does)
    erat_lookup = np.zeros(n, dtype=np.int64)
    if ea_tagged:
        erat_lookup += ic_miss
        erat_lookup += load_miss
        erat_lookup += store_miss
    else:
        erat_lookup += newline
        erat_lookup += static.is_load
        erat_lookup += access_store

    dm_l3 = np.zeros(n, dtype=bool)
    dm_mem = np.zeros(n, dtype=bool)
    for i, lvl in zip(dm_idx, dm_lvl):
        if lvl == "l3":
            dm_l3[i] = True
        elif lvl == "mem":
            dm_l3[i] = True
            dm_mem[i] = True

    return MemoryPass(
        newline=newline, ic_miss=ic_miss, gstall=gstall,
        erat_lookup=erat_lookup, erat_miss=erat_miss, tlb_miss=tlb_miss,
        access_store=access_store, merged=merged,
        load_miss=load_miss, store_miss=store_miss,
        load_delay=load_delay, dm_l3=dm_l3, dm_mem=dm_mem,
        l1d_miss_rate=hier.l1d.miss_rate,
        l2_miss_rate=hier.l2.miss_rate,
        pf_issued=hier.prefetcher.issued,
        pf_useful=hier.prefetcher.useful)


# --------------------------------------------------------------------------
# Entry point.
# --------------------------------------------------------------------------

def extract_stream(config: CoreConfig, trace, *,
                   max_instructions: Optional[int] = None,
                   ) -> ActivityStream:
    """The activity tensor for ``(config, trace)``, memoized per pass.

    Raises :class:`~repro.errors.SimulationError` on an empty trace,
    mirroring the detailed tier.
    """
    instructions = trace.instructions
    if max_instructions is not None:
        instructions = instructions[:max_instructions]
    if not instructions:
        raise SimulationError("cannot simulate an empty trace")
    n = len(instructions)
    slot = _memo_slot(trace)

    def memo(key, fn):
        if slot is None:
            return fn()
        value = slot.get(key)
        if value is None:
            value = fn()
            slot[key] = value
        return value

    fe = config.front_end
    static = memo(("static", n), lambda: _static_pass(instructions))
    wrong = memo(
        ("branch", n, fe.branch_kind, fe.branch_scale),
        lambda: _branch_pass(instructions, static,
                             fe.branch_kind, fe.branch_scale))
    fus = memo(
        ("fusion", n, fe.fusion_enabled, fe.decode_width),
        lambda: _fusion_pass(instructions, static,
                             fe.fusion_enabled, fe.decode_width))
    mem = memo(
        ("memory", n, fe.decode_width, fe.fusion_enabled,
         fe.branch_kind, fe.branch_scale, config.ea_tagged_l1,
         config.lsu.store_merge_enabled, repr(config.hierarchy),
         repr(config.mmu)),
        lambda: _memory_pass(static, wrong, fus, config))
    return ActivityStream(static=static, wrong=wrong, fusion=fus,
                          memory=mem)
