"""Table-driven replay: the timing half of the fast tier.

Consumes the activity tensor from :mod:`repro.fastsim.extract` and runs
only the serial occupancy recurrence — dispatch/issue/retire through
the window, issue queue, load/store/load-miss queues and execution
ports — with every stateful derivation (cache hits, translations,
mispredicts, fusion) already resolved to table lookups.  The port
arbiters are the *same* ``_Ports`` state machines the detailed pipeline
uses (via :func:`repro.core.pipeline.build_ports`), and the queue
models replicate ``_Ring``/``_Pool`` semantics with plain lookback
lists and heaps, so replayed cycle counts are bit-identical to the
oracle; ``ActivityCounters`` are then tallied array-at-a-time from the
tensor (full-run totals minus a warmup prefix at the same decode-group
boundary the detailed tier snapshots).

Unsupported in this tier (both force ``tier="detailed"`` upstream and
raise here): interval samplers and active fault-injection campaigns,
which observe or perturb mid-run state the replay never materializes.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from ..core.activity import ActivityCounters, EVENT_NAMES
from ..core.config import CoreConfig
from ..core.isa import InstrClass
from ..core.pipeline import (_FRONT_DEPTH, _WRONG_PATH_WINDOW, SimResult,
                             build_ports, derive_busy_cycles)
from ..errors import SimulationError
from ..obs.metrics import get_registry as _obs_registry
from ..obs.tracing import span as _obs_span
from .extract import CLASS_ORDER, ActivityStream, extract_stream

_IDX = {cls: i for i, cls in enumerate(CLASS_ORDER)}


def simulate_fast(config: CoreConfig, trace, *,
                  max_instructions: Optional[int] = None,
                  warmup_fraction: float = 0.0) -> SimResult:
    """Fast-tier counterpart of :func:`repro.core.pipeline.simulate`.

    Returns a :class:`~repro.core.pipeline.SimResult` built to be
    bit-identical to the detailed tier for the same inputs (enforced by
    ``tests/test_fastsim_diff.py``).  No ``sampler`` parameter: interval
    sampling requires the detailed tier.
    """
    with _obs_span("fastsim.simulate", "fastsim", config=config.name,
                   trace=getattr(trace, "name", "?")) as sp:
        result = _replay(config, trace, max_instructions=max_instructions,
                         warmup_fraction=warmup_fraction)
        sp.set(cycles=result.cycles, instructions=result.instructions,
               ipc=round(result.ipc, 4))
        _obs_registry().counter(
            "repro_fast_simulations_total",
            "fastsim.simulate_fast invocations").inc(config=config.name)
        return result


def _replay(config: CoreConfig, trace, *,
            max_instructions: Optional[int],
            warmup_fraction: float) -> SimResult:
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must be in [0, 1)")
    from ..resilience.injector import get_injector
    if get_injector() is not None:
        raise SimulationError(
            "the fast tier cannot run under an active fault-injection "
            "campaign; use tier='detailed'")
    stream = extract_stream(config, trace,
                            max_instructions=max_instructions)
    st, fus, mem, wrong = (stream.static, stream.fusion, stream.memory,
                           stream.wrong)
    n = st.n

    fe = config.front_end
    issue_cfg = config.issue
    lsu_cfg = config.lsu
    smt = config.smt
    decode_w = fe.decode_width
    window_n = issue_cfg.window_entries
    issueq_n = issue_cfg.issueq_entries
    if smt > 1:
        loadq_n = lsu_cfg.load_queue_smt
        storeq_n = lsu_cfg.store_queue_smt
    else:
        loadq_n = lsu_cfg.load_queue_st
        storeq_n = lsu_cfg.store_queue_st
    lmq_n = lsu_cfg.load_miss_queue
    completion_w = issue_cfg.completion_width
    redirect = fe.redirect_penalty
    wp_factor = fe.wrong_path_fill * fe.fetch_width
    wrong_window = _WRONG_PATH_WINDOW
    front_depth = _FRONT_DEPTH

    ports = build_ports(issue_cfg)
    port_by_code = [ports.get(cls) for cls in CLASS_ORDER]
    present = np.array([p is not None for p in port_by_code], dtype=bool)
    missing = ~present[st.codes.astype(np.int64)]
    if missing.any():
        cls = CLASS_ORDER[int(st.codes[int(np.argmax(missing))])]
        raise SimulationError(
            f"no execution resource for {cls} on {config.name}")

    # Port arbitration is inlined for single-cycle initiation intervals
    # (the common case); each distinct _Ports group gets one mutable
    # state cell [occ, low_water, count, interval, obj, occ.get] so
    # classes sharing physical ports (VSX_LOAD->LOAD, VSX_STORE->STORE)
    # share occupancy exactly as in the detailed tier.
    port_state: dict = {}
    state_by_code = []
    for p in port_by_code:
        if p is None:
            state_by_code.append(None)
            continue
        cell = port_state.get(id(p))
        if cell is None:
            occ: dict = {}
            cell = [occ, 0, p.count, p.interval, p, occ.get]
            port_state[id(p)] = cell
        state_by_code.append(cell)

    # tensor -> one row tuple per instruction: single unpack in the loop
    kinds = (st.is_load.astype(np.int8)
             + 2 * st.is_store.astype(np.int8)).tolist()
    rows = list(zip(
        [state_by_code[c] for c in st.codes.tolist()],
        fus.fused.tolist(),
        kinds,
        (st.is_store & ~(fus.fused & fus.single_storeq)).tolist(),
        wrong.tolist(),
        fus.latency.tolist(),
        mem.load_miss.tolist(),
        mem.load_delay.tolist(),
    ))
    gstall_l = mem.gstall.tolist()
    dep_off = st.dep_off.tolist()
    dep_p = st.dep_p.tolist()
    dep_acc = st.dep_acc.tolist()

    issue_ts = [0] * n
    finish_ts = [0] * n
    retires: list = []
    retires_append = retires.append
    heap_push = heapq.heappush
    heap_replace = heapq.heapreplace
    iq: list = []
    iq_len = 0
    lmq: list = []
    lmq_len = 0
    lq_rel: list = []
    lq_append = lq_rel.append
    nl = 0
    sq_rel: list = []
    sq_append = sq_rel.append
    ns = 0

    front_cycle = 0
    last_retire = 0
    retire_in_cycle = 0
    wp_flush = 0
    wp_decode = 0
    warmup_count = int(n * warmup_fraction)
    snap = None
    g = 0
    for s in range(0, n, decode_w):
        if snap is None and s >= warmup_count and warmup_count:
            snap = (front_cycle, last_retire, wp_flush, wp_decode, s)
        e = s + decode_w
        if e > n:
            e = n
        front_cycle += 1 + gstall_l[g]
        g += 1
        dispatch_base = front_cycle + front_depth
        prev_issue = 0
        for i in range(s, e):
            pstate, fused, kind, sqf, wr, lat, lmiss, ldel = rows[i]
            dispatch = dispatch_base
            if i >= window_n:
                v = retires[i - window_n]
                if v > dispatch:
                    dispatch = v
            if not fused and iq_len == issueq_n:
                v = iq[0]
                if v > dispatch:
                    dispatch = v
            if kind == 1:
                if nl >= loadq_n:
                    v = lq_rel[nl - loadq_n]
                    if v > dispatch:
                        dispatch = v
            elif kind == 2 and sqf:
                if ns >= storeq_n:
                    v = sq_rel[ns - storeq_n]
                    if v > dispatch:
                        dispatch = v
            if dispatch > dispatch_base:
                # structural stall backs up the front end
                front_cycle += dispatch - dispatch_base
                dispatch_base = dispatch
            ready = dispatch + 1
            d0 = dep_off[i]
            d1 = dep_off[i + 1]
            while d0 < d1:
                p = dep_p[d0]
                if p >= 0:
                    v = issue_ts[p] + 1 if dep_acc[d0] else finish_ts[p]
                    if v > ready:
                        ready = v
                d0 += 1
            if fused and prev_issue > ready:
                ready = prev_issue
            if pstate[3] == 1:
                cycle = ready if ready > pstate[1] else pstate[1]
                og = pstate[5]
                cnt = pstate[2]
                v = og(cycle, 0)
                while v >= cnt:
                    cycle += 1
                    v = og(cycle, 0)
                occ = pstate[0]
                occ[cycle] = v + 1
                if len(occ) > 65536:
                    cutoff = cycle - 4096
                    occ = {c: x for c, x in occ.items() if c >= cutoff}
                    pstate[0] = occ
                    pstate[5] = occ.get
                    if cutoff > pstate[1]:
                        pstate[1] = cutoff
                issue_at = cycle
            else:
                issue_at = pstate[4].issue(ready)
            prev_issue = issue_at
            if kind == 1:
                lq_append(issue_at + lat)
                nl += 1
                if lmiss:
                    le = lmq[0] if lmq_len == lmq_n else 0
                    lmq_at = issue_at if issue_at > le else le
                    fill = lmq_at + ldel
                    if lmq_len >= lmq_n:
                        heap_replace(lmq, fill)
                    else:
                        heap_push(lmq, fill)
                        lmq_len += 1
                    v = fill - issue_at
                    if v > lat:
                        lat = v
                elif ldel > lat:
                    lat = ldel
            elif kind == 2 and sqf:
                sq_append(issue_at + lat + 4)
                ns += 1
            finish = issue_at + lat
            issue_ts[i] = issue_at
            finish_ts[i] = finish
            if wr:
                ahead = finish - front_cycle
                stall = ahead + redirect
                if smt > 1:
                    stall = stall // smt
                    if stall < 1:
                        stall = 1
                if ahead < 0:
                    ahead = 0
                elif ahead > wrong_window:
                    ahead = wrong_window
                wp = int(wp_factor * ahead)
                wp_flush += wp
                wp_decode += wp >> 1
                if stall > 0:
                    front_cycle += stall
            retire = finish + 1
            if retire < last_retire:
                retire = last_retire
            if retire == last_retire:
                retire_in_cycle += 1
                if retire_in_cycle >= completion_w:
                    retire += 1
                    retire_in_cycle = 0
            else:
                retire_in_cycle = 1
            last_retire = retire
            retires_append(retire)
            if not fused:
                v = issue_at + 1
                if iq_len >= issueq_n:
                    heap_replace(iq, v)
                else:
                    heap_push(iq, v)
                    iq_len += 1

    cycles = max(last_retire, front_cycle) + 1
    if snap is not None:
        front0, retire0, wp_flush0, wp_decode0, idx0 = snap
        cycles = max(1, cycles - (max(retire0, front0) + 1))
    else:
        wp_flush0 = wp_decode0 = idx0 = 0
    measured = n - idx0
    flushed = wp_flush - wp_flush0
    mispredicts = int(np.count_nonzero(wrong[idx0:]))
    flops = int(st.flops[idx0:].sum())

    act = ActivityCounters()
    act.events = _tally(stream, idx0, wp_flush - wp_flush0,
                        wp_decode - wp_decode0)
    act.cycles = cycles
    act.instructions = measured
    derive_busy_cycles(act, config, cycles)

    return SimResult(
        config_name=config.name,
        cycles=cycles,
        instructions=measured,
        activity=act,
        flushed_instructions=flushed,
        mispredicts=mispredicts,
        flops=flops,
        l1d_miss_rate=mem.l1d_miss_rate,
        l2_miss_rate=mem.l2_miss_rate,
        fusion_rate=fus.fusion_rate,
        branch_mpki=1000.0 * mispredicts / measured,
        metadata={"trace": getattr(trace, "name", "?"), "smt": smt,
                  "frequency_ghz": config.power.frequency_ghz},
    )


def _tally(stream: ActivityStream, idx0: int, wp_flush: int,
           wp_decode: int) -> dict:
    """Post-warmup event counts, array-at-a-time from the tensor.

    Equivalent to the detailed tier's "snapshot at the warmup group
    boundary, subtract at the end": every per-instruction event here is
    attributed to its instruction index, and the warmup boundary is a
    decode-group start, so the prefix sum at ``idx0`` *is* the
    snapshot.  Wrong-path volumes (the only timing-dependent events)
    come pre-split from the replay loop.
    """
    st, fus, mem, wrong = (stream.static, stream.fusion, stream.memory,
                           stream.wrong)
    n = st.n
    live = n - idx0

    def cnt(mask) -> int:
        return int(np.count_nonzero(mask[idx0:]))

    def tot(arr) -> int:
        return int(arr[idx0:].sum())

    per_class = np.bincount(st.codes[idx0:].astype(np.int64),
                            minlength=len(CLASS_ORDER))
    fused_c = cnt(fus.fused)
    mispred = cnt(wrong)
    loads = int(per_class[_IDX[InstrClass.LOAD]]
                + per_class[_IDX[InstrClass.VSX_LOAD]])
    stores = int(per_class[_IDX[InstrClass.STORE]]
                 + per_class[_IDX[InstrClass.VSX_STORE]])
    l1d_miss = cnt(mem.load_miss) + cnt(mem.store_miss)
    erat_miss = tot(mem.erat_miss)
    tlb_miss = tot(mem.tlb_miss)
    dests = tot(st.n_dests)
    dm_l3 = cnt(mem.dm_l3)
    dm_mem = cnt(mem.dm_mem)

    ev = dict.fromkeys(EVENT_NAMES, 0)
    ev["fetch_instr"] = live + wp_flush
    ev["icache_access"] = cnt(mem.newline)
    ev["icache_miss"] = cnt(mem.ic_miss)
    ev["predecode_instr"] = live + wp_flush
    ev["bp_dir_lookup"] = cnt(st.is_branch)
    ev["bp_tgt_lookup"] = ev["bp_dir_lookup"]
    ev["bp_mispredict"] = mispred
    ev["ibuffer_write"] = live
    ev["decode_instr"] = live + wp_decode
    ev["dispatch_iop"] = live - fused_c
    ev["rename_write"] = dests
    ev["issueq_write"] = live - fused_c
    ev["issueq_wakeup"] = live
    ev["issue_fx"] = int(per_class[_IDX[InstrClass.FX]])
    ev["issue_fx_muldiv"] = int(per_class[_IDX[InstrClass.FX_MULDIV]])
    ev["issue_branch"] = int(per_class[_IDX[InstrClass.BRANCH]]
                             + per_class[_IDX[InstrClass.BRANCH_IND]])
    ev["issue_cr"] = int(per_class[_IDX[InstrClass.CR]])
    ev["issue_fp"] = int(per_class[_IDX[InstrClass.FP]])
    ev["issue_vsx"] = int(per_class[_IDX[InstrClass.VSX]])
    ev["issue_mma"] = int(per_class[_IDX[InstrClass.MMA]])
    ev["mma_acc_access"] = ev["issue_mma"]
    ev["mma_move"] = int(per_class[_IDX[InstrClass.MMA_MOVE]])
    ev["rf_read"] = tot(st.n_srcs)
    ev["rf_write"] = dests
    ev["agen"] = cnt(st.is_memory & ~(fus.fused & fus.single_agen))
    ev["l1d_access"] = loads + cnt(mem.access_store)
    ev["l1d_miss"] = l1d_miss
    ev["load_issue"] = loads
    ev["store_issue"] = stores
    ev["loadq_write"] = loads
    ev["storeq_write"] = cnt(st.is_store
                             & ~(fus.fused & fus.single_storeq))
    ev["storeq_merge"] = cnt(mem.merged)
    ev["lmq_alloc"] = cnt(mem.load_miss)
    ev["erat_lookup"] = tot(mem.erat_lookup)
    ev["erat_miss"] = erat_miss
    ev["tlb_lookup"] = erat_miss
    ev["tlb_miss"] = tlb_miss
    ev["tablewalk"] = tlb_miss
    ev["prefetch_issued"] = mem.pf_issued      # assigned, never warmup-cut
    ev["prefetch_useful"] = mem.pf_useful
    ev["l2_access"] = l1d_miss
    ev["l2_miss"] = dm_l3
    ev["l3_access"] = dm_l3
    ev["l3_miss"] = dm_mem
    ev["mem_access"] = dm_mem
    ev["complete_instr"] = live
    ev["flush_instr"] = wp_flush
    ev["flush_event"] = mispred
    return ev
