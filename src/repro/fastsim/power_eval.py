"""Array-at-a-time power evaluation over many activity records.

Evaluates the existing Einspower coefficients (``power/components.py``,
``config.power``) for a whole batch of runs at once: event counts and
unit utilizations become (runs x events) / (runs x units) matrices and
every component's clock/switch/ghost terms are computed as vectors over
the batch.  The arithmetic replicates
:meth:`repro.power.einspower.EinspowerModel._report` term by term and
in the same accumulation order, so per-run totals are bit-identical to
the scalar model — ``tests/test_fastsim_diff.py`` enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.activity import ActivityCounters, EVENT_NAMES, UNIT_NAMES
from ..core.config import CoreConfig
from ..errors import ModelError
from ..power.components import COMPONENTS

_EV_IDX = {ev: i for i, ev in enumerate(EVENT_NAMES)}
_UNIT_IDX = {u: i for i, u in enumerate(UNIT_NAMES)}


@dataclass
class BatchPower:
    """Per-run power totals for a batch of activity records."""

    config_name: str
    total_w: np.ndarray
    dynamic_w: np.ndarray
    clock_w: np.ndarray
    idle_clock_w: np.ndarray
    active_w: np.ndarray
    leakage_w: float
    mma_leakage_w: float
    frequency_ghz: float

    def __len__(self) -> int:
        return len(self.total_w)


def batch_power(config: CoreConfig,
                activities: Sequence[ActivityCounters], *,
                mma_powered: bool = True) -> BatchPower:
    """Evaluate Einspower for every activity record in one pass."""
    if not activities:
        raise ModelError("batch_power needs at least one activity record")
    for act in activities:
        if act.cycles <= 0:
            raise ModelError("activity has no cycles; run a simulation")

    pcfg = config.power
    floor = pcfg.gating_floor
    runs = len(activities)
    counts = np.empty((runs, len(EVENT_NAMES)), dtype=np.float64)
    utils = np.empty((runs, len(UNIT_NAMES)), dtype=np.float64)
    cycles = np.empty(runs, dtype=np.float64)
    for r, act in enumerate(activities):
        ev = act.events
        counts[r] = [ev[name] for name in EVENT_NAMES]
        utils[r] = [act.utilization(u) for u in UNIT_NAMES]
        cycles[r] = act.cycles
    runtime_ns = cycles / pcfg.frequency_ghz

    dynamic = np.zeros(runs)
    clock_total = np.zeros(runs)
    idle_clock = np.zeros(runs)
    for comp in COMPONENTS:
        unit_w = pcfg.unit_clock_w.get(comp.unit, 0.0)
        share_w = unit_w * comp.clock_share
        util = utils[:, _UNIT_IDX[comp.unit]]
        if comp.unit == "mma" and not mma_powered:
            clock_w = np.zeros(runs)
        else:
            clock_w = share_w * (floor + (1.0 - floor) * util)
            idle_clock = idle_clock + share_w * floor
        event_pj = np.zeros(runs)
        for ev_name in comp.events:
            event_pj = event_pj + (counts[:, _EV_IDX[ev_name]]
                                   * pcfg.energy.energy_pj(ev_name))
        switch_w = event_pj / runtime_ns / 1000.0
        if comp.category in ("array", "rf"):
            ghost_w = pcfg.ghost_factor * switch_w
        else:
            ghost_w = np.zeros(runs)
        dynamic = dynamic + ((clock_w + switch_w) + ghost_w)
        clock_total = clock_total + clock_w

    mma_leak = pcfg.mma_leakage_w if (
        config.issue.mma_present and mma_powered) else 0.0
    total = dynamic + pcfg.leakage_w + mma_leak
    active = np.maximum(
        0.0, total - pcfg.leakage_w - mma_leak - idle_clock)
    return BatchPower(
        config_name=config.name,
        total_w=total,
        dynamic_w=dynamic,
        clock_w=clock_total,
        idle_clock_w=idle_clock,
        active_w=active,
        leakage_w=pcfg.leakage_w,
        mma_leakage_w=mma_leak,
        frequency_ghz=pcfg.frequency_ghz)
