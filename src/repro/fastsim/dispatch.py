"""Tier selection: route a simulation to the detailed oracle or replay.

``tier="detailed"`` is the bit-honest reference pipeline
(:func:`repro.core.pipeline.simulate`); ``tier="fast"`` is the columnar
replay (:func:`repro.fastsim.replay.simulate_fast`).  Everything above
this module — ``core.simulator``, ``exec.figs``, the CLI — selects a
tier by name and never imports the replay machinery directly.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import CoreConfig
from ..core.pipeline import SimResult, simulate
from ..errors import SimulationError

TIERS = ("detailed", "fast")


def validate_tier(tier: str) -> str:
    """Return ``tier`` if it names a known tier, else raise."""
    if tier not in TIERS:
        raise SimulationError(
            f"unknown simulation tier {tier!r}; expected one of {TIERS}")
    return tier


def simulate_tiered(config: CoreConfig, trace, *,
                    tier: str = "detailed",
                    sampler=None,
                    warmup_fraction: float = 0.0,
                    max_instructions: Optional[int] = None) -> SimResult:
    """Run one trace on the selected tier.

    The fast tier rejects samplers (interval telemetry needs the
    serial detailed loop); callers that hold a sampler must stay on
    ``tier="detailed"``.
    """
    validate_tier(tier)
    if tier == "detailed":
        return simulate(config, trace, sampler=sampler,
                        warmup_fraction=warmup_fraction,
                        max_instructions=max_instructions)
    if sampler is not None:
        raise SimulationError(
            "interval samplers require tier='detailed'")
    from .replay import simulate_fast
    return simulate_fast(config, trace,
                         warmup_fraction=warmup_fraction,
                         max_instructions=max_instructions)
