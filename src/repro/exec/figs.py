"""The figure-scenario registry: every paper figure/table as a function.

Each scenario is the experiment behind one ``benchmarks/bench_*``
module, refactored into a callable of ``(scale, engine)``:

* ``scale`` shrinks the instruction budgets proportionally (floored so
  the model stays in steady state) — ``scale=1.0`` reproduces the
  benchmark numbers exactly; the golden-regression harness runs every
  scenario at its ``quick_scale``;
* ``engine`` is a :class:`repro.exec.Engine` — scenarios whose inner
  loops are simulation fan-outs submit them as one plan, so workers
  and the result cache apply; None means the environment default.

Each :class:`ScenarioSpec` also carries ``scalars``, which flattens the
rich result into a ``{name: float}`` dict — the representation the
golden files, ``BENCH_*.json`` artifacts, and the scenario-level cache
all share.  ``rtol`` is the per-scenario comparison tolerance:
scenarios whose numbers pass through least-squares / NNLS solves get a
looser bound, because BLAS backends differ across platforms; pure
timing-model scenarios are exact and use the default.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ExecError
from ..obs.tracing import span as _obs_span
from .executor import Engine, run_sim_plan, sim_task

DEFAULT_RTOL = 1e-6


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered figure scenario.

    ``detailed_only`` marks scenarios whose semantics require the
    detailed simulator tier (e.g. interval samplers or fault
    injection); the golden harness and ``repro bench --tier fast``
    skip them instead of running them on the fast tier.
    """

    name: str
    title: str
    fn: Callable
    scalars: Callable
    quick_scale: float = 0.25
    rtol: float = DEFAULT_RTOL
    detailed_only: bool = False


SCENARIOS: Dict[str, ScenarioSpec] = {}


def _register(spec: ScenarioSpec) -> ScenarioSpec:
    if spec.name in SCENARIOS:
        raise ExecError(f"duplicate scenario {spec.name!r}")
    SCENARIOS[spec.name] = spec
    return spec


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    spec = SCENARIOS.get(name)
    if spec is None:
        choices = ", ".join(SCENARIOS)
        raise ExecError(
            f"unknown scenario {name!r} (choices: {choices})")
    return spec


def run_scenario(name: str, *, scale: Optional[float] = None,
                 engine: Optional[Engine] = None,
                 tier: str = "detailed"):
    """Run one scenario; returns ``(rich_result, scalars_dict)``."""
    from ..fastsim.dispatch import validate_tier
    validate_tier(tier)
    spec = get_scenario(name)
    if spec.detailed_only and tier != "detailed":
        raise ExecError(
            f"scenario {name!r} is detailed-only and cannot run on "
            f"tier {tier!r}")
    if scale is None:
        scale = 1.0
    if scale <= 0:
        raise ExecError("scale must be positive")
    if engine is None:
        engine = Engine()
    with _obs_span("figs.scenario", "exec", scenario=name,
                   scale=scale, tier=tier):
        rich = spec.fn(scale=scale, engine=engine, tier=tier)
        scalars = spec.scalars(rich)
    return rich, scalars


def _n(base: int, scale: float, floor: int) -> int:
    return max(floor, int(base * scale))


# ---------------------------------------------------------------------
# Fig. 2 — optimal pipeline depth (analytic; no simulations).
# ---------------------------------------------------------------------

_FIG02_BUDGETS = (0.5, 0.7, 0.85, 1.0)


def fig02_pipeline_depth(scale: float = 1.0, engine=None,
                         tier: str = "detailed"):
    from ..power import depth_study
    return depth_study(fo4_values=tuple(range(9, 46, 2)),
                       budgets=_FIG02_BUDGETS)


def _fig02_scalars(curves) -> Dict[str, float]:
    from ..power import optimal_fo4
    out: Dict[str, float] = {}
    for budget in _FIG02_BUDGETS:
        pts = curves[budget]
        out[f"optimal_fo4[{budget}]"] = float(optimal_fo4(pts))
        out[f"peak_bips[{budget}]"] = max(p.bips for p in pts)
    return out


_register(ScenarioSpec(
    name="fig02", title="Fig. 2: optimal pipeline depth",
    fn=fig02_pipeline_depth, scalars=_fig02_scalars, quick_scale=1.0))


# ---------------------------------------------------------------------
# Fig. 4 — per-unit design-change gains (the big simulation fan-out).
# ---------------------------------------------------------------------

def fig04_unit_gains(scale: float = 1.0, engine=None,
                     tier: str = "detailed"):
    from ..core import (FEATURE_NAMES, apply_features, power9_config,
                        power10_config)
    from ..workloads import merge_smt, specint_suite
    engine = engine if engine is not None else Engine()
    fscale = 8
    n = _n(24000, scale, 1200)
    traces_st = specint_suite(instructions=n, footprint_scale=fscale)
    traces_smt8 = [merge_smt([t] * 8, name=f"{t.name}-smt8")
                   for t in specint_suite(instructions=max(300, n // 4),
                                          footprint_scale=fscale)]
    st_configs = {"__base__": power9_config(cache_scale=fscale),
                  "__p10__": power10_config(cache_scale=fscale)}
    smt_configs = {"__base__": power9_config(smt=8, cache_scale=fscale)}
    for feature in FEATURE_NAMES:
        st_configs[feature] = apply_features(
            power9_config(cache_scale=fscale), [feature])
        smt_configs[feature] = apply_features(
            power9_config(smt=8, cache_scale=fscale), [feature])
    keys, tasks = [], []
    for label, cfg in st_configs.items():
        for t in traces_st:
            keys.append(("st", label, t.name))
            tasks.append(sim_task(cfg, t, warmup_fraction=0.4,
                                  tier=tier))
    for label, cfg in smt_configs.items():
        for t in traces_smt8:
            keys.append(("smt8", label, t.name))
            tasks.append(sim_task(cfg, t, warmup_fraction=0.4,
                                  tier=tier))
    results = dict(zip(keys, run_sim_plan(engine, tasks)))

    out = {}
    base_st = {t.name: results[("st", "__base__", t.name)].ipc
               for t in traces_st}
    base_smt = {t.name: results[("smt8", "__base__", t.name)].ipc
                for t in traces_smt8}
    for feature in FEATURE_NAMES:
        st_gains = [results[("st", feature, t.name)].ipc
                    / base_st[t.name] - 1 for t in traces_st]
        smt_gains = [results[("smt8", feature, t.name)].ipc
                     / base_smt[t.name] - 1 for t in traces_smt8]
        out[feature] = {
            "st_mean": statistics.mean(st_gains),
            "st_max": max(st_gains),
            "smt8_mean": statistics.mean(smt_gains),
            "smt8_max": max(smt_gains),
        }
    f9 = sum(results[("st", "__base__", t.name)].flushed_instructions
             for t in traces_st)
    f10 = sum(results[("st", "__p10__", t.name)].flushed_instructions
              for t in traces_st)
    out["flush_reduction"] = 1 - f10 / f9
    return out


def _fig04_scalars(gains) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for feature, g in gains.items():
        if feature == "flush_reduction":
            continue
        for field in ("st_mean", "st_max", "smt8_mean", "smt8_max"):
            out[f"{feature}.{field}"] = g[field]
    out["flush_reduction"] = gains["flush_reduction"]
    return out


_register(ScenarioSpec(
    name="fig04", title="Fig. 4: per-unit design-change gains",
    fn=fig04_unit_gains, scalars=_fig04_scalars, quick_scale=0.05))


# ---------------------------------------------------------------------
# Fig. 5 — DGEMM FLOPs/cycle and core power.
# ---------------------------------------------------------------------

def fig05_dgemm(scale: float = 1.0, engine=None,
                tier: str = "detailed"):
    from ..core import power9_config, power10_config
    from ..power import EinspowerModel
    from ..workloads import dgemm_mma_trace, dgemm_vsu_trace
    engine = engine if engine is not None else Engine()
    n = _n(2500, scale, 500)
    p9, p10 = power9_config(), power10_config()
    combos = [("p9_vsu", p9, dgemm_vsu_trace(n)),
              ("p10_vsu", p10, dgemm_vsu_trace(n)),
              ("p10_mma", p10, dgemm_mma_trace(n))]
    probes = run_sim_plan(
        engine, [sim_task(cfg, trace, warmup_fraction=0.2, tier=tier)
                 for _label, cfg, trace in combos])
    window_keys, window_tasks = [], []
    for (label, cfg, trace), probe in zip(combos, probes):
        instr_per_window = max(200, int(5000 / probe.cpi))
        for window in trace.windows(instr_per_window):
            window_keys.append((label, cfg))
            window_tasks.append(sim_task(cfg, window, tier=tier))
    window_results = run_sim_plan(engine, window_tasks)
    flops: Dict[str, List[float]] = {}
    power: Dict[str, List[float]] = {}
    for (label, cfg), result in zip(window_keys, window_results):
        flops.setdefault(label, []).append(result.flops_per_cycle)
        power.setdefault(label, []).append(
            EinspowerModel(cfg).report(result.activity).total_w)
    return {label: (statistics.mean(flops[label]),
                    statistics.mean(power[label]))
            for label, _cfg, _trace in combos}


def _fig05_scalars(res) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for label, (f, w) in res.items():
        out[f"{label}.flops_per_cycle"] = f
        out[f"{label}.power_w"] = w
    out["vsu_flops_ratio"] = res["p10_vsu"][0] / res["p9_vsu"][0]
    out["mma_flops_ratio"] = res["p10_mma"][0] / res["p9_vsu"][0]
    out["vsu_power_ratio"] = res["p10_vsu"][1] / res["p9_vsu"][1]
    out["mma_power_ratio"] = res["p10_mma"][1] / res["p9_vsu"][1]
    return out


_register(ScenarioSpec(
    name="fig05", title="Fig. 5: DGEMM FLOPs/cycle and core power",
    fn=fig05_dgemm, scalars=_fig05_scalars, quick_scale=0.3))


# ---------------------------------------------------------------------
# Fig. 6 — end-to-end AI inference (analytic model composition).
# ---------------------------------------------------------------------

def fig06_ai_models(scale: float = 1.0, engine=None,
                    tier: str = "detailed"):
    from ..workloads.ai import (bert_large_profile, figure6_rows,
                                resnet50_profile, socket_ai_speedup)
    out = {}
    for profile in (resnet50_profile(), bert_large_profile()):
        out[profile.name] = {
            "rows": figure6_rows(profile),
            "socket_fp32": socket_ai_speedup(profile),
            "socket_int8": socket_ai_speedup(profile, dtype="int8"),
        }
    return out


def _fig06_scalars(results) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for model, data in results.items():
        for label, row in data["rows"].items():
            prefix = f"{model}.{label}"
            out[f"{prefix}.speedup"] = row["speedup"]
            out[f"{prefix}.cpi"] = row["cpi"]
            out[f"{prefix}.gemm_inst_ratio"] = row["gemm_inst_ratio"]
        out[f"{model}.socket_fp32"] = data["socket_fp32"]
        out[f"{model}.socket_int8"] = data["socket_int8"]
    return out


_register(ScenarioSpec(
    name="fig06", title="Fig. 6: end-to-end AI inference",
    fn=fig06_ai_models, scalars=_fig06_scalars, quick_scale=1.0))


# ---------------------------------------------------------------------
# Fig. 10 — core model vs chip model on SPECint simpoints.
# ---------------------------------------------------------------------

def fig10_core_vs_chip(scale: float = 1.0, engine=None,
                       tier: str = "detailed"):
    from ..core import power10_config
    from ..power.apex import compare_core_vs_chip
    from ..tracegen import simpoint_suite
    from ..workloads import merge_smt, specint_suite
    engine = engine if engine is not None else Engine()
    fscale = 8
    base = specint_suite(instructions=_n(16000, scale, 4000),
                         footprint_scale=fscale,
                         names=["xz", "mcf", "leela", "x264",
                                "exchange2", "omnetpp"])
    simpoints = simpoint_suite(base,
                               interval=_n(6000, scale, 1500),
                               max_clusters=4)
    smt2 = [merge_smt([sp] * 2, name=f"{sp.name}-smt2")
            for sp in simpoints]
    core_model = power10_config(smt=2, infinite_l2=True,
                                cache_scale=fscale)
    chip_model = power10_config(smt=2, cache_scale=fscale)
    return compare_core_vs_chip(core_model, chip_model, smt2,
                                warmup_fraction=0.25, engine=engine,
                                tier=tier)


def _fig10_scalars(points) -> Dict[str, float]:
    out: Dict[str, float] = {"n_points": float(len(points))}
    out["mean_core_ipc"] = statistics.mean(
        p["core_ipc"] for p in points)
    out["mean_chip_ipc"] = statistics.mean(
        p["chip_ipc"] for p in points)
    out["mean_core_power_w"] = statistics.mean(
        p["core_power_w"] for p in points)
    out["mean_chip_power_w"] = statistics.mean(
        p["chip_power_w"] for p in points)
    gaps = sorted(p["core_ipc"] / max(p["chip_ipc"], 1e-9)
                  for p in points)
    out["min_ipc_gap"] = gaps[0]
    out["max_ipc_gap"] = gaps[-1]
    return out


_register(ScenarioSpec(
    name="fig10", title="Fig. 10: core vs chip power model",
    fn=fig10_core_vs_chip, scalars=_fig10_scalars, quick_scale=0.25))


# ---------------------------------------------------------------------
# Fig. 11 — M1-linked model accuracy vs input count (lstsq-based).
# ---------------------------------------------------------------------

_FIG11_INPUTS = (1, 2, 4, 8, 16, 32)


def fig11_m1_model(scale: float = 1.0, engine=None,
                   tier: str = "detailed"):
    from ..core import power10_config
    from ..power import build_training_set, input_sweep
    from ..workloads import specint_proxies
    config = power10_config()
    traces = specint_proxies(instructions=_n(5000, scale, 1200))
    training = build_training_set(config, traces, tier=tier)
    return {
        "unconstrained": input_sweep(training, _FIG11_INPUTS),
        "nonnegative": input_sweep(training, _FIG11_INPUTS,
                                   nonnegative=True),
    }


def _fig11_scalars(errors) -> Dict[str, float]:
    return {f"{name}[{n}]": sweep[n]
            for name, sweep in errors.items()
            for n in _FIG11_INPUTS}


_register(ScenarioSpec(
    name="fig11", title="Fig. 11: M1 model error vs inputs",
    fn=fig11_m1_model, scalars=_fig11_scalars,
    quick_scale=0.3, rtol=1e-3))


# ---------------------------------------------------------------------
# Fig. 12 — top-down vs bottom-up power models (lstsq/NNLS-based).
# ---------------------------------------------------------------------

def fig12_topdown_bottomup(scale: float = 1.0, engine=None,
                           tier: str = "detailed"):
    from ..core import power10_config
    from ..power import (build_training_set, compare_top_down_bottom_up,
                         fit_bottom_up, fit_top_down)
    from ..workloads import specint_proxies, specint_suite
    config = power10_config()
    train = build_training_set(
        config, specint_proxies(instructions=_n(5000, scale, 1200)),
        tier=tier)
    eval_set = build_training_set(
        config,
        specint_suite(instructions=_n(6000, scale, 1500),
                      footprint_scale=8)
        + specint_proxies(instructions=_n(3000, scale, 1000),
                          names=["xz", "x264"]),
        tier=tier)
    top = fit_top_down(train, max_inputs=16)
    bottom = fit_bottom_up(train, max_inputs_per_component=3)
    stats = compare_top_down_bottom_up(top, bottom, eval_set)
    stats["top_down_inputs"] = top.num_inputs
    return stats


def _fig12_scalars(stats) -> Dict[str, float]:
    return {
        "mean_model_difference_pct":
            stats["mean_model_difference_pct"],
        "top_down_error_pct": stats["top_down_error_pct"],
        "bottom_up_error_pct": stats["bottom_up_error_pct"],
        "bottom_up_components": float(stats["bottom_up_components"]),
        "bottom_up_events_used": float(stats["bottom_up_events_used"]),
        "top_down_inputs": float(stats["top_down_inputs"]),
    }


_register(ScenarioSpec(
    name="fig12", title="Fig. 12: top-down vs bottom-up models",
    fn=fig12_topdown_bottomup, scalars=_fig12_scalars,
    quick_scale=0.3, rtol=1e-3))


# ---------------------------------------------------------------------
# Fig. 13 — latch derating per testcase suite.
# ---------------------------------------------------------------------

_FIG13_VT = (10, 50, 90)


def fig13_derating(scale: float = 1.0, engine=None,
                   tier: str = "detailed"):
    from ..core import power10_config
    from ..reliability import SERMiner
    from ..workloads import (derating_suites, merge_smt,
                             specint_proxies)
    suites = {}
    for trace in derating_suites(smt_levels=(1, 2, 4),
                                 instructions=_n(1500, scale, 500)):
        suites[trace.name] = [trace]
    spec = specint_proxies(instructions=_n(2500, scale, 800),
                           names=["xz", "x264", "leela"])
    for smt, label in ((1, "st_spec"), (2, "smt2_spec"),
                       (4, "smt4_spec")):
        if smt == 1:
            suites[label] = spec
        else:
            suites[label] = [merge_smt([t] * smt,
                                       name=f"{t.name}x{smt}")
                             for t in spec]
    return SERMiner(power10_config(), tier=tier).per_suite(
        suites, vt_values=_FIG13_VT)


def _fig13_scalars(results) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for r in results:
        out[f"{r.workload_set}.static"] = r.static_derating_pct
        for vt in _FIG13_VT:
            out[f"{r.workload_set}.vt{vt}"] = \
                r.runtime_derating_pct[vt]
    return out


_register(ScenarioSpec(
    name="fig13", title="Fig. 13: latch derating per suite",
    fn=fig13_derating, scalars=_fig13_scalars, quick_scale=0.3))


# ---------------------------------------------------------------------
# Fig. 14 — POWER9 vs POWER10 derating across the VT sweep.
# ---------------------------------------------------------------------

_FIG14_VT = tuple(range(10, 100, 20))


def fig14_generation_derating(scale: float = 1.0, engine=None,
                              tier: str = "detailed"):
    from ..core import power9_config, power10_config
    from ..reliability import compare_generations
    from ..workloads import derating_suites, specint_proxies
    suites = derating_suites(smt_levels=(1, 2, 4),
                             instructions=_n(1500, scale, 500))
    suites += specint_proxies(instructions=_n(2500, scale, 800),
                              names=["xz", "x264", "leela"])
    return compare_generations(power9_config(), power10_config(),
                               suites, vt_values=_FIG14_VT,
                               tier=tier)


def _fig14_scalars(results) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for gen, r in results.items():
        out[f"{gen}.static"] = r.static_derating_pct
        for vt in _FIG14_VT:
            out[f"{gen}.vt{vt}"] = r.runtime_derating_pct[vt]
    return out


_register(ScenarioSpec(
    name="fig14", title="Fig. 14: P9 vs P10 derating",
    fn=fig14_generation_derating, scalars=_fig14_scalars,
    quick_scale=0.35))


# ---------------------------------------------------------------------
# Fig. 15 — the hardware power proxy (NNLS-based design space).
# ---------------------------------------------------------------------

_FIG15_GRANULARITIES = (10, 25, 50, 100, 400, 1600)


def fig15_power_proxy(scale: float = 1.0, engine=None,
                      tier: str = "detailed"):
    from ..core import power10_config
    from ..power import PowerProxyDesigner
    from ..workloads import specint_proxies
    designer = PowerProxyDesigner(power10_config(), tier=tier)
    traces = specint_proxies(instructions=_n(6000, scale, 1200))
    feats, active, total = designer.characterize(traces)
    space = designer.design_space(feats, active, total,
                                  counter_budgets=(2, 4, 8, 16, 32))
    design = designer.select(feats, active, total, num_counters=16)
    gran = designer.granularity_error(design, traces[0].repeated(3),
                                      _FIG15_GRANULARITIES)
    return space, design, gran


def _fig15_scalars(rich) -> Dict[str, float]:
    space, design, gran = rich
    best: Dict[int, float] = {}
    best_total: Dict[int, float] = {}
    for point in space:
        cur = best.get(point.num_counters)
        if cur is None or point.active_error_pct < cur:
            best[point.num_counters] = point.active_error_pct
            best_total[point.num_counters] = point.total_error_pct
    out: Dict[str, float] = {}
    for n in sorted(best):
        out[f"best_active_err[{n}]"] = best[n]
        out[f"best_total_err[{n}]"] = best_total[n]
    out["selected_counters"] = float(design.num_counters)
    for g in _FIG15_GRANULARITIES:
        out[f"gran_err[{g}]"] = gran[g]
    return out


_register(ScenarioSpec(
    name="fig15", title="Fig. 15: hardware power proxy",
    fn=fig15_power_proxy, scalars=_fig15_scalars,
    quick_scale=0.2, rtol=1e-3))


# ---------------------------------------------------------------------
# Table I — chip features and efficiency projections.
# ---------------------------------------------------------------------

def table1_efficiency(scale: float = 1.0, engine=None,
                      tier: str = "detailed"):
    from ..core import (POWER9_SOCKET, POWER10_SOCKET, power9_config,
                        power10_config, project_socket)
    from ..power import EinspowerModel
    from ..workloads import specint_proxies
    engine = engine if engine is not None else Engine()
    proxies = specint_proxies(instructions=_n(8000, scale, 1200))
    p9, p10 = power9_config(), power10_config()
    tasks = [sim_task(cfg, t, warmup_fraction=0.3, tier=tier)
             for t in proxies for cfg in (p9, p10)]
    results = run_sim_plan(engine, tasks)
    rows = []
    for i, trace in enumerate(proxies):
        r9, r10 = results[2 * i], results[2 * i + 1]
        w9 = EinspowerModel(p9).report(r9.activity).total_w
        w10 = EinspowerModel(p10).report(r10.activity).total_w
        rows.append((trace.weight, r10.ipc / r9.ipc, w10 / w9,
                     r9.ipc, w9, r10.ipc, w10))
    total = sum(r[0] for r in rows)

    def wavg(idx):
        return sum(r[0] * r[idx] for r in rows) / total

    stats = {
        "perf_ratio": wavg(1),
        "power_ratio": wavg(2),
        "p9_ipc": wavg(3), "p9_w": wavg(4),
        "p10_ipc": wavg(5), "p10_w": wavg(6),
    }
    stats["core_eff"] = stats["perf_ratio"] / stats["power_ratio"]
    p9_socket = project_socket(POWER9_SOCKET, stats["p9_ipc"],
                               stats["p9_w"])
    p10_socket = project_socket(POWER10_SOCKET, stats["p10_ipc"],
                                stats["p10_w"])
    stats["socket_eff"] = p10_socket.efficiency / p9_socket.efficiency
    return stats


def _table1_scalars(stats) -> Dict[str, float]:
    return dict(stats)


_register(ScenarioSpec(
    name="table1", title="Table I: efficiency projections",
    fn=table1_efficiency, scalars=_table1_scalars, quick_scale=0.15))


# ---------------------------------------------------------------------
# Ablations — one mechanism off at a time.
# ---------------------------------------------------------------------

def ablations(scale: float = 1.0, engine=None,
              tier: str = "detailed"):
    from ..core import power10_config
    from ..power import EinspowerModel
    from ..workloads import specint_proxies
    engine = engine if engine is not None else Engine()
    traces = specint_proxies(instructions=_n(5000, scale, 1200),
                             names=["xz", "leela", "x264",
                                    "exchange2"])
    base = power10_config()
    variants = {"POWER10 (full)": base}
    variants["no EA-tagged L1"] = dataclasses.replace(
        base, ea_tagged_l1=False)
    variants["no fusion"] = dataclasses.replace(
        base, front_end=dataclasses.replace(
            base.front_end, fusion_enabled=False))
    variants["no store merge"] = dataclasses.replace(
        base, lsu=dataclasses.replace(
            base.lsu, store_merge_enabled=False))
    variants["gate-after clocks"] = dataclasses.replace(
        base, power=dataclasses.replace(
            base.power, gating_floor=0.52))
    keys, tasks = [], []
    for name, config in variants.items():
        for trace in traces:
            keys.append((name, config))
            tasks.append(sim_task(config, trace, warmup_fraction=0.3,
                                  tier=tier))
    sims = run_sim_plan(engine, tasks)
    per_variant: Dict[str, List] = {}
    for (name, config), result in zip(keys, sims):
        per_variant.setdefault(name, []).append((config, result))
    results = {}
    for name, entries in per_variant.items():
        model = EinspowerModel(entries[0][0])
        ipc_sum = sum(r.ipc for _c, r in entries)
        power_sum = sum(model.report(r.activity).total_w
                        for _c, r in entries)
        results[name] = (ipc_sum / len(entries),
                         power_sum / len(entries))
    # MMA idle gating (power-model flag, not a config change): reuse
    # the base run of the first trace — same simulate args, same result
    model = EinspowerModel(base)
    run = per_variant["POWER10 (full)"][0][1]
    results["MMA gated (idle)"] = (
        run.ipc, model.report(run.activity, mma_powered=False).total_w)
    results["MMA powered (idle)"] = (
        run.ipc, model.report(run.activity, mma_powered=True).total_w)
    return results


def _ablations_scalars(results) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for name, (ipc, watts) in results.items():
        out[f"{name}.ipc"] = ipc
        out[f"{name}.power_w"] = watts
    return out


_register(ScenarioSpec(
    name="ablations", title="Ablations: per-mechanism impact",
    fn=ablations, scalars=_ablations_scalars, quick_scale=0.25))


# ---------------------------------------------------------------------
# Section III-C — APEX speedup over detailed power integration.
# ---------------------------------------------------------------------

def apex_speedup(scale: float = 1.0, engine=None,
                 tier: str = "detailed"):
    from ..core import power10_config
    from ..power import (apex_power_from_activity,
                         detailed_reference_power)
    from ..workloads import specint_suite
    engine = engine if engine is not None else Engine()
    config = power10_config()
    trace = specint_suite(instructions=_n(30000, scale, 4000),
                          footprint_scale=8, names=["xz"])[0]
    activity = run_sim_plan(
        engine, [sim_task(config, trace, warmup_fraction=0.2,
                          tier=tier)])[0].activity

    with _obs_span("figs.apex_detailed", "exec") as sp_slow:
        slow = detailed_reference_power(config, activity)
    # amortize timer resolution over repetitions of the fast path
    reps = 200
    with _obs_span("figs.apex_fast", "exec", reps=reps) as sp_fast:
        for _ in range(reps):
            fast = apex_power_from_activity(config, activity)
    return (slow, fast, sp_slow.duration_s,
            sp_fast.duration_s / reps)


def _apex_scalars(rich) -> Dict[str, float]:
    slow, fast, _t_slow, _t_fast = rich
    # wall times are machine-dependent; only the model outputs are
    # golden-comparable
    return {"detailed_power_w": slow, "apex_power_w": fast,
            "delta_pct": abs(slow - fast) / slow * 100.0}


_register(ScenarioSpec(
    name="apex_speedup", title="III-C: APEX speedup",
    fn=apex_speedup, scalars=_apex_scalars, quick_scale=0.25))


# ---------------------------------------------------------------------
# Section III-A — Chopstix proxy-generation coverage.
# ---------------------------------------------------------------------

def proxy_coverage(scale: float = 1.0, engine=None,
                   tier: str = "detailed"):
    from ..core import power9_config
    from ..tracegen import (build_tracepoint, pick_simpoints,
                            validate_against_reference)
    from ..workloads import (SPECINT_NAMES, specint_proxies,
                             specint_suite, suite_coverage)
    per_bench = {}
    for name in SPECINT_NAMES:
        proxies = specint_proxies(instructions=_n(6000, scale, 1500),
                                  names=[name])
        per_bench[name] = (len(proxies), suite_coverage(proxies))
    config = power9_config(cache_scale=8)
    app = specint_suite(instructions=_n(16000, scale, 4000),
                        footprint_scale=8, names=["leela"])[0]
    epoch = _n(1600, scale, 400)
    tp = build_tracepoint(config, app, epoch_instructions=epoch,
                          epochs_to_select=4, tier=tier)
    tp_stats = validate_against_reference(config, app, tp.trace,
                                          tier=tier)
    sp = pick_simpoints(app, interval=epoch, max_clusters=4)
    best_sp = max(sp.simpoints, key=lambda s: s.weight)
    sp_stats = validate_against_reference(config, app, best_sp.trace,
                                          tier=tier)
    return per_bench, tp_stats, sp_stats


def _proxy_scalars(rich) -> Dict[str, float]:
    per_bench, tp_stats, sp_stats = rich
    out: Dict[str, float] = {}
    for name, (count, cov) in per_bench.items():
        out[f"{name}.proxies"] = float(count)
        out[f"{name}.coverage"] = cov
    out["tracepoint_cpi_error_pct"] = tp_stats["cpi_error_pct"]
    out["simpoint_cpi_error_pct"] = sp_stats["cpi_error_pct"]
    return out


_register(ScenarioSpec(
    name="proxy_coverage", title="III-A: Chopstix proxy coverage",
    fn=proxy_coverage, scalars=_proxy_scalars, quick_scale=0.3))
