"""Content-addressed result cache for deterministic simulation tasks.

The paper's methodology exists because pre-silicon power/performance
evaluation must be *fast enough to iterate* (Section III-C: APEX trades
per-cycle integration for interval extraction at ~5000x).  This module
attacks the same cost from the other side: a deterministic model never
needs to run the same (configuration, workload, seed) twice.  A run is
fingerprinted as::

    key = sha256(config fingerprint, trace fingerprint, seed/params,
                 code-version salt)

and its JSON-serialized result is stored in an on-disk store with
atomic writes.  The code-version salt hashes the model's own source
tree, so *any* model change invalidates every cached result — a cache
hit is by construction bit-identical to a rerun.

Hits and misses are reported through :mod:`repro.obs.metrics`
(``repro_exec_cache_hits_total`` / ``repro_exec_cache_misses_total``);
the store can be explicitly invalidated per key or cleared wholesale.
The default store location is taken from ``$REPRO_CACHE_DIR``; with the
variable unset, caching is off unless a path is passed explicitly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..core.activity import ActivityCounters
from ..core.config import CoreConfig
from ..core.pipeline import SimResult
from ..errors import ExecError
from ..obs.metrics import get_registry

ENV_CACHE_DIR = "REPRO_CACHE_DIR"

_KEY_RE = re.compile(r"^[0-9a-f]{16,64}$")

# Packages whose source participates in the code-version salt: the
# model layers whose behavior determines any cacheable result.  The
# observability/lint layers are deliberately excluded — they carry the
# "telemetry off => bit-identical results" guarantee, so their changes
# cannot change model output.
_SALT_PACKAGES = ("core", "power", "pm", "workloads", "reliability",
                  "resilience", "tracegen", "exec", "fastsim")

_code_salt: Optional[str] = None


def code_salt() -> str:
    """Hash of the model source tree (cached per process).

    Fingerprints every ``.py`` file under the model packages, so a
    cached result can never survive a model change.
    """
    global _code_salt
    if _code_salt is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for pkg in _SALT_PACKAGES:
            root = package_root / pkg
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*.py")):
                digest.update(str(path.relative_to(package_root)).encode())
                digest.update(path.read_bytes())
        _code_salt = digest.hexdigest()[:16]
    return _code_salt


def _canonical(value: object) -> object:
    """Reduce a value to canonical JSON-able form for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fingerprint_config(config: CoreConfig) -> str:
    """Stable fingerprint of every field of a core configuration."""
    payload = json.dumps(_canonical(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def fingerprint_trace(trace) -> str:
    """Stable fingerprint of a workload trace's instruction stream.

    Covers the fields the timing model consumes (class, registers,
    addresses, branch outcomes, FLOPs, pc, thread) plus the trace
    identity/weight used for suite aggregation.
    """
    digest = hashlib.sha256()
    digest.update(repr((getattr(trace, "name", "?"),
                        getattr(trace, "suite", ""),
                        getattr(trace, "weight", 1.0))).encode())
    for instr in trace.instructions:
        digest.update(repr((
            instr.iclass.value, instr.dests, instr.srcs, instr.address,
            instr.size, instr.taken, instr.target, instr.flops,
            instr.pc, instr.thread)).encode())
    return digest.hexdigest()[:16]


def task_fingerprint(*parts: object) -> str:
    """Combine fingerprints/parameters (+ the code salt) into one key."""
    payload = json.dumps([_canonical(p) for p in parts] + [code_salt()],
                         sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


# --------------------------------------------------------------------------
# SimResult <-> JSON codec.
#
# The store keeps results as JSON.  Python's JSON float round-trip is
# exact (repr-based), so a decoded result is bit-identical to the
# encoded one — the property the engine's cached-vs-uncached guarantee
# rests on.
# --------------------------------------------------------------------------

def activity_to_json(act: ActivityCounters) -> Dict[str, object]:
    return {"cycles": act.cycles,
            "instructions": act.instructions,
            "events": dict(act.events),
            "unit_busy_cycles": dict(act.unit_busy_cycles)}


def activity_from_json(data: Dict[str, object]) -> ActivityCounters:
    try:
        act = ActivityCounters(cycles=int(data["cycles"]),
                               instructions=int(data["instructions"]))
        act.events = {str(k): int(v)
                      for k, v in dict(data["events"]).items()}
        act.unit_busy_cycles = {
            str(k): int(v)
            for k, v in dict(data["unit_busy_cycles"]).items()}
        return act
    except (KeyError, TypeError, ValueError) as exc:
        raise ExecError(f"malformed cached activity: {exc}") from exc


def sim_result_to_json(result: SimResult) -> Dict[str, object]:
    return {
        "config_name": result.config_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "activity": activity_to_json(result.activity),
        "flushed_instructions": result.flushed_instructions,
        "mispredicts": result.mispredicts,
        "flops": result.flops,
        "l1d_miss_rate": result.l1d_miss_rate,
        "l2_miss_rate": result.l2_miss_rate,
        "fusion_rate": result.fusion_rate,
        "branch_mpki": result.branch_mpki,
        "metadata": dict(result.metadata),
    }


def sim_result_from_json(data: Dict[str, object]) -> SimResult:
    try:
        return SimResult(
            config_name=str(data["config_name"]),
            cycles=int(data["cycles"]),
            instructions=int(data["instructions"]),
            activity=activity_from_json(dict(data["activity"])),
            flushed_instructions=int(data["flushed_instructions"]),
            mispredicts=int(data["mispredicts"]),
            flops=int(data["flops"]),
            l1d_miss_rate=float(data["l1d_miss_rate"]),
            l2_miss_rate=float(data["l2_miss_rate"]),
            fusion_rate=float(data["fusion_rate"]),
            branch_mpki=float(data["branch_mpki"]),
            metadata=dict(data["metadata"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ExecError(f"malformed cached result: {exc}") from exc


# --------------------------------------------------------------------------
# The on-disk store.
# --------------------------------------------------------------------------

class ResultCache:
    """A directory of ``<key>.json`` payloads, written atomically.

    Keys are hex fingerprints from :func:`task_fingerprint`; payloads
    are JSON-serializable dicts.  Writes go through a temp file +
    ``os.replace`` so a killed process can never leave a torn entry,
    and a corrupt entry reads as a miss (and is dropped), never as an
    error — a cache can always be regenerated.
    """

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        """The ``$REPRO_CACHE_DIR`` store, or None when unset/empty."""
        root = os.environ.get(ENV_CACHE_DIR, "").strip()
        return cls(root) if root else None

    @staticmethod
    def _check_key(key: str) -> str:
        if not _KEY_RE.match(key):
            raise ExecError(f"invalid cache key: {key!r}")
        return key

    def _path(self, key: str) -> Path:
        key = self._check_key(key)
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str, *, kind: str = "task") -> Optional[Dict]:
        path = self._path(key)
        registry = get_registry()
        if os.environ.get("REPRO_CHAOS_DIR"):  # resilience.chaos.ENV_CHAOS_DIR
            from ..resilience.chaos import chaos_point
            chaos_point("cache_get", path=str(path))
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            payload = None
        except (OSError, json.JSONDecodeError):
            # torn/corrupt entry: count it, treat as a miss, and drop
            # it so the recompute's put() rewrites a clean entry
            # (otherwise a permanently corrupt file would be re-read
            # and dropped on every subsequent hit)
            self.corrupt += 1
            registry.counter(
                "repro_exec_cache_corrupt_total",
                "cache entries dropped as unreadable or corrupt",
                ).inc(kind=kind)
            self.invalidate(key)
            payload = None
        if payload is None:
            self.misses += 1
            registry.counter(
                "repro_exec_cache_misses_total",
                "result-cache lookups that missed").inc(kind=kind)
            return None
        self.hits += 1
        registry.counter(
            "repro_exec_cache_hits_total",
            "result-cache lookups served from disk").inc(kind=kind)
        return payload

    def put(self, key: str, payload: Dict) -> None:
        """Store one entry, best-effort: a cache that cannot persist
        (full disk, permission loss) must never fail the already-
        computed result it was asked to remember."""
        path = self._path(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def stats(self) -> Dict[str, object]:
        """This instance's lookup counters, shaped for ``/healthz``.

        Per-instance, not per-directory: when several workers share one
        cache tier each reports its own traffic, and the cluster router
        sums them into the tier-wide aggregate.
        """
        lookups = self.hits + self.misses
        return {"hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
                "hit_rate": self.hits / lookups if lookups else 0.0}

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns True when something was removed."""
        path = self._path(key)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError:
            # e.g. a permission-dropped directory: quarantine failed,
            # but the caller already treats the entry as a miss
            return False

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = 0
        for path in sorted(self.root.rglob("*.json")):
            path.unlink()
            removed += 1
        return removed

    def keys(self) -> List[str]:
        return sorted(p.stem for p in self.root.rglob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.rglob("*.json"))

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()


def resolve_cache(cache: Union["ResultCache", str, os.PathLike, None],
                  ) -> Optional[ResultCache]:
    """Normalize a cache argument: pass-through, path, or env default."""
    if cache is None:
        return ResultCache.from_env()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
