"""``repro bench``: run the figure scenarios through the engine.

Produces one ``BENCH_<scenario>.json`` artifact per scenario (scalars,
wall time, cache traffic) plus ``BENCH_sweep.json``, which times a
multi-config comparison sweep three ways — serial, parallel with a cold
cache, and a warm-cache rerun — verifying bit-identity across all
three and reporting the measured speedups.  These artifacts are the
repo's performance trajectory: CI uploads them from the ``bench-smoke``
job on every change.

Scenario results themselves are cached content-addressed (key =
(scenario, scale, code salt)), so a warm rerun of ``repro bench``
replays every scenario near-instantly from ``$REPRO_CACHE_DIR`` /
``--cache-dir``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ExecError, ReproError
from ..obs.tracing import span as _obs_span
from .cache import ResultCache, task_fingerprint
from .executor import Engine, resolve_workers
from .figs import SCENARIOS, get_scenario, run_scenario

QUICK_SCALE_CAP = 1.0


def _scenario_payload(name: str, scale: float, engine: Engine,
                      tier: str = "detailed") -> Dict[str, object]:
    """Scalars for one scenario, served from the scenario-level cache
    when possible (the inner sim tasks hit the same cache either way,
    but the scenario key also skips the non-sim analysis work).

    The tier is part of the fingerprint: a warm detailed-tier cache
    must never answer a fast-tier request (and vice versa), even
    though today the tiers agree bit-for-bit — the cache key encodes
    *how* a result was produced, not just what it should equal."""
    key = task_fingerprint("scenario", name, scale, tier)
    if engine.cache is not None:
        cached = engine.cache.get(key, kind="scenario")
        if cached is not None:
            return cached
    _rich, scalars = run_scenario(name, scale=scale, engine=engine,
                                  tier=tier)
    payload = {"scalars": scalars}
    if engine.cache is not None:
        engine.cache.put(key, payload)
    return payload


def run_bench(names: Optional[Sequence[str]] = None, *,
              scale: float = 1.0, quick: bool = False,
              workers: Optional[int] = None, cache_dir=None,
              out_dir=".", sweep: bool = True,
              tier: str = "detailed") -> Dict[str, object]:
    """Run the named scenarios (all when None); write BENCH_*.json.

    ``tier="fast"`` runs the differential fidelity flow: every
    scenario runs on *both* tiers, the per-scenario maximum relative
    scalar error and the measured speedup land in
    ``BENCH_fastsim.json``, and the sweep times the fast tier against
    the detailed oracle.
    """
    from ..fastsim.dispatch import validate_tier
    validate_tier(tier)
    if quick and scale != 1.0:
        raise ExecError("--quick and --scale are mutually exclusive")
    engine = Engine(workers=workers, cache=cache_dir)
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    selected = list(names) if names else list(SCENARIOS)
    summary: Dict[str, object] = {"scenarios": {}, "workers":
                                  engine.workers, "tier": tier}
    fidelity: Dict[str, Dict[str, object]] = {}
    for name in selected:
        spec = get_scenario(name)
        run_scale = min(QUICK_SCALE_CAP, spec.quick_scale) \
            if quick else scale
        if tier != "detailed" and spec.detailed_only:
            summary["scenarios"][name] = {"skipped": "detailed-only"}
            fidelity[name] = {"skipped": "detailed-only"}
            continue
        hits0 = engine.cache.hits if engine.cache is not None else 0
        misses0 = engine.cache.misses \
            if engine.cache is not None else 0
        with _obs_span("bench.scenario", "exec", scenario=name,
                       tier=tier) as sp:
            payload = _scenario_payload(name, run_scale, engine, tier)
        doc = {
            "scenario": name,
            "title": spec.title,
            "scale": run_scale,
            "tier": tier,
            "workers": engine.workers,
            "wall_s": sp.duration_s,
            "scalars": payload["scalars"],
            "cache": None if engine.cache is None else {
                "hits": engine.cache.hits - hits0,
                "misses": engine.cache.misses - misses0,
            },
        }
        artifact = out_path / f"BENCH_{name}.json"
        artifact.write_text(json.dumps(doc, indent=2, sort_keys=True))
        summary["scenarios"][name] = {"wall_s": doc["wall_s"],
                                      "artifact": str(artifact)}
        if tier == "fast":
            fidelity[name] = _scenario_fidelity(
                name, spec, run_scale, workers=engine.workers,
                fast_wall_s=sp.duration_s,
                fast_scalars=payload["scalars"])
    if sweep:
        summary["sweep"] = run_sweep(out_dir=out_path, quick=quick,
                                     workers=engine.workers,
                                     cache_dir=cache_dir)
    if tier == "fast":
        summary["fastsim"] = write_fastsim_report(
            fidelity, out_dir=out_path, quick=quick,
            workers=engine.workers)
    return summary


def _scenario_fidelity(name: str, spec, scale: float, *,
                       workers: int, fast_wall_s: float,
                       fast_scalars: Dict[str, float],
                       ) -> Dict[str, object]:
    """Re-run one scenario on the detailed oracle and compare scalars.

    The detailed run uses a fresh cache-less engine so its wall time is
    a real measurement, not a cache replay; the fast numbers come from
    the bench run that already happened."""
    with _obs_span("bench.fidelity", "exec", scenario=name) as sp:
        _rich, detailed = run_scenario(
            name, scale=scale, engine=Engine(workers=workers),
            tier="detailed")
    max_rel_err = 0.0
    worst_scalar = None
    for key, ref in detailed.items():
        # scalars may arrive as numpy floats; normalize so the doc
        # stays json-serializable
        err = float(abs(fast_scalars[key] - ref)
                    / max(abs(ref), 1e-12))
        if err >= max_rel_err:
            max_rel_err, worst_scalar = err, key
    return {
        "detailed_wall_s": sp.duration_s,
        "fast_wall_s": fast_wall_s,
        "speedup": sp.duration_s / max(fast_wall_s, 1e-9),
        "max_rel_err": max_rel_err,
        "worst_scalar": worst_scalar,
        "rtol": spec.rtol,
        "within_rtol": max_rel_err <= spec.rtol,
    }


def write_fastsim_report(fidelity: Dict[str, Dict[str, object]], *,
                         out_dir=".", quick: bool = False,
                         workers: Optional[int] = None,
                         ) -> Dict[str, object]:
    """Assemble ``BENCH_fastsim.json``: per-scenario fidelity plus the
    fast-vs-detailed sweep speedup.

    The speedup target is 10x; the artifact reports the measured
    number either way, so a container that cannot hit the target still
    publishes an honest figure (the fidelity gate — every scenario
    within its rtol — is the hard failure)."""
    sweep = run_fastsim_sweep(quick=quick, workers=workers)
    compared = {k: v for k, v in fidelity.items()
                if "max_rel_err" in v}
    doc: Dict[str, object] = {
        "scenarios": fidelity,
        "fidelity": {
            "max_rel_err": max(
                (v["max_rel_err"] for v in compared.values()),
                default=0.0),
            "all_within_rtol": all(
                v["within_rtol"] for v in compared.values()),
            "compared": len(compared),
            "skipped": [k for k, v in fidelity.items()
                        if "skipped" in v],
        },
        "sweep": sweep,
        "speedup_target": 10.0,
        "speedup_target_met":
            sweep["speedup"] >= 10.0,
    }
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    (out_path / "BENCH_fastsim.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True))
    if not doc["fidelity"]["all_within_rtol"]:
        bad = [k for k, v in compared.items() if not v["within_rtol"]]
        raise ExecError(
            "fast tier out of tolerance on: " + ", ".join(bad))
    return doc


def run_fastsim_sweep(*, quick: bool = False,
                      workers: Optional[int] = None,
                      ) -> Dict[str, object]:
    """Time the acceptance sweep on both tiers, serially and without a
    cache, and verify bit-identity of every simulation result."""
    from ..core import power9_config, power10_config
    from ..core.simulator import compare_configs
    from ..workloads import resolve_workload
    n = 2000 if quick else 40000
    configs = [power9_config(), power10_config(),
               power10_config(smt=4)]
    traces = [resolve_workload(w, n)
              for w in ("daxpy", "dgemm-vsu", "stream-triad",
                        "pointer-chase")]
    with _obs_span("bench.fastsim.detailed", "exec") as sp_det:
        detailed = compare_configs(configs, traces,
                                   engine=Engine(workers=1))
    with _obs_span("bench.fastsim.fast", "exec") as sp_fast:
        fast = compare_configs(configs, traces,
                               engine=Engine(workers=1), tier="fast")
    bit_identical = _sweep_snapshot(detailed) == _sweep_snapshot(fast)
    if not bit_identical:
        raise ExecError(
            "fast-tier sweep diverged from the detailed oracle")
    return {
        "configs": [c.name for c in configs],
        "workloads": [t.name for t in traces],
        "n_sims": len(configs) * len(traces),
        "instructions": n,
        "detailed_s": sp_det.duration_s,
        "fast_s": sp_fast.duration_s,
        "speedup": sp_det.duration_s / max(sp_fast.duration_s, 1e-9),
        "bit_identical": bit_identical,
    }


def _sweep_snapshot(out) -> str:
    """Canonical serialization of a compare_configs result — equal
    strings mean bit-identical runs."""
    return json.dumps(
        {name: [(r.result.cycles, r.result.instructions,
                 dict(r.result.activity.events), r.power_w)
                for r in suite.runs]
         for name, suite in out.items()}, sort_keys=True)


def run_sweep(*, out_dir=".", quick: bool = False,
              workers: Optional[int] = None,
              cache_dir=None) -> Dict[str, object]:
    """The acceptance sweep: a multi-config comparison timed serial vs
    parallel (cold cache) vs warm-cache rerun, with bit-identity
    verified across all three."""
    from ..core import power9_config, power10_config
    from ..core.simulator import compare_configs
    from ..workloads import resolve_workload
    workers = resolve_workers(workers)
    n = 2000 if quick else 8000
    configs = [power9_config(), power10_config(),
               power10_config(smt=4)]
    traces = [resolve_workload(w, n)
              for w in ("daxpy", "dgemm-vsu", "stream-triad",
                        "pointer-chase")]

    with _obs_span("bench.sweep.serial", "exec") as sp_serial:
        serial = compare_configs(configs, traces,
                                 engine=Engine(workers=1))
    with _obs_span("bench.sweep.parallel", "exec") as sp_par:
        parallel = compare_configs(configs, traces,
                                   engine=Engine(workers=workers))

    out_path = Path(out_dir)
    cache_root = Path(cache_dir) if cache_dir is not None \
        else out_path / ".bench-cache"
    cache = ResultCache(cache_root / "sweep")
    cache.clear()  # guarantee the "cold" timing really is cold
    with _obs_span("bench.sweep.cold", "exec") as sp_cold:
        cold = compare_configs(
            configs, traces, engine=Engine(workers=workers,
                                           cache=cache))
    with _obs_span("bench.sweep.warm", "exec") as sp_warm:
        warm = compare_configs(
            configs, traces, engine=Engine(workers=workers,
                                           cache=cache))

    snapshots = [_sweep_snapshot(x)
                 for x in (serial, parallel, cold, warm)]
    bit_identical = all(s == snapshots[0] for s in snapshots[1:])
    doc = {
        "configs": [c.name for c in configs],
        "workloads": [t.name for t in traces],
        "n_sims": len(configs) * len(traces),
        "instructions": n,
        "workers": workers,
        "serial_s": sp_serial.duration_s,
        "parallel_s": sp_par.duration_s,
        "parallel_speedup": sp_serial.duration_s
        / max(sp_par.duration_s, 1e-9),
        "cold_cache_s": sp_cold.duration_s,
        "warm_cache_s": sp_warm.duration_s,
        "warm_speedup": sp_serial.duration_s
        / max(sp_warm.duration_s, 1e-9),
        "bit_identical": bit_identical,
    }
    (out_path / "BENCH_sweep.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True))
    if not bit_identical:
        raise ExecError(
            "sweep results are not bit-identical across serial / "
            "parallel / cached execution")
    return doc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the paper-figure benchmarks through the "
                    "parallel cached execution engine")
    parser.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                        help="scenario names (default: all; see "
                             "--list)")
    parser.add_argument("--list", action="store_true",
                        help="list scenario names and exit")
    parser.add_argument("--quick", action="store_true",
                        help="run every scenario at its reduced "
                             "golden-harness scale")
    parser.add_argument("--tier", choices=("detailed", "fast"),
                        default="detailed",
                        help="simulator tier; 'fast' also runs the "
                             "differential fidelity harness and "
                             "writes BENCH_fastsim.json")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="instruction-budget scale factor "
                             "(default 1.0)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: "
                             "$REPRO_WORKERS or 1)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache "
                             "(default: $REPRO_CACHE_DIR or off)")
    parser.add_argument("--out", default=".", metavar="DIR",
                        help="directory for BENCH_*.json artifacts "
                             "(default .)")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the serial/parallel/cached timing "
                             "sweep (BENCH_sweep.json)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, spec in SCENARIOS.items():
            print(f"{name:16s} {spec.title}")
        return 0
    try:
        summary = run_bench(
            args.scenarios or None, scale=args.scale,
            quick=args.quick, workers=args.workers,
            cache_dir=args.cache_dir, out_dir=args.out,
            sweep=not args.no_sweep, tier=args.tier)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name, info in summary["scenarios"].items():
        if "skipped" in info:
            print(f"{name:16s}  skipped ({info['skipped']})")
            continue
        print(f"{name:16s} {info['wall_s']:8.2f}s  "
              f"-> {info['artifact']}")
    fastsim = summary.get("fastsim")
    if fastsim is not None:
        fid = fastsim["fidelity"]
        fsweep = fastsim["sweep"]
        print(f"fastsim: {fid['compared']} scenarios compared, "
              f"max_rel_err {fid['max_rel_err']:.3e}, sweep speedup "
              f"{fsweep['speedup']:.2f}x "
              f"(target {fastsim['speedup_target']:.0f}x, "
              f"met: {fastsim['speedup_target_met']}); "
              f"bit-identical: {fsweep['bit_identical']}")
    sweep = summary.get("sweep")
    if sweep is None:
        return 0
    print(f"sweep ({sweep['n_sims']} sims, {sweep['workers']} "
          f"workers): serial {sweep['serial_s']:.2f}s, parallel "
          f"{sweep['parallel_s']:.2f}s "
          f"({sweep['parallel_speedup']:.2f}x), warm cache "
          f"{sweep['warm_cache_s']:.2f}s "
          f"({sweep['warm_speedup']:.2f}x); bit-identical: "
          f"{sweep['bit_identical']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
