"""Deterministic parallel fan-out over pure simulation tasks.

The engine executes an :class:`ExecPlan` — an ordered list of
:class:`ExecTask` (kind + content-addressed key + picklable payload) —
with three interchangeable strategies that are *guaranteed* (and
test-enforced) to produce bit-identical results:

* serial, in-process (``workers=1``, the default);
* fan-out across a ``ProcessPoolExecutor`` (``workers=N``), with
  order-independent assembly: results are collected by task index as
  workers finish, then reassembled in plan order, so submission and
  completion order never influence output;
* cache replay: keys found in the :class:`~repro.exec.cache.ResultCache`
  skip execution entirely and return the stored JSON payload, which the
  codec round-trips exactly.

The guarantee holds because every registered task kind is a pure
function of its payload (the timing model is deterministic, per-run
seeds are pure functions of their inputs) and results cross process
boundaries as canonical JSON.

Worker count resolves from the ``workers`` argument, else
``$REPRO_WORKERS``, else 1; the cache from the ``cache`` argument, else
``$REPRO_CACHE_DIR``, else off.  Note that metrics incremented inside
worker processes (e.g. ``repro_simulations_total``) stay in the worker:
the parent registry only sees the engine's own
``repro_exec_tasks_total`` / batch-latency series.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import CoreConfig
from ..core.pipeline import SimResult, simulate
from ..errors import DeadlineError, ExecError
from ..obs.context import request_scope
from ..obs.metrics import get_registry
from ..obs.tracing import Tracer, get_tracer, set_tracer
from ..obs.tracing import span as _obs_span
from .cache import (ResultCache, fingerprint_config, fingerprint_trace,
                    resolve_cache, sim_result_from_json,
                    sim_result_to_json, task_fingerprint)

ENV_WORKERS = "REPRO_WORKERS"


@dataclass(frozen=True)
class ExecTask:
    """One pure unit of work.

    ``key`` is the content-addressed fingerprint of ``payload`` (plus
    the code salt), so equal keys imply equal results; ``payload`` must
    be picklable for the process-pool path.

    ``tags`` carries observability context only — the first tag is the
    originating request id, adopted by whichever process executes the
    task so its spans land on that request's trace track.  Tags are
    deliberately *excluded* from ``key``: two requests asking for the
    same work share one cache entry and one single-flight execution.

    ``deadline_s`` is an execution *budget*, not content: like tags it
    is excluded from ``key`` (the answer does not depend on how long
    the caller is willing to wait).  ``None`` means unbounded.  The
    engine enforces the budget per parallel batch — see
    :meth:`Engine._execute_parallel`.
    """

    kind: str
    key: str
    payload: object
    tags: Tuple[str, ...] = ()
    deadline_s: Optional[float] = None


@dataclass
class ExecPlan:
    """An ordered batch of tasks; results come back in this order."""

    tasks: List[ExecTask] = field(default_factory=list)

    def add(self, task: ExecTask) -> ExecTask:
        self.tasks.append(task)
        return task

    def __len__(self) -> int:
        return len(self.tasks)


# ---- task kinds ----------------------------------------------------------
#
# A task runner maps payload -> JSON-serializable dict.  Runners must be
# top-level functions (picklable by reference) and pure in their
# payload; they execute in worker processes under workers>1.

def _run_sim(payload) -> Dict[str, object]:
    config, trace, params = payload
    result = simulate(
        config, trace,
        max_instructions=params.get("max_instructions"),
        warmup_fraction=params.get("warmup_fraction", 0.0))
    return sim_result_to_json(result)


def _run_sim_fast(payload) -> Dict[str, object]:
    from ..fastsim.replay import simulate_fast
    config, trace, params = payload
    result = simulate_fast(
        config, trace,
        max_instructions=params.get("max_instructions"),
        warmup_fraction=params.get("warmup_fraction", 0.0))
    return sim_result_to_json(result)


# Per-process campaign-runner cache: building a CampaignRunner resolves
# the workload trace and the golden reference once, which every
# subsequent run_one() of the same campaign reuses.
_CAMPAIGN_RUNNERS: Dict[str, object] = {}


def _run_campaign(payload) -> Dict[str, object]:
    config, index = payload
    from ..resilience.campaign import CampaignRunner
    fp = config.fingerprint()
    runner = _CAMPAIGN_RUNNERS.get(fp)
    if runner is None:
        _CAMPAIGN_RUNNERS.clear()
        runner = _CAMPAIGN_RUNNERS[fp] = CampaignRunner(config)
    return runner.run_one(int(index)).to_json()


_TASK_RUNNERS = {
    "sim": _run_sim,
    "sim_fast": _run_sim_fast,
    "campaign": _run_campaign,
}

# simulation tier -> task kind; the kind is the first component of
# task_fingerprint, so detailed- and fast-tier runs of the same
# (config, trace, params) can never share a cache entry
_SIM_KINDS = {"detailed": "sim", "fast": "sim_fast"}


def register_task_kind(kind: str, runner) -> None:
    """Register a new pure task kind (top-level function, JSON out)."""
    if kind in _TASK_RUNNERS and _TASK_RUNNERS[kind] is not runner:
        raise ExecError(f"task kind {kind!r} already registered")
    _TASK_RUNNERS[kind] = runner


def _execute_task(task: ExecTask) -> Dict[str, object]:
    """Run one task (this is what worker processes execute)."""
    runner = _TASK_RUNNERS.get(task.kind)
    if runner is None:
        raise ExecError(f"unknown task kind {task.kind!r}")
    if os.environ.get("REPRO_CHAOS_DIR"):  # resilience.chaos.ENV_CHAOS_DIR
        from ..resilience.chaos import chaos_point
        chaos_point("worker_task")
    if task.tags:
        # adopt the originating request's id so spans recorded inside
        # the runner attach to its trace track
        with request_scope(task.tags[0]):
            return runner(task.payload)
    return runner(task.payload)


def _execute_task_traced(task: ExecTask,
                         ) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Pool-path variant when telemetry is on: run the task under a
    fresh in-worker tracer and ship the spans home as wire dicts.

    The worker may have inherited (via fork) a copy of the parent's
    enabled tracer, but spans recorded into that copy die with the
    worker — hence the explicit collect-and-return.
    """
    tracer = Tracer(enabled=True)
    prev = set_tracer(tracer)
    try:
        payload = _execute_task(task)
    finally:
        set_tracer(prev)
    return payload, tracer.to_wire()


# ---- task builders -------------------------------------------------------

def sim_task(config: CoreConfig, trace, *,
             warmup_fraction: float = 0.0,
             max_instructions: Optional[int] = None,
             tier: str = "detailed",
             tags: Tuple[str, ...] = ()) -> ExecTask:
    """A timing-model run as a pure task.

    ``tier`` selects the simulator tier (``"detailed"`` | ``"fast"``).
    The tier is part of the task fingerprint — via the kind *and* the
    params — so a warm detailed-tier cache can never answer a fast-tier
    request or vice versa.
    """
    kind = _SIM_KINDS.get(tier)
    if kind is None:
        from ..fastsim.dispatch import validate_tier
        validate_tier(tier)                      # raises with tier list
    params = {"warmup_fraction": warmup_fraction,
              "max_instructions": max_instructions}
    if tier != "detailed":
        params["tier"] = tier
    key = task_fingerprint(kind, fingerprint_config(config),
                           fingerprint_trace(trace), params)
    return ExecTask(kind=kind, key=key,
                    payload=(config, trace, params), tags=tuple(tags))


def campaign_task(config, index: int, *,
                  tags: Tuple[str, ...] = ()) -> ExecTask:
    """One fault-injection campaign run as a pure task.

    Purity holds because :meth:`CampaignConfig.run_seed` derives the
    fault schedule from ``(campaign seed, index)`` alone.
    """
    key = task_fingerprint("campaign", config.fingerprint(), int(index))
    return ExecTask(kind="campaign", key=key,
                    payload=(config, int(index)), tags=tuple(tags))


# ---- the engine ----------------------------------------------------------

def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ExecError(
                    f"${ENV_WORKERS} must be an integer, got {raw!r}")
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ExecError(f"workers must be >= 1, got {workers}")
    return workers


class Engine:
    """Executes plans; owns the worker-count, cache policy, and (for
    ``workers > 1``) a persistent process pool.

    The pool is created lazily on the first parallel batch and reused
    by every subsequent :meth:`run` until :meth:`close`, so long-lived
    callers (the serving layer, suite drivers, campaign loops) pay
    pool startup once instead of per call.  ``Engine`` is a context
    manager::

        with Engine(workers=4) as engine:
            engine.run(plan_a)
            engine.run(plan_b)      # same pool, no respawn

    ``close()`` is idempotent, and an engine remains usable after
    closing — the next parallel batch simply creates a fresh pool.

    The parallel path is *supervised*: a worker that dies mid-task
    (SIGKILL, OOM) breaks the pool, and the engine rebuilds it and
    re-dispatches exactly the unfinished tasks — at most
    ``max_restarts`` rebuilds per batch.  Because every task kind is
    pure, a re-dispatched task returns the same bytes it would have
    the first time, so supervision never perturbs results
    (test-enforced).  Tasks carrying a ``deadline_s`` budget arm a
    per-batch watchdog: if the budget expires with work outstanding,
    the pool (which may hold a stalled worker) is killed and
    :class:`~repro.errors.DeadlineError` raised.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache=None, max_restarts: int = 2):
        self.workers = resolve_workers(workers)
        self.cache: Optional[ResultCache] = resolve_cache(cache)
        if max_restarts < 0:
            raise ExecError(
                f"max_restarts must be >= 0, got {max_restarts}")
        self.max_restarts = int(max_restarts)
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers)
            _LIVE_ENGINES.add(self)
        return self._pool

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down (idempotent).

        ``wait=False`` lets a draining server abandon a pool whose
        current batch is still running; the workers exit once their
        in-flight tasks complete.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def run(self, plan,
            sources: Optional[Dict[str, str]] = None,
            ) -> List[Dict[str, object]]:
        """Execute every task; returns JSON payloads in plan order.

        When ``sources`` (a dict) is supplied, it is filled with
        ``task.key -> "cache" | "executed"`` so callers can attribute
        each answer without re-deriving cache state.
        """
        tasks: List[ExecTask] = list(
            plan.tasks if isinstance(plan, ExecPlan) else plan)
        for task in tasks:
            if task.kind not in _TASK_RUNNERS:
                raise ExecError(f"unknown task kind {task.kind!r}")
        registry = get_registry()
        counter = registry.counter(
            "repro_exec_tasks_total",
            "tasks processed by the execution engine")
        from ..lint.sanitizer import get_sanitizer
        sanitizer = get_sanitizer()
        with _obs_span("exec.engine.run", "exec",
                       tasks=len(tasks), workers=self.workers) as sp:
            by_key: Dict[str, Dict[str, object]] = {}
            pending: List[Tuple[int, ExecTask]] = []
            pending_keys: Dict[str, int] = {}
            for i, task in enumerate(tasks):
                if task.key in by_key or task.key in pending_keys:
                    continue
                cached = (self.cache.get(task.key, kind=task.kind)
                          if self.cache is not None else None)
                if cached is not None:
                    by_key[task.key] = cached
                    counter.inc(kind=task.kind, source="cache")
                    if sanitizer is not None:
                        sanitizer.observe_result(task.kind, task.key,
                                                 cached, "cache")
                    if sources is not None:
                        sources[task.key] = "cache"
                else:
                    pending_keys[task.key] = i
                    pending.append((i, task))
            executed = self._execute(pending)
            for i, task in pending:
                payload = executed[i]
                by_key[task.key] = payload
                if self.cache is not None:
                    self.cache.put(task.key, payload)
                counter.inc(kind=task.kind, source="executed")
                if sanitizer is not None:
                    sanitizer.observe_result(task.kind, task.key,
                                             payload, "executed")
                if sources is not None:
                    sources[task.key] = "executed"
            results = [by_key[task.key] for task in tasks]
            sp.set(executed=len(pending),
                   cached=len(tasks) - len(pending))
            registry.histogram(
                "repro_exec_batch_seconds",
                "wall time of one engine batch").observe(
                    sp.duration_s, workers=self.workers)
        return results

    def _execute(self, pending: Sequence[Tuple[int, ExecTask]],
                 ) -> Dict[int, Dict[str, object]]:
        out: Dict[int, Dict[str, object]] = {}
        if not pending:
            return out
        if self.workers <= 1:
            # serial path: no worker to crash, no watchdog to arm (an
            # in-process stall cannot be preempted anyway)
            for i, task in pending:
                out[i] = _execute_task(task)
            return out
        budgets = [task.deadline_s for _, task in pending]
        budget_s = (max(budgets)
                    if all(b is not None for b in budgets) else None)
        return self._execute_parallel(list(pending), budget_s)

    def _execute_parallel(self, pending: List[Tuple[int, ExecTask]],
                          budget_s: Optional[float],
                          ) -> Dict[int, Dict[str, object]]:
        """Supervised fan-out: survive dead workers, bound stalls.

        ``budget_s`` is the batch's deadline budget (the loosest task
        deadline; ``None`` when any task is unbounded), measured from
        batch start — a deliberate approximation of each request's
        end-to-end deadline that keeps the watchdog per-batch.
        """
        out: Dict[int, Dict[str, object]] = {}
        errors: Dict[int, BaseException] = {}
        tracer = get_tracer()
        traced = tracer.enabled
        run_one = _execute_task_traced if traced else _execute_task
        deadline = (time.monotonic() + budget_s
                    if budget_s is not None else None)
        remaining = list(pending)
        rebuilds = 0
        while remaining:
            pool = self._ensure_pool()
            broken = False
            futures: Dict[concurrent.futures.Future, int] = {}
            try:
                for i, task in remaining:
                    futures[pool.submit(run_one, task)] = i
            except concurrent.futures.BrokenExecutor:
                # a worker died while we were still submitting; the
                # already-submitted futures resolve below, the rest
                # stay in ``remaining`` for the rebuilt pool
                broken = True
            not_done = set(futures)
            while not_done:
                timeout = None
                if deadline is not None:
                    timeout = deadline - time.monotonic()
                    if timeout <= 0:
                        break
                done, not_done = concurrent.futures.wait(
                    not_done, timeout=timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                if not done:
                    break               # budget expired mid-wait
                for fut in done:
                    i = futures[fut]
                    try:
                        result = fut.result()
                    except concurrent.futures.BrokenExecutor:
                        broken = True
                        continue
                    except BaseException as exc:  # noqa: BLE001 - reraised
                        errors[i] = exc
                        continue
                    if traced:
                        out[i], wire = result
                        tracer.merge_wire(wire, origin="worker")
                    else:
                        out[i] = result
            finished = set(out) | set(errors)
            remaining = [(i, t) for i, t in remaining
                         if i not in finished]
            if broken:
                # discard the dead pool before any raise below, or the
                # next batch would submit into a broken executor
                pool, self._pool = self._pool, None
                if pool is not None:
                    pool.shutdown(wait=True)
            if errors:
                # deterministic propagation: the failure of the
                # earliest-indexed task wins, whatever finished first
                raise errors[min(errors)]
            if not_done:
                # the budget expired with work outstanding; the pool
                # may hold a stalled worker, so kill rather than drain
                self._kill_pool()
                raise DeadlineError(
                    f"batch exceeded its {budget_s:.3f}s deadline "
                    f"budget with {len(remaining)} task(s) unfinished")
            if broken and remaining:
                rebuilds += 1
                registry = get_registry()
                registry.counter(
                    "repro_exec_pool_rebuilds_total",
                    "process-pool rebuilds after worker death",
                    ).inc(reason="broken")
                if rebuilds > self.max_restarts:
                    raise ExecError(
                        f"worker pool died {rebuilds} times in one "
                        f"batch (max_restarts={self.max_restarts}); "
                        f"{len(remaining)} task(s) unfinished")
                registry.counter(
                    "repro_exec_task_retries_total",
                    "tasks re-dispatched after a worker death",
                    ).inc(float(len(remaining)), reason="broken")
        return out

    def _kill_pool(self) -> None:
        """Forcibly discard the pool, killing any stalled worker.

        ``shutdown`` alone would block on a worker that is asleep in a
        task; killing the processes first makes reclamation prompt.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.kill()
        pool.shutdown(wait=True, cancel_futures=True)


# Engines whose persistent pool is still open.  The atexit sweep closes
# them before interpreter teardown: a ProcessPoolExecutor that is merely
# garbage-collected can race concurrent.futures' own exit hook and die
# with "Bad file descriptor" noise on its wakeup pipe.
_LIVE_ENGINES: "weakref.WeakSet[Engine]" = weakref.WeakSet()


def _close_live_engines() -> None:
    for engine in list(_LIVE_ENGINES):
        engine.close()


atexit.register(_close_live_engines)


# ---- convenience ---------------------------------------------------------

def run_sim_plan(engine: Engine, tasks: Sequence[ExecTask],
                 ) -> List[SimResult]:
    """Execute sim tasks and decode the payloads back to SimResults."""
    for task in tasks:
        if task.kind not in ("sim", "sim_fast"):
            raise ExecError(
                f"run_sim_plan got a {task.kind!r} task")
    return [sim_result_from_json(p)
            for p in engine.run(ExecPlan(list(tasks)))]
