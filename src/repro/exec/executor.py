"""Deterministic parallel fan-out over pure simulation tasks.

The engine executes an :class:`ExecPlan` — an ordered list of
:class:`ExecTask` (kind + content-addressed key + picklable payload) —
with three interchangeable strategies that are *guaranteed* (and
test-enforced) to produce bit-identical results:

* serial, in-process (``workers=1``, the default);
* fan-out across a ``ProcessPoolExecutor`` (``workers=N``), with
  order-independent assembly: results are collected by task index as
  workers finish, then reassembled in plan order, so submission and
  completion order never influence output;
* cache replay: keys found in the :class:`~repro.exec.cache.ResultCache`
  skip execution entirely and return the stored JSON payload, which the
  codec round-trips exactly.

The guarantee holds because every registered task kind is a pure
function of its payload (the timing model is deterministic, per-run
seeds are pure functions of their inputs) and results cross process
boundaries as canonical JSON.

Worker count resolves from the ``workers`` argument, else
``$REPRO_WORKERS``, else 1; the cache from the ``cache`` argument, else
``$REPRO_CACHE_DIR``, else off.  Note that metrics incremented inside
worker processes (e.g. ``repro_simulations_total``) stay in the worker:
the parent registry only sees the engine's own
``repro_exec_tasks_total`` / batch-latency series.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import CoreConfig
from ..core.pipeline import SimResult, simulate
from ..errors import ExecError
from ..obs.context import request_scope
from ..obs.metrics import get_registry
from ..obs.tracing import Tracer, get_tracer, set_tracer
from ..obs.tracing import span as _obs_span
from .cache import (ResultCache, fingerprint_config, fingerprint_trace,
                    resolve_cache, sim_result_from_json,
                    sim_result_to_json, task_fingerprint)

ENV_WORKERS = "REPRO_WORKERS"


@dataclass(frozen=True)
class ExecTask:
    """One pure unit of work.

    ``key`` is the content-addressed fingerprint of ``payload`` (plus
    the code salt), so equal keys imply equal results; ``payload`` must
    be picklable for the process-pool path.

    ``tags`` carries observability context only — the first tag is the
    originating request id, adopted by whichever process executes the
    task so its spans land on that request's trace track.  Tags are
    deliberately *excluded* from ``key``: two requests asking for the
    same work share one cache entry and one single-flight execution.
    """

    kind: str
    key: str
    payload: object
    tags: Tuple[str, ...] = ()


@dataclass
class ExecPlan:
    """An ordered batch of tasks; results come back in this order."""

    tasks: List[ExecTask] = field(default_factory=list)

    def add(self, task: ExecTask) -> ExecTask:
        self.tasks.append(task)
        return task

    def __len__(self) -> int:
        return len(self.tasks)


# ---- task kinds ----------------------------------------------------------
#
# A task runner maps payload -> JSON-serializable dict.  Runners must be
# top-level functions (picklable by reference) and pure in their
# payload; they execute in worker processes under workers>1.

def _run_sim(payload) -> Dict[str, object]:
    config, trace, params = payload
    result = simulate(
        config, trace,
        max_instructions=params.get("max_instructions"),
        warmup_fraction=params.get("warmup_fraction", 0.0))
    return sim_result_to_json(result)


# Per-process campaign-runner cache: building a CampaignRunner resolves
# the workload trace and the golden reference once, which every
# subsequent run_one() of the same campaign reuses.
_CAMPAIGN_RUNNERS: Dict[str, object] = {}


def _run_campaign(payload) -> Dict[str, object]:
    config, index = payload
    from ..resilience.campaign import CampaignRunner
    fp = config.fingerprint()
    runner = _CAMPAIGN_RUNNERS.get(fp)
    if runner is None:
        _CAMPAIGN_RUNNERS.clear()
        runner = _CAMPAIGN_RUNNERS[fp] = CampaignRunner(config)
    return runner.run_one(int(index)).to_json()


_TASK_RUNNERS = {
    "sim": _run_sim,
    "campaign": _run_campaign,
}


def register_task_kind(kind: str, runner) -> None:
    """Register a new pure task kind (top-level function, JSON out)."""
    if kind in _TASK_RUNNERS and _TASK_RUNNERS[kind] is not runner:
        raise ExecError(f"task kind {kind!r} already registered")
    _TASK_RUNNERS[kind] = runner


def _execute_task(task: ExecTask) -> Dict[str, object]:
    """Run one task (this is what worker processes execute)."""
    runner = _TASK_RUNNERS.get(task.kind)
    if runner is None:
        raise ExecError(f"unknown task kind {task.kind!r}")
    if task.tags:
        # adopt the originating request's id so spans recorded inside
        # the runner attach to its trace track
        with request_scope(task.tags[0]):
            return runner(task.payload)
    return runner(task.payload)


def _execute_task_traced(task: ExecTask,
                         ) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Pool-path variant when telemetry is on: run the task under a
    fresh in-worker tracer and ship the spans home as wire dicts.

    The worker may have inherited (via fork) a copy of the parent's
    enabled tracer, but spans recorded into that copy die with the
    worker — hence the explicit collect-and-return.
    """
    tracer = Tracer(enabled=True)
    prev = set_tracer(tracer)
    try:
        payload = _execute_task(task)
    finally:
        set_tracer(prev)
    return payload, tracer.to_wire()


# ---- task builders -------------------------------------------------------

def sim_task(config: CoreConfig, trace, *,
             warmup_fraction: float = 0.0,
             max_instructions: Optional[int] = None,
             tags: Tuple[str, ...] = ()) -> ExecTask:
    """A timing-model run as a pure task."""
    params = {"warmup_fraction": warmup_fraction,
              "max_instructions": max_instructions}
    key = task_fingerprint("sim", fingerprint_config(config),
                           fingerprint_trace(trace), params)
    return ExecTask(kind="sim", key=key,
                    payload=(config, trace, params), tags=tuple(tags))


def campaign_task(config, index: int, *,
                  tags: Tuple[str, ...] = ()) -> ExecTask:
    """One fault-injection campaign run as a pure task.

    Purity holds because :meth:`CampaignConfig.run_seed` derives the
    fault schedule from ``(campaign seed, index)`` alone.
    """
    key = task_fingerprint("campaign", config.fingerprint(), int(index))
    return ExecTask(kind="campaign", key=key,
                    payload=(config, int(index)), tags=tuple(tags))


# ---- the engine ----------------------------------------------------------

def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ExecError(
                    f"${ENV_WORKERS} must be an integer, got {raw!r}")
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ExecError(f"workers must be >= 1, got {workers}")
    return workers


class Engine:
    """Executes plans; owns the worker-count, cache policy, and (for
    ``workers > 1``) a persistent process pool.

    The pool is created lazily on the first parallel batch and reused
    by every subsequent :meth:`run` until :meth:`close`, so long-lived
    callers (the serving layer, suite drivers, campaign loops) pay
    pool startup once instead of per call.  ``Engine`` is a context
    manager::

        with Engine(workers=4) as engine:
            engine.run(plan_a)
            engine.run(plan_b)      # same pool, no respawn

    ``close()`` is idempotent, and an engine remains usable after
    closing — the next parallel batch simply creates a fresh pool.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache=None):
        self.workers = resolve_workers(workers)
        self.cache: Optional[ResultCache] = resolve_cache(cache)
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers)
            _LIVE_ENGINES.add(self)
        return self._pool

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down (idempotent).

        ``wait=False`` lets a draining server abandon a pool whose
        current batch is still running; the workers exit once their
        in-flight tasks complete.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def run(self, plan,
            sources: Optional[Dict[str, str]] = None,
            ) -> List[Dict[str, object]]:
        """Execute every task; returns JSON payloads in plan order.

        When ``sources`` (a dict) is supplied, it is filled with
        ``task.key -> "cache" | "executed"`` so callers can attribute
        each answer without re-deriving cache state.
        """
        tasks: List[ExecTask] = list(
            plan.tasks if isinstance(plan, ExecPlan) else plan)
        for task in tasks:
            if task.kind not in _TASK_RUNNERS:
                raise ExecError(f"unknown task kind {task.kind!r}")
        registry = get_registry()
        counter = registry.counter(
            "repro_exec_tasks_total",
            "tasks processed by the execution engine")
        from ..lint.sanitizer import get_sanitizer
        sanitizer = get_sanitizer()
        with _obs_span("exec.engine.run", "exec",
                       tasks=len(tasks), workers=self.workers) as sp:
            by_key: Dict[str, Dict[str, object]] = {}
            pending: List[Tuple[int, ExecTask]] = []
            pending_keys: Dict[str, int] = {}
            for i, task in enumerate(tasks):
                if task.key in by_key or task.key in pending_keys:
                    continue
                cached = (self.cache.get(task.key, kind=task.kind)
                          if self.cache is not None else None)
                if cached is not None:
                    by_key[task.key] = cached
                    counter.inc(kind=task.kind, source="cache")
                    if sanitizer is not None:
                        sanitizer.observe_result(task.kind, task.key,
                                                 cached, "cache")
                    if sources is not None:
                        sources[task.key] = "cache"
                else:
                    pending_keys[task.key] = i
                    pending.append((i, task))
            executed = self._execute(pending)
            for i, task in pending:
                payload = executed[i]
                by_key[task.key] = payload
                if self.cache is not None:
                    self.cache.put(task.key, payload)
                counter.inc(kind=task.kind, source="executed")
                if sanitizer is not None:
                    sanitizer.observe_result(task.kind, task.key,
                                             payload, "executed")
                if sources is not None:
                    sources[task.key] = "executed"
            results = [by_key[task.key] for task in tasks]
            sp.set(executed=len(pending),
                   cached=len(tasks) - len(pending))
            registry.histogram(
                "repro_exec_batch_seconds",
                "wall time of one engine batch").observe(
                    sp.duration_s, workers=self.workers)
        return results

    def _execute(self, pending: Sequence[Tuple[int, ExecTask]],
                 ) -> Dict[int, Dict[str, object]]:
        out: Dict[int, Dict[str, object]] = {}
        if not pending:
            return out
        if self.workers <= 1 or len(pending) == 1:
            for i, task in pending:
                out[i] = _execute_task(task)
            return out
        errors: Dict[int, BaseException] = {}
        tracer = get_tracer()
        traced = tracer.enabled
        run_one = _execute_task_traced if traced else _execute_task
        pool = self._ensure_pool()
        futures = {pool.submit(run_one, task): i
                   for i, task in pending}
        for fut in concurrent.futures.as_completed(futures):
            i = futures[fut]
            try:
                result = fut.result()
            except BaseException as exc:   # noqa: BLE001 - reraised
                errors[i] = exc
                continue
            if traced:
                out[i], wire = result
                tracer.merge_wire(wire, origin="worker")
            else:
                out[i] = result
        if errors:
            # deterministic propagation: the failure of the
            # earliest-indexed task wins, whatever finished first
            first = min(errors)
            raise errors[first]
        return out


# Engines whose persistent pool is still open.  The atexit sweep closes
# them before interpreter teardown: a ProcessPoolExecutor that is merely
# garbage-collected can race concurrent.futures' own exit hook and die
# with "Bad file descriptor" noise on its wakeup pipe.
_LIVE_ENGINES: "weakref.WeakSet[Engine]" = weakref.WeakSet()


def _close_live_engines() -> None:
    for engine in list(_LIVE_ENGINES):
        engine.close()


atexit.register(_close_live_engines)


# ---- convenience ---------------------------------------------------------

def run_sim_plan(engine: Engine, tasks: Sequence[ExecTask],
                 ) -> List[SimResult]:
    """Execute sim tasks and decode the payloads back to SimResults."""
    for task in tasks:
        if task.kind != "sim":
            raise ExecError(
                f"run_sim_plan got a {task.kind!r} task")
    return [sim_result_from_json(p)
            for p in engine.run(ExecPlan(list(tasks)))]
