"""Deterministic parallel execution engine with content-addressed cache.

See :mod:`repro.exec.cache` (fingerprints + on-disk store),
:mod:`repro.exec.executor` (the engine), :mod:`repro.exec.figs`
(the figure-scenario registry behind the golden-regression harness),
and :mod:`repro.exec.benchrun` (``repro bench``).
"""

from .cache import (ResultCache, code_salt, fingerprint_config,
                    fingerprint_trace, resolve_cache,
                    sim_result_from_json, sim_result_to_json,
                    task_fingerprint)
from .executor import (Engine, ExecPlan, ExecTask, campaign_task,
                       register_task_kind, resolve_workers,
                       run_sim_plan, sim_task)

__all__ = [
    "Engine", "ExecPlan", "ExecTask", "ResultCache",
    "campaign_task", "code_salt", "fingerprint_config",
    "fingerprint_trace", "register_task_kind", "resolve_cache",
    "resolve_workers", "run_sim_plan", "sim_result_from_json",
    "sim_result_to_json", "sim_task", "task_fingerprint",
]
