"""``repro perfwatch``: guard the performance trajectory.

``repro bench`` leaves ``BENCH_<scenario>.json`` artifacts (wall time
per figure scenario) and ``repro loadgen`` leaves ``BENCH_serve.json``
(service latency percentiles).  This tool diffs a fresh set of those
artifacts against a committed baseline and exits nonzero when any
scenario slowed beyond its tolerance — the CI tripwire that turns the
bench artifacts from a passive record into an enforced budget.

The comparison is ratio-based: scenario ``s`` regresses when
``current_wall / baseline_wall - 1 > tolerance``.  Tolerances are
per-scenario (falling back to the baseline's ``default_tolerance``)
because wall time on shared CI runners is noisy and the committed
baseline may come from different hardware — the committed numbers get
a generous order-of-magnitude tolerance, while CI's self-consistent
double-run (baseline and current measured on the same machine minutes
apart) uses a tight one.  Speedups are never failures; they are
reported so the baseline can be ratcheted down with
``--update-baseline``.

Availability (the ``availability.rate`` section ``repro loadgen``
writes into ``BENCH_serve.json``) is watched alongside p99, but with
an *absolute-drop* judgment instead of a ratio: a rate is already
normalized to [0, 1], so "current may be at most ``max_drop`` below
baseline" is the meaningful contract (a ratio on a number near 1.0
would make a catastrophic 0.5 -> 0.4 collapse look like -20%).

Fast-tier fidelity (the ``fidelity.max_rel_err`` section ``repro
bench --tier fast`` writes into ``BENCH_fastsim.json``) is likewise
judged against an *absolute* budget: the fast simulator's worst
relative scalar error across all compared scenarios may never exceed
``budget``, regardless of what the baseline run measured — accuracy
drift is a correctness bug, not a performance ratio.

Baseline schema::

    {"schema": 1,
     "default_tolerance": 0.5,
     "scenarios": {"fig05": {"wall_s": 1.23, "tolerance": 4.0}},
     "serve": {"p99_s": 0.8, "tolerance": 4.0},
     "availability": {"rate": 1.0, "max_drop": 0.25},
     "fastsim": {"max_rel_err": 0.0, "budget": 0.001},
     "cluster": {"rate": 1.0, "max_drop": 0.1}}

The ``cluster`` row watches ``BENCH_cluster.json`` (``repro loadgen
--cluster``) with the same absolute-drop judgment as
``serve:availability``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ExecError

BASELINE_SCHEMA = 1
DEFAULT_TOLERANCE = 0.5
#: how far availability.rate may fall below the baseline (absolute)
DEFAULT_AVAILABILITY_DROP = 0.1
#: absolute ceiling on the fast tier's worst relative scalar error
DEFAULT_FIDELITY_BUDGET = 1e-3
# artifacts in the bench dir that are not per-scenario timings
_SPECIAL = ("BENCH_sweep.json", "BENCH_serve.json",
            "BENCH_chaos.json", "BENCH_fastsim.json",
            "BENCH_cluster.json")


def collect_current(bench_dir) -> Dict[str, object]:
    """Scan a directory of BENCH_*.json artifacts into
    ``{"scenarios": {name: wall_s}, "serve": p99_s | None}``."""
    root = Path(bench_dir)
    if not root.is_dir():
        raise ExecError(f"bench directory not found: {root}")
    scenarios: Dict[str, float] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name in _SPECIAL:
            continue
        doc = _load(path)
        name = doc.get("scenario", path.stem[len("BENCH_"):])
        wall = doc.get("wall_s")
        if not isinstance(wall, (int, float)):
            raise ExecError(f"{path} lacks a numeric wall_s")
        scenarios[str(name)] = float(wall)
    serve: Optional[float] = None
    availability: Optional[float] = None
    serve_path = root / "BENCH_serve.json"
    if serve_path.exists():
        doc = _load(serve_path)
        latency = doc.get("latency_s", {})
        p99 = latency.get("p99") if isinstance(latency, dict) else None
        if not isinstance(p99, (int, float)):
            raise ExecError(f"{serve_path} lacks latency_s.p99")
        serve = float(p99)
        avail = doc.get("availability")
        if isinstance(avail, dict) \
                and isinstance(avail.get("rate"), (int, float)):
            availability = float(avail["rate"])
    fastsim: Optional[float] = None
    fastsim_path = root / "BENCH_fastsim.json"
    if fastsim_path.exists():
        doc = _load(fastsim_path)
        fid = doc.get("fidelity")
        err = fid.get("max_rel_err") if isinstance(fid, dict) else None
        if not isinstance(err, (int, float)):
            raise ExecError(
                f"{fastsim_path} lacks fidelity.max_rel_err")
        fastsim = float(err)
    cluster: Optional[float] = None
    cluster_path = root / "BENCH_cluster.json"
    if cluster_path.exists():
        doc = _load(cluster_path)
        avail = doc.get("availability")
        rate = (avail.get("rate") if isinstance(avail, dict)
                else None)
        if not isinstance(rate, (int, float)):
            raise ExecError(
                f"{cluster_path} lacks availability.rate")
        cluster = float(rate)
    if not scenarios and serve is None and fastsim is None \
            and cluster is None:
        raise ExecError(f"no BENCH_*.json artifacts in {root}")
    return {"scenarios": scenarios, "serve": serve,
            "availability": availability, "fastsim": fastsim,
            "cluster": cluster}


def _load(path: Path) -> Dict[str, object]:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExecError(f"cannot read {path}: {exc}") from exc
    if not isinstance(doc, dict):
        raise ExecError(f"{path} is not a JSON object")
    return doc


def load_baseline(path) -> Dict[str, object]:
    doc = _load(Path(path))
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ExecError(
            f"{path}: unsupported baseline schema "
            f"{doc.get('schema')!r} (expected {BASELINE_SCHEMA})")
    if not isinstance(doc.get("scenarios"), dict):
        raise ExecError(f"{path}: baseline lacks a scenarios table")
    return doc


def build_baseline(current: Dict[str, object], *,
                   tolerance: float = DEFAULT_TOLERANCE,
                   ) -> Dict[str, object]:
    """A baseline document pinning the given current measurements."""
    doc: Dict[str, object] = {
        "schema": BASELINE_SCHEMA,
        "default_tolerance": tolerance,
        "scenarios": {
            name: {"wall_s": wall}
            for name, wall in sorted(current["scenarios"].items())},
    }
    if current.get("serve") is not None:
        doc["serve"] = {"p99_s": current["serve"]}
    if current.get("availability") is not None:
        doc["availability"] = {"rate": current["availability"],
                               "max_drop": DEFAULT_AVAILABILITY_DROP}
    if current.get("fastsim") is not None:
        doc["fastsim"] = {"max_rel_err": current["fastsim"],
                          "budget": DEFAULT_FIDELITY_BUDGET}
    if current.get("cluster") is not None:
        doc["cluster"] = {"rate": current["cluster"],
                          "max_drop": DEFAULT_AVAILABILITY_DROP}
    return doc


def _judge(name: str, base_s: float, cur_s: float,
           tolerance: float) -> Dict[str, object]:
    if base_s <= 0:
        raise ExecError(f"baseline for {name} must be positive, "
                        f"got {base_s}")
    ratio = cur_s / base_s
    return {"name": name, "baseline_s": base_s, "current_s": cur_s,
            "ratio": ratio, "tolerance": tolerance,
            "status": ("regression" if ratio - 1.0 > tolerance
                       else "ok")}


def compare(baseline: Dict[str, object], current: Dict[str, object],
            *, tolerance: Optional[float] = None) -> Dict[str, object]:
    """Judge current measurements against a baseline.

    ``tolerance`` overrides every per-scenario/default tolerance when
    given (CI's self-consistent mode).  Scenarios present on only one
    side are reported (``missing`` / ``new``) but never fail the run —
    a trimmed bench subset must not trip the watch.
    """
    default_tol = tolerance if tolerance is not None else float(
        baseline.get("default_tolerance", DEFAULT_TOLERANCE))
    rows: List[Dict[str, object]] = []
    base_scenarios = baseline["scenarios"]
    cur_scenarios = current["scenarios"]
    for name in sorted(set(base_scenarios) | set(cur_scenarios)):
        if name not in cur_scenarios:
            rows.append({"name": name, "status": "missing"})
            continue
        if name not in base_scenarios:
            rows.append({"name": name, "status": "new",
                         "current_s": cur_scenarios[name]})
            continue
        entry = base_scenarios[name]
        tol = default_tol if tolerance is not None else float(
            entry.get("tolerance", default_tol))
        rows.append(_judge(name, float(entry["wall_s"]),
                           cur_scenarios[name], tol))
    base_serve = baseline.get("serve")
    if base_serve is not None and current.get("serve") is not None:
        tol = default_tol if tolerance is not None else float(
            base_serve.get("tolerance", default_tol))
        rows.append(_judge("serve:p99", float(base_serve["p99_s"]),
                           float(current["serve"]), tol))
    base_avail = baseline.get("availability")
    if base_avail is not None \
            and current.get("availability") is not None:
        # absolute drop, not a ratio: rates live in [0, 1] where a
        # ratio would understate a collapse near the top of the range
        base_rate = float(base_avail["rate"])
        cur_rate = float(current["availability"])
        max_drop = float(base_avail.get("max_drop",
                                        DEFAULT_AVAILABILITY_DROP))
        drop = base_rate - cur_rate
        rows.append({"name": "serve:availability",
                     "baseline_rate": base_rate,
                     "current_rate": cur_rate,
                     "drop": drop, "max_drop": max_drop,
                     "status": ("regression" if drop > max_drop
                                else "ok")})
    base_cluster = baseline.get("cluster")
    if base_cluster is not None \
            and current.get("cluster") is not None:
        # same absolute-drop judgment as serve:availability — the
        # cluster's answered-usefully rate under burst + shard-kill
        base_rate = float(base_cluster["rate"])
        cur_rate = float(current["cluster"])
        max_drop = float(base_cluster.get(
            "max_drop", DEFAULT_AVAILABILITY_DROP))
        drop = base_rate - cur_rate
        rows.append({"name": "cluster:availability",
                     "baseline_rate": base_rate,
                     "current_rate": cur_rate,
                     "drop": drop, "max_drop": max_drop,
                     "status": ("regression" if drop > max_drop
                                else "ok")})
    base_fast = baseline.get("fastsim")
    if base_fast is not None and current.get("fastsim") is not None:
        # absolute budget: fast-tier accuracy is a contract, not a
        # trend — any error above the budget fails even if the
        # baseline run happened to measure worse
        budget = float(base_fast.get("budget",
                                     DEFAULT_FIDELITY_BUDGET))
        cur_err = float(current["fastsim"])
        rows.append({"name": "fastsim:fidelity",
                     "baseline_max_rel_err":
                     float(base_fast["max_rel_err"]),
                     "current_max_rel_err": cur_err,
                     "budget": budget,
                     "status": ("regression" if cur_err > budget
                                else "ok")})
    regressions = [r for r in rows if r["status"] == "regression"]
    return {"rows": rows, "regressions": len(regressions),
            "ok": not regressions}


def run_perfwatch(bench_dir, baseline_path, *,
                  tolerance: Optional[float] = None,
                  update_baseline: bool = False,
                  out=None) -> int:
    """The CLI body; returns the exit code (0 ok, 1 regression)."""
    out = out if out is not None else sys.stdout
    current = collect_current(bench_dir)
    baseline_path = Path(baseline_path)
    if update_baseline:
        doc = build_baseline(
            current,
            tolerance=tolerance if tolerance is not None
            else DEFAULT_TOLERANCE)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"baseline written: {baseline_path} "
              f"({len(doc['scenarios'])} scenarios"
              f"{', serve' if 'serve' in doc else ''})", file=out)
        return 0
    report = compare(load_baseline(baseline_path), current,
                     tolerance=tolerance)
    for row in report["rows"]:
        status = row["status"]
        if status in ("missing", "new"):
            detail = (f"{row['current_s']:8.3f}s"
                      if status == "new" else "        -")
            print(f"{row['name']:16s} {detail}  [{status}]", file=out)
            continue
        if "budget" in row:
            print(f"{row['name']:16s} "
                  f"{row['baseline_max_rel_err']:8.2e} -> "
                  f"{row['current_max_rel_err']:8.2e}   "
                  f"(budget {row['budget']:.1e})  [{status}]",
                  file=out)
            continue
        if "baseline_rate" in row:
            print(f"{row['name']:16s} {row['baseline_rate']:8.3f}  -> "
                  f"{row['current_rate']:8.3f}   drop {row['drop']:+.3f} "
                  f"(max {row['max_drop']:.3f})  [{status}]", file=out)
            continue
        print(f"{row['name']:16s} {row['baseline_s']:8.3f}s -> "
              f"{row['current_s']:8.3f}s  x{row['ratio']:.2f} "
              f"(tol +{row['tolerance']:.0%})  [{status}]", file=out)
    if not report["ok"]:
        print(f"FAIL: {report['regressions']} scenario(s) regressed "
              f"beyond tolerance", file=out)
        return 1
    print("perfwatch: ok", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro perfwatch",
        description="diff BENCH_*.json artifacts against a committed "
                    "performance baseline; exit 1 on regression")
    parser.add_argument("--bench-dir", default=".", metavar="DIR",
                        help="directory holding BENCH_*.json "
                             "(default .)")
    parser.add_argument("--baseline",
                        default="benchmarks/perf-baseline.json",
                        metavar="FILE",
                        help="baseline file (default "
                             "benchmarks/perf-baseline.json)")
    parser.add_argument("--tolerance", type=float, default=None,
                        metavar="FRAC",
                        help="override every tolerance with this "
                             "fractional slowdown budget (e.g. 0.25)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "artifacts instead of comparing")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return run_perfwatch(args.bench_dir, args.baseline,
                             tolerance=args.tolerance,
                             update_baseline=args.update_baseline)
    except ExecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
