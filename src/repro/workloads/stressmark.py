"""Maximum-power stressmarks (Section III-B: "well-known workloads of
interest, including maximum power stressmarks").

A stressmark saturates every issue port simultaneously with independent
work so that unit utilization — and therefore switching and clock
activity — is maximal.  Used for the power-envelope end of the WOF
analysis and for SERMiner's high-utilization corner.
"""

from __future__ import annotations

from typing import List

from ..core.isa import GPR_BASE, Instruction, InstrClass, VSR_BASE
from ..errors import TraceError
from .trace import Trace


def max_power_stressmark(iterations: int, *, include_mma: bool = False,
                         name: str = "maxpower") -> Trace:
    """Issue-port-saturating loop: FX + VSX + loads + stores (+ MMA).

    Every chain is independent (DD > port latency) so all ports stay
    busy every cycle.
    """
    if iterations <= 0:
        raise TraceError("iterations must be positive")
    instrs: List[Instruction] = []
    fx_regs = [GPR_BASE + 8 + i for i in range(8)]
    vsx_regs = [VSR_BASE + i for i in range(16)]
    for i in range(iterations):
        pc = 0x7000
        for j in range(4):
            reg = fx_regs[(i * 4 + j) % len(fx_regs)]
            instrs.append(Instruction(
                iclass=InstrClass.FX, dests=(reg,), srcs=(reg,),
                pc=pc + 4 * j))
        for j in range(4):
            reg = vsx_regs[(i * 4 + j) % len(vsx_regs)]
            instrs.append(Instruction(
                iclass=InstrClass.VSX, dests=(reg,), srcs=(reg,),
                pc=pc + 0x10 + 4 * j, flops=4))
        instrs.append(Instruction(
            iclass=InstrClass.LOAD, dests=(GPR_BASE + 20,),
            srcs=(GPR_BASE + 3,),
            address=0x2000000 + (i % 256) * 64, size=8,
            pc=pc + 0x20))
        instrs.append(Instruction(
            iclass=InstrClass.STORE, srcs=(GPR_BASE + 20,),
            address=0x2100000 + (i % 256) * 64, size=8,
            pc=pc + 0x24))
        if include_mma:
            from ..core.isa import ACC_BASE
            acc = ACC_BASE + (i % 8)
            instrs.append(Instruction(
                iclass=InstrClass.MMA, dests=(acc,),
                srcs=(acc, vsx_regs[0], vsx_regs[1]),
                pc=pc + 0x28, flops=32))
        instrs.append(Instruction(
            iclass=InstrClass.BRANCH, pc=pc + 0x30,
            taken=i != iterations - 1, target=pc))
    return Trace(name=name, instructions=instrs, suite="stressmark",
                 metadata={"include_mma": include_mma})
