"""End-to-end AI inference workload models (Section II-C-2, Fig. 6).

Simulating 100-image ResNet-50 batches instruction by instruction is
infeasible (hundreds of GFLOPs), and unnecessary: the Fig. 6 quantities
(GEMM instruction ratio, total instructions, CPI, cycles, speedup)
depend only on

* the models' layer shapes (which GEMMs run, with what m/n/k),
* the code-generation target for those GEMMs (VSU vs MMA instruction
  mappings, from :mod:`repro.workloads.gemm`),
* the *measured* GEMM throughput of each core (obtained by simulating
  the micro-kernels on the timing model), and
* the non-GEMM phases (data loading, im2col, activation functions,
  framework overhead), modeled as scalar work with per-generation CPI.

Layer tables below follow the published architectures: ResNet-50 with
its 16 bottleneck blocks over 224x224 inputs (~4.1 GFLOPs/image), and
BERT-Large (24 layers, hidden 1024, 16 heads) at sequence length 384
(SQuAD v1.1).  Convolutions map to GEMMs via im2col, as OpenBLAS-backed
CPU inference does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Tuple

from ..core.config import CoreConfig, power9_config, power10_config
from ..core.pipeline import simulate
from ..core.socket import precision_speedup
from ..errors import ModelError
from .gemm import (MmaKernelShape, VsuKernelShape, dgemm_mma_trace,
                   dgemm_vsu_trace, gemm_instruction_estimate)


@dataclass(frozen=True)
class GemmShape:
    m: int
    n: int
    k: int

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k


def _bottleneck(hw: int, c_in: int, c_mid: int, c_out: int,
                stride: int = 1) -> List[GemmShape]:
    """The three im2col GEMMs of one ResNet bottleneck block (plus the
    projection shortcut when the shape changes)."""
    hw_out = hw // stride
    gemms = [
        GemmShape(hw * hw, c_mid, c_in),                  # 1x1 reduce
        GemmShape(hw_out * hw_out, c_mid, 9 * c_mid),     # 3x3
        GemmShape(hw_out * hw_out, c_out, c_mid),         # 1x1 expand
    ]
    if stride != 1 or c_in != c_out:
        gemms.append(GemmShape(hw_out * hw_out, c_out, c_in))
    return gemms


def resnet50_gemms() -> List[GemmShape]:
    """All GEMMs of one ResNet-50 inference (batch 1, 224x224)."""
    gemms: List[GemmShape] = [GemmShape(112 * 112, 64, 147)]   # conv1
    stages = [
        # (hw_in, c_in, c_mid, c_out, blocks, first_stride)
        (56, 64, 64, 256, 3, 1),
        (56, 256, 128, 512, 4, 2),
        (28, 512, 256, 1024, 6, 2),
        (14, 1024, 512, 2048, 3, 2),
    ]
    for hw, c_in, c_mid, c_out, blocks, stride in stages:
        gemms.extend(_bottleneck(hw, c_in, c_mid, c_out, stride))
        hw_out = hw // stride
        for _ in range(blocks - 1):
            gemms.extend(_bottleneck(hw_out, c_out, c_mid, c_out, 1))
    gemms.append(GemmShape(1, 1000, 2048))                     # fc
    return gemms


def bert_large_gemms(sequence_length: int = 384) -> List[GemmShape]:
    """All GEMMs of one BERT-Large inference (batch 1)."""
    hidden, heads, ffn, layers = 1024, 16, 4096, 24
    head_dim = hidden // heads
    s = sequence_length
    per_layer: List[GemmShape] = []
    per_layer += [GemmShape(s, hidden, hidden)] * 3     # Q, K, V
    per_layer += [GemmShape(s, s, head_dim)] * heads    # scores
    per_layer += [GemmShape(s, head_dim, s)] * heads    # context
    per_layer += [GemmShape(s, hidden, hidden)]         # attn out
    per_layer += [GemmShape(s, ffn, hidden)]            # FFN up
    per_layer += [GemmShape(s, hidden, ffn)]            # FFN down
    return per_layer * layers


@dataclass
class AIModelProfile:
    """One end-to-end inference workload."""

    name: str
    gemms: List[GemmShape]
    batch: int
    # non-GEMM work per sample: data loading, im2col, activations,
    # framework overhead.  calibrated: instruction counts set so the
    # GEMM-instruction share and the data-loading-bound behaviour match
    # the paper's Fig. 6 discussion (BERT's larger model means a bigger
    # data-movement share that core upgrades help less).
    non_gemm_instructions_per_sample: int
    non_gemm_cpi: Dict[str, float] = field(default_factory=dict)

    @property
    def gemm_flops_per_sample(self) -> int:
        return sum(g.flops for g in self.gemms)


def resnet50_profile(batch: int = 100) -> AIModelProfile:
    return AIModelProfile(
        name="ResNet-50",
        gemms=resnet50_gemms(),
        batch=batch,
        non_gemm_instructions_per_sample=650_000_000,
        # calibrated: per-generation CPI of the non-GEMM phases; the
        # image pipeline (decode, im2col, activations) is exactly the
        # vectorizable data-preparation code the paper says gains
        # "close to twofold" from the doubled VSX engines
        non_gemm_cpi={"power9": 1.10, "power10": 0.42})


def bert_large_profile(batch: int = 8,
                       sequence_length: int = 384) -> AIModelProfile:
    return AIModelProfile(
        name="BERT-Large",
        gemms=bert_large_gemms(sequence_length),
        batch=batch,
        non_gemm_instructions_per_sample=7_900_000_000,
        # calibrated: BERT's >10x parameter volume makes its data
        # loading more memory bound; POWER10 helps it less
        non_gemm_cpi={"power9": 1.30, "power10": 0.59})


@lru_cache(maxsize=16)
def _kernel_rate(generation: str, kernel: str, dtype: str) -> float:
    """Achieved FLOPs/cycle of a GEMM micro-kernel, *measured* on the
    timing model (not assumed)."""
    config = power9_config() if generation == "power9" \
        else power10_config()
    if kernel == "vsu":
        # fp32 SGEMM micro-kernels block wider (8x8) than fp64 so the
        # accumulation chain never limits the 4-pipe POWER10 VSU
        shape = VsuKernelShape(dtype=dtype) if dtype == "fp64" \
            else VsuKernelShape(mr=8, nr=8, dtype=dtype)
        trace = dgemm_vsu_trace(
            1200, shape,
            max_load_bytes=config.lsu.max_access_bytes)
    elif kernel == "mma":
        if not config.issue.mma_present:
            raise ModelError("MMA kernel requires an MMA-capable core")
        trace = dgemm_mma_trace(
            1200, MmaKernelShape(dtype=dtype),
            max_load_bytes=config.lsu.max_access_bytes)
    else:
        raise ModelError(f"unknown kernel {kernel!r}")
    result = simulate(config, trace, warmup_fraction=0.25)
    return result.flops_per_cycle


@dataclass
class InferenceProjection:
    """Fig. 6 quantities for one (model, core, kernel) combination."""

    model: str
    config_name: str
    kernel: str                  # "vsu" | "mma"
    dtype: str
    gemm_instructions: int
    non_gemm_instructions: int
    gemm_cycles: int
    non_gemm_cycles: int

    @property
    def total_instructions(self) -> int:
        return self.gemm_instructions + self.non_gemm_instructions

    @property
    def total_cycles(self) -> int:
        return self.gemm_cycles + self.non_gemm_cycles

    @property
    def gemm_instruction_ratio(self) -> float:
        return self.gemm_instructions / self.total_instructions

    @property
    def cpi(self) -> float:
        return self.total_cycles / self.total_instructions


def project_inference(profile: AIModelProfile, config: CoreConfig, *,
                      use_mma: bool = False,
                      dtype: str = "fp32") -> InferenceProjection:
    """Project one end-to-end inference run onto one core."""
    if use_mma and not config.issue.mma_present:
        raise ModelError(f"{config.name} has no MMA")
    kernel = "mma" if use_mma else "vsu"
    rate = _kernel_rate(config.generation, kernel,
                        "fp32" if dtype == "int8" else dtype)
    if dtype == "int8":
        if not use_mma:
            raise ModelError("int8 path is modeled on the MMA only")
        rate *= precision_speedup("int8") / precision_speedup("fp32")

    gemm_instrs = 0
    gemm_flops = 0
    for g in profile.gemms:
        gemm_instrs += gemm_instruction_estimate(
            g.m, g.n, g.k, dtype="fp32", kernel=kernel)
        gemm_flops += g.flops
    gemm_instrs *= profile.batch
    gemm_flops *= profile.batch
    gemm_cycles = int(gemm_flops / rate)

    non_gemm_instrs = (profile.non_gemm_instructions_per_sample
                       * profile.batch)
    cpi = profile.non_gemm_cpi[config.generation]
    non_gemm_cycles = int(non_gemm_instrs * cpi)
    return InferenceProjection(
        model=profile.name,
        config_name=config.name,
        kernel=kernel,
        dtype=dtype,
        gemm_instructions=gemm_instrs,
        non_gemm_instructions=non_gemm_instrs,
        gemm_cycles=gemm_cycles,
        non_gemm_cycles=non_gemm_cycles)


def figure6_rows(profile: AIModelProfile) -> Dict[str, Dict[str, float]]:
    """The Fig. 6 bars: POWER9 baseline, POWER10 w/o MMA, w/ MMA —
    each as (GEMM inst ratio, total instructions, CPI, cycles, speedup)
    relative to the POWER9 baseline."""
    p9 = project_inference(profile, power9_config(), use_mma=False)
    p10v = project_inference(profile, power10_config(), use_mma=False)
    p10m = project_inference(profile, power10_config(), use_mma=True)
    rows: Dict[str, Dict[str, float]] = {}
    for label, proj in (("POWER9", p9), ("POWER10 w/o MMA", p10v),
                        ("POWER10 w/ MMA", p10m)):
        rows[label] = {
            "gemm_inst_ratio": proj.gemm_instruction_ratio
            / p9.gemm_instruction_ratio,
            "total_instructions": proj.total_instructions
            / p9.total_instructions,
            "cpi": proj.cpi / p9.cpi,
            "cycles": proj.total_cycles / p9.total_cycles,
            "speedup": p9.total_cycles / proj.total_cycles,
        }
    return rows


def socket_ai_speedup(profile: AIModelProfile, *, dtype: str = "fp32",
                      core_count_ratio: float = 2.5,
                      system_factor: float = 1.1) -> float:
    """Socket-level AI speedup vs POWER9 (Section II-C-2: 2.5x cores and
    ~1.1x bandwidth/software/system on top of the per-core MMA gain;
    up to 10x FP32 and 21x INT8).

    The INT8 path applies the end-to-end precision factor (rank-4 int8
    ``ger`` plus the quantized software stack) on top of the FP32
    projection, matching how the paper reports "an additional increase
    ... leading to as much as 21x".
    """
    p9 = project_inference(profile, power9_config(), use_mma=False)
    p10 = project_inference(profile, power10_config(), use_mma=True)
    core_speedup = p9.total_cycles / p10.total_cycles
    socket = core_speedup * core_count_ratio * system_factor
    if dtype != "fp32":
        socket *= precision_speedup(dtype)
    return socket
