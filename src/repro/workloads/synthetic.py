"""Synthetic workload generation.

Two roles, mirroring the paper's workload machinery:

* :class:`WorkloadSpec` + :func:`generate` — a parametric trace
  generator (instruction mix, code/data footprints, branch behaviour,
  dependency distances).  The SPECint benchmark profiles in
  :mod:`repro.workloads.spec` are instances of this.
* :func:`microbenchmark` — Microprobe-style directed testcases
  (Section III-E evaluates derating on ``st/smt2/smt4 x dd0/dd1 x
  zero/random`` suites): fixed dependency distance (DD), chosen data
  values, single instruction class emphasis.

Generation is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.isa import (GPR_BASE, Instruction, InstrClass, NUM_GPRS,
                        VSR_BASE)
from ..errors import TraceError
from .trace import Trace, merge_smt

# Default instruction mix loosely matching SPECint averages.
DEFAULT_MIX: Dict[InstrClass, float] = {
    InstrClass.FX: 0.42,
    InstrClass.FX_MULDIV: 0.02,
    InstrClass.LOAD: 0.25,
    InstrClass.STORE: 0.12,
    InstrClass.BRANCH: 0.15,
    InstrClass.BRANCH_IND: 0.01,
    InstrClass.CR: 0.02,
    InstrClass.FP: 0.01,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Parametric description of a synthetic workload."""

    name: str
    mix: Dict[InstrClass, float] = field(
        default_factory=lambda: dict(DEFAULT_MIX))
    instructions: int = 20000
    code_bytes: int = 16 * 1024          # static code footprint
    code_hot_bytes: int = 12 * 1024      # hot code region (jump locality)
    data_bytes: int = 256 * 1024         # data working set
    stream_fraction: float = 0.35        # sequential-walk accesses
    hot_fraction: float = 0.45           # accesses to a small hot set
    hot_bytes: int = 8 * 1024
    warm_fraction: float = 0.0           # mid-size working-set accesses
    # The warm tier is a strided cyclic walk whose cache footprint
    # (one line per stride) sits between the two generations' L2
    # capacities — the access pattern that makes L2 size matter.
    warm_bytes: int = 3 * 1024 * 1024
    branch_sites: int = 120
    branch_bias: float = 0.85            # mean per-site taken probability
    loop_branch_fraction: float = 0.35   # sites that behave like loops
    mean_loop_trip: int = 12
    dep_distance_mean: float = 4.0       # geometric dependency distance
    # fraction of instructions that start a fresh dependence chain
    # (immediates, loop-invariant bases) — keeps chains realistically short
    chain_break_fraction: float = 0.30
    # fraction of loads whose *address* depends on a recent load result
    # (pointer chasing; high for mcf/omnetpp)
    pointer_chase_fraction: float = 0.05
    # number of independent dependence strands (unrolled iterations /
    # independent expressions in flight); bounds achievable ILP and MLP
    ilp_strands: int = 8
    seed: int = 1234
    suite: str = "synthetic"
    weight: float = 1.0

    def __post_init__(self) -> None:
        total = sum(self.mix.values())
        if not 0.99 <= total <= 1.01:
            raise TraceError(
                f"{self.name}: instruction mix sums to {total:.3f}")
        if self.instructions <= 0:
            raise TraceError("need a positive instruction count")


class _AddressEngine:
    """Produces data addresses with stream/hot/random locality classes."""

    def __init__(self, spec: WorkloadSpec, rng: np.random.Generator):
        self._spec = spec
        self._rng = rng
        self._stream_pos = 0
        base = 0x10000000
        self._base = base
        self._hot_base = base + spec.data_bytes
        self._warm_base = self._hot_base + spec.hot_bytes + 4096
        self._warm_pos = 0
        self._warm_stride = 192     # 3 lines: defeats next-line prefetch

    def next(self, size: int) -> int:
        r = self._rng.random()
        spec = self._spec
        if r < spec.stream_fraction:
            self._stream_pos = (self._stream_pos + size) % spec.data_bytes
            return self._base + self._stream_pos
        r -= spec.stream_fraction
        if r < spec.hot_fraction:
            off = int(self._rng.integers(0, max(1, spec.hot_bytes // 8)))
            return self._hot_base + off * 8
        r -= spec.hot_fraction
        if r < spec.warm_fraction:
            self._warm_pos = (self._warm_pos
                              + self._warm_stride) % spec.warm_bytes
            return self._warm_base + self._warm_pos
        off = int(self._rng.integers(0, max(1, spec.data_bytes // 8)))
        return self._base + off * 8


class _BranchEngine:
    """Static branch sites visited in program order.

    Sites are walked cyclically (like the control flow of a real
    program's hot loop nest) with occasional random transfers.  Loop
    sites follow a taken-(trip-1)-times-then-fall-through pattern that
    long-history predictors can learn; plain sites are biased coin
    flips.  Site predictability is bimodal: most branches in compiled
    code are highly biased, a minority are data-dependent.
    """

    def __init__(self, spec: WorkloadSpec, rng: np.random.Generator):
        self._rng = rng
        count = max(1, spec.branch_sites)
        # branch sites live inside the hot code region (offset +16 within
        # their 32-byte line, interleaved with straight-line code)
        hot_lines = max(count, spec.code_hot_bytes // 32)
        self._pcs = (0x4000 + 32 * rng.permutation(hot_lines)[:count] + 16)
        strongly_biased = rng.random(count) < 0.85
        self._bias = np.where(
            strongly_biased,
            np.clip(rng.normal(0.985, 0.010, count), 0.95, 0.999),
            np.clip(rng.normal(spec.branch_bias, 0.10, count), 0.55, 0.95))
        self._is_loop = rng.random(count) < spec.loop_branch_fraction
        trips = rng.geometric(1.0 / max(2, spec.mean_loop_trip), count)
        self._trip = np.maximum(3, trips)
        self._counter = np.zeros(count, dtype=np.int64)
        self._cursor = 0
        self._jump_prob = 0.05
        self._streak_left = 0       # remaining iterations at a loop site

    def next(self) -> tuple:
        """Returns (pc, taken) for the next dynamic branch."""
        if self._streak_left == 0:
            if self._rng.random() < self._jump_prob:
                self._cursor = int(self._rng.integers(0, len(self._pcs)))
            else:
                self._cursor = (self._cursor + 1) % len(self._pcs)
            if self._is_loop[self._cursor]:
                self._streak_left = int(self._trip[self._cursor])
        site = self._cursor
        pc = int(self._pcs[site])
        if self._is_loop[site]:
            # loop backedge: taken trip-1 times, then falls through
            self._streak_left -= 1
            taken = self._streak_left > 0
        else:
            taken = bool(self._rng.random() < self._bias[site])
        return pc, taken


def generate(spec: WorkloadSpec) -> Trace:
    """Generate a synthetic trace from a workload specification."""
    rng = np.random.default_rng(spec.seed)
    addr = _AddressEngine(spec, rng)
    branches = _BranchEngine(spec, rng)

    classes = list(spec.mix.keys())
    probs = np.array([spec.mix[c] for c in classes], dtype=float)
    probs /= probs.sum()
    draws = rng.choice(len(classes), size=spec.instructions, p=probs)

    code_lines = max(1, spec.code_bytes // 32)
    hot_lines = max(1, min(code_lines, spec.code_hot_bytes // 32))
    instrs: List[Instruction] = []
    pc_line = 0
    # long-lived base registers (stack/frame/loop-invariant pointers):
    # roots of most dependence chains in compiled code
    base_regs = [GPR_BASE + 1, GPR_BASE + 2, GPR_BASE + 13, GPR_BASE + 31]
    # independent dependence strands; each tracks its newest value
    strands = max(1, spec.ilp_strands)
    strand_last: List[int] = [base_regs[s % len(base_regs)]
                              for s in range(strands)]
    # Indirect sites: most are dominated by one target (monomorphic call
    # sites) and mispredict rarely; a minority alternate between targets
    # in a pattern only a history-based predictor (POWER10) can follow.
    indirect_sites = []
    for s in range(max(2, spec.branch_sites // 20)):
        targets = [0x8000 + 4096 * s + 256 * t
                   for t in range(2 + int(rng.integers(0, 3)))]
        alternating = bool(rng.random() < 0.35)
        site_pc = 0x4000 + 32 * int(rng.integers(0, hot_lines)) + 20
        indirect_sites.append((site_pc, targets, alternating))
    indirect_counters = [0] * len(indirect_sites)

    for i in range(spec.instructions):
        iclass = classes[draws[i]]
        # walk the code footprint; branches jump within it
        pc_line = (pc_line + (1 if i % 4 == 0 else 0)) % code_lines
        pc = 0x4000 + pc_line * 32 + (i % 4) * 4

        strand = int(rng.integers(0, strands))
        # distinct architectural register per strand slot, cycled so
        # renaming pressure is realistic
        dest = GPR_BASE + 3 + (strand * 3 + (i // strands) % 3) % (
            NUM_GPRS - 3)
        srcs: List[int] = []
        if rng.random() < spec.chain_break_fraction:
            srcs.append(base_regs[int(rng.integers(0, len(base_regs)))])
        else:
            srcs.append(strand_last[strand])
            if rng.random() < 0.25:      # occasional cross-strand use
                other = int(rng.integers(0, strands))
                srcs.append(strand_last[other])

        if iclass is InstrClass.BRANCH:
            bpc, taken = branches.next()
            instr = Instruction(iclass=iclass, srcs=tuple(srcs[:1]),
                                taken=taken, pc=bpc,
                                target=bpc + (64 if taken else 4))
            if taken:
                # control transfers land in the hot code region most of
                # the time; occasional cold transfers touch the rest
                if rng.random() < 0.88:
                    pc_line = int(rng.integers(0, hot_lines))
                else:
                    pc_line = int(rng.integers(0, code_lines))
        elif iclass is InstrClass.BRANCH_IND:
            site = int(rng.integers(0, len(indirect_sites)))
            site_pc, targets, alternating = indirect_sites[site]
            indirect_counters[site] += 1
            if alternating:
                tgt = targets[indirect_counters[site] % len(targets)]
            elif rng.random() < 0.9:
                tgt = targets[0]
            else:
                tgt = targets[int(rng.integers(1, len(targets)))]
            instr = Instruction(iclass=iclass, srcs=tuple(srcs[:1]),
                                taken=True, pc=site_pc, target=tgt)
        elif iclass in (InstrClass.LOAD, InstrClass.VSX_LOAD):
            size = 16 if iclass is InstrClass.VSX_LOAD else 8
            if rng.random() < spec.pointer_chase_fraction:
                addr_src = strand_last[strand]  # address from a result
            else:
                addr_src = base_regs[int(rng.integers(0, len(base_regs)))]
            instr = Instruction(iclass=iclass, dests=(dest,),
                                srcs=(addr_src,),
                                address=addr.next(size), size=size, pc=pc)
        elif iclass in (InstrClass.STORE, InstrClass.VSX_STORE):
            size = 16 if iclass is InstrClass.VSX_STORE else 8
            instr = Instruction(iclass=iclass, srcs=tuple(srcs),
                                address=addr.next(size), size=size, pc=pc)
        elif iclass is InstrClass.VSX:
            vdest = VSR_BASE + int(rng.integers(0, 32))
            instr = Instruction(iclass=iclass, dests=(vdest,),
                                srcs=tuple(srcs), pc=pc, flops=4)
        elif iclass is InstrClass.FP:
            instr = Instruction(iclass=iclass, dests=(dest,),
                                srcs=tuple(srcs), pc=pc, flops=2)
        else:
            instr = Instruction(iclass=iclass, dests=(dest,),
                                srcs=tuple(srcs), pc=pc)
        if instr.dests:
            strand_last[strand] = instr.dests[0]
        instrs.append(instr)

    return Trace(name=spec.name, instructions=instrs, suite=spec.suite,
                 weight=spec.weight,
                 metadata={"spec": spec.name, "seed": spec.seed})


# ---------------------------------------------------------------------------
# Microprobe-style directed testcases (derating suites of Fig. 13).
# ---------------------------------------------------------------------------

def microbenchmark(name: str, *, dependency_distance: int = 0,
                   data_init: str = "random", instructions: int = 4000,
                   iclass: InstrClass = InstrClass.FX,
                   seed: int = 7) -> Trace:
    """A directed microbenchmark with fixed dependency distance.

    ``dependency_distance=0`` (DD0) makes every instruction depend on the
    immediately preceding one (a serial chain, low IPC, low switching
    breadth); ``DD1`` leaves one instruction of slack (two independent
    chains).  ``data_init`` selects operand values: ``"zero"`` keeps
    data switching minimal, ``"random"`` maximizes it — the distinction
    matters for the SERMiner derating study, which reads the metadata.
    """
    if dependency_distance not in (0, 1):
        raise TraceError("dependency distance must be 0 or 1 (DD0/DD1)")
    if data_init not in ("zero", "random"):
        raise TraceError("data_init must be 'zero' or 'random'")
    rng = np.random.default_rng(seed)
    chains = dependency_distance + 1
    regs = [GPR_BASE + 2 + c for c in range(chains)]
    instrs: List[Instruction] = []
    for i in range(instructions):
        reg = regs[i % chains]
        pc = 0x4000 + (i % 64) * 4
        if iclass is InstrClass.LOAD:
            instrs.append(Instruction(
                iclass=iclass, dests=(reg,), srcs=(reg,),
                address=0x2000000 + (i % 512) * 8, size=8, pc=pc))
        else:
            instrs.append(Instruction(
                iclass=iclass, dests=(reg,), srcs=(reg,), pc=pc))
    return Trace(name=name, instructions=instrs, suite="microprobe",
                 metadata={"dd": dependency_distance,
                           "data_init": data_init,
                           "iclass": iclass.value})


def derating_suites(smt_levels: Sequence[int] = (1, 2, 4),
                    instructions: int = 3000) -> List[Trace]:
    """The Fig. 13 testcase grid: SMT x DD x data-init."""
    suites: List[Trace] = []
    for smt in smt_levels:
        prefix = "st" if smt == 1 else f"smt{smt}"
        for dd in (0, 1):
            for init in ("random", "zero"):
                name = f"{prefix}_dd{dd}_{init}"
                thread = microbenchmark(
                    name, dependency_distance=dd, data_init=init,
                    instructions=instructions)
                if smt == 1:
                    trace = thread
                else:
                    trace = merge_smt([thread] * smt, name=name)
                    trace.metadata.update(thread.metadata)
                trace.metadata["smt"] = smt
                suites.append(trace)
    return suites
