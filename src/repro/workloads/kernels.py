"""Well-known code kernels (Section III-A mentions e.g. ``daxpy``).

Small, steady-state loops with exactly known instruction patterns —
useful as sanity anchors for the timing model and as additional proxy
coverage alongside the synthetic workloads.
"""

from __future__ import annotations

from typing import List

from ..core.isa import GPR_BASE, Instruction, InstrClass, VSR_BASE
from ..errors import TraceError
from .trace import Trace


def daxpy_trace(iterations: int, *, vectorized: bool = True,
                name: str = "daxpy") -> Trace:
    """``y[i] += a * x[i]`` over a streaming footprint."""
    if iterations <= 0:
        raise TraceError("iterations must be positive")
    instrs: List[Instruction] = []
    ptr_x, ptr_y = GPR_BASE + 3, GPR_BASE + 4
    x_base, y_base = 0x3000000, 0x3400000
    if vectorized:
        vx, vy, va = VSR_BASE + 1, VSR_BASE + 2, VSR_BASE + 0
        for i in range(iterations):
            pc = 0x5000
            addr_x = x_base + i * 16
            addr_y = y_base + i * 16
            instrs.append(Instruction(
                iclass=InstrClass.VSX_LOAD, dests=(vx,), srcs=(ptr_x,),
                address=addr_x, size=16, pc=pc))
            instrs.append(Instruction(
                iclass=InstrClass.VSX_LOAD, dests=(vy,), srcs=(ptr_y,),
                address=addr_y, size=16, pc=pc + 4))
            instrs.append(Instruction(
                iclass=InstrClass.VSX, dests=(vy,), srcs=(vy, va, vx),
                pc=pc + 8, flops=4))
            instrs.append(Instruction(
                iclass=InstrClass.VSX_STORE, srcs=(vy,),
                address=addr_y, size=16, pc=pc + 12))
            instrs.append(Instruction(
                iclass=InstrClass.FX, dests=(ptr_x,), srcs=(ptr_x,),
                pc=pc + 16))
            instrs.append(Instruction(
                iclass=InstrClass.BRANCH, pc=pc + 20,
                taken=i != iterations - 1, target=pc))
    else:
        fx, fy = GPR_BASE + 10, GPR_BASE + 11
        for i in range(iterations):
            pc = 0x5100
            instrs.append(Instruction(
                iclass=InstrClass.LOAD, dests=(fx,), srcs=(ptr_x,),
                address=x_base + i * 8, size=8, pc=pc))
            instrs.append(Instruction(
                iclass=InstrClass.LOAD, dests=(fy,), srcs=(ptr_y,),
                address=y_base + i * 8, size=8, pc=pc + 4))
            instrs.append(Instruction(
                iclass=InstrClass.FP, dests=(fy,), srcs=(fy, fx),
                pc=pc + 8, flops=2))
            instrs.append(Instruction(
                iclass=InstrClass.STORE, srcs=(fy,),
                address=y_base + i * 8, size=8, pc=pc + 12))
            instrs.append(Instruction(
                iclass=InstrClass.FX, dests=(ptr_x,), srcs=(ptr_x,),
                pc=pc + 16))
            instrs.append(Instruction(
                iclass=InstrClass.BRANCH, pc=pc + 20,
                taken=i != iterations - 1, target=pc))
    return Trace(name=name, instructions=instrs, suite="kernels",
                 metadata={"kernel": "daxpy", "vectorized": vectorized})


def stream_triad_trace(iterations: int,
                       name: str = "stream-triad") -> Trace:
    """``a[i] = b[i] + s * c[i]`` — memory-bandwidth bound."""
    if iterations <= 0:
        raise TraceError("iterations must be positive")
    instrs: List[Instruction] = []
    ptr = GPR_BASE + 3
    vb, vc, va = VSR_BASE + 1, VSR_BASE + 2, VSR_BASE + 3
    for i in range(iterations):
        pc = 0x5200
        # long strides defeat the L1/L2 on purpose
        stride = i * 128
        instrs.append(Instruction(
            iclass=InstrClass.VSX_LOAD, dests=(vb,), srcs=(ptr,),
            address=0x8000000 + stride, size=16, pc=pc))
        instrs.append(Instruction(
            iclass=InstrClass.VSX_LOAD, dests=(vc,), srcs=(ptr,),
            address=0xA000000 + stride, size=16, pc=pc + 4))
        instrs.append(Instruction(
            iclass=InstrClass.VSX, dests=(va,), srcs=(vb, vc),
            pc=pc + 8, flops=4))
        instrs.append(Instruction(
            iclass=InstrClass.VSX_STORE, srcs=(va,),
            address=0xC000000 + stride, size=16, pc=pc + 12))
        instrs.append(Instruction(
            iclass=InstrClass.FX, dests=(ptr,), srcs=(ptr,), pc=pc + 16))
        instrs.append(Instruction(
            iclass=InstrClass.BRANCH, pc=pc + 20,
            taken=i != iterations - 1, target=pc))
    return Trace(name=name, instructions=instrs, suite="kernels",
                 metadata={"kernel": "stream-triad"})


def pointer_chase_trace(iterations: int, *, working_set: int = 8 << 20,
                        name: str = "pointer-chase") -> Trace:
    """Serial dependent loads over a large footprint (latency bound)."""
    if iterations <= 0:
        raise TraceError("iterations must be positive")
    instrs: List[Instruction] = []
    reg = GPR_BASE + 5
    addr = 0x9000000
    step = 64 * 1021            # co-prime walk over the working set
    for i in range(iterations):
        pc = 0x5300
        addr = 0x9000000 + (addr + step) % working_set
        instrs.append(Instruction(
            iclass=InstrClass.LOAD, dests=(reg,), srcs=(reg,),
            address=addr, size=8, pc=pc))
        instrs.append(Instruction(
            iclass=InstrClass.BRANCH, pc=pc + 4,
            taken=i != iterations - 1, target=pc))
    return Trace(name=name, instructions=instrs, suite="kernels",
                 metadata={"kernel": "pointer-chase"})
