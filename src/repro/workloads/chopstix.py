"""Chopstix-style proxy extraction (Section III-A).

The paper generated 1935 SPECint proxy workloads by (1) profiling each
benchmark, (2) taking the top-10 most-executed functions, (3) capturing
their code+data state, and (4) turning each captured invocation into an
L1-contained endless loop runnable on RTLSim.

Our synthetic applications don't have real functions, so we model a
"function" as a contiguous region of the dynamic trace that repeatedly
exercises the same static code lines.  Extraction:

1. bucket the dynamic trace by static code line (``pc >> 5``) into
   pseudo-functions,
2. rank by dynamic execution share and keep the top N,
3. for each kept function, cut a representative snippet and unroll it
   into an L1-contained loop (addresses re-based into a small footprint,
   per the paper's real-mode/no-translation transformation),
4. attach the function's share of the application as the proxy weight.

Coverage below 100% (e.g. gcc's 41%) is modeled by truncating the kept
set once the requested coverage is reached.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List

from ..core.isa import Instruction
from ..errors import TraceError
from .trace import Trace

_L1_FOOTPRINT_BYTES = 16 * 1024      # proxies must be L1-contained
_SNIPPET_MIN = 50                    # paper: few hundred ... 22K instrs
_SNIPPET_MAX = 22000


@dataclass
class FunctionProfile:
    """One pseudo-function found in an application trace."""

    function_id: int
    first_index: int
    dynamic_count: int
    share: float


def profile_functions(trace: Trace, *,
                      lines_per_function: int = 64) -> List[FunctionProfile]:
    """Bucket a trace into pseudo-functions and rank by execution share."""
    counts: Dict[int, int] = {}
    first: Dict[int, int] = {}
    for idx, instr in enumerate(trace.instructions):
        fn = (instr.pc >> 5) // lines_per_function
        counts[fn] = counts.get(fn, 0) + 1
        first.setdefault(fn, idx)
    total = len(trace.instructions)
    profiles = [FunctionProfile(fn, first[fn], cnt, cnt / total)
                for fn, cnt in counts.items()]
    profiles.sort(key=lambda p: p.dynamic_count, reverse=True)
    return profiles


def _rebase_snippet(instructions: List[Instruction]) -> List[Instruction]:
    """Re-base code and data addresses into an L1-contained footprint.

    Mirrors the paper's transformation of captured state into real-mode
    (translation-free, repeatable) loops: every distinct page of the
    original snippet is mapped into a footprint that fits in the L1s.
    """
    out: List[Instruction] = []
    data_map: Dict[int, int] = {}
    code_map: Dict[int, int] = {}
    for instr in instructions:
        clone = copy.copy(instr)
        line = instr.pc >> 5
        if line not in code_map:
            code_map[line] = len(code_map) % (_L1_FOOTPRINT_BYTES // 32)
        clone.pc = 0x1000 + code_map[line] * 32 + (instr.pc & 0x1f)
        if instr.address is not None:
            chunk = instr.address >> 7
            if chunk not in data_map:
                data_map[chunk] = len(data_map) % (
                    _L1_FOOTPRINT_BYTES // 128)
            clone.address = (0x2000000 + data_map[chunk] * 128
                             + (instr.address & 0x7f))
        out.append(clone)
    return out


def extract_proxies(trace: Trace, *, top_functions: int = 10,
                    coverage: float = 1.0, snippet_instructions: int = 1500,
                    loop_iterations: int = 2) -> List[Trace]:
    """Extract Chopstix-style proxy workloads from an application trace.

    Returns up to ``top_functions`` proxies whose cumulative share does
    not exceed ``coverage``; each proxy's ``weight`` is its function's
    share of the application, so suite-level projections can reweight
    (Section III-A: "based on the weight assigned to each snippet").
    """
    if not 0.0 < coverage <= 1.0:
        raise TraceError("coverage must be in (0, 1]")
    profiles = profile_functions(trace)
    proxies: List[Trace] = []
    covered = 0.0
    for profile in profiles[:top_functions]:
        if covered >= coverage:
            break
        start = profile.first_index
        end = min(len(trace.instructions), start + snippet_instructions)
        snippet = trace.instructions[start:end]
        if len(snippet) < _SNIPPET_MIN:
            continue
        body = _rebase_snippet(snippet)
        proxy = Trace(
            name=f"{trace.name}.f{profile.function_id}",
            instructions=body, suite=f"{trace.suite}-proxy",
            weight=profile.share,
            metadata={"application": trace.name,
                      "function": profile.function_id,
                      "share": profile.share})
        proxy = proxy.repeated(loop_iterations)
        proxy.weight = profile.share
        if len(proxy.instructions) > _SNIPPET_MAX:
            proxy.instructions = proxy.instructions[:_SNIPPET_MAX]
        proxies.append(proxy)
        covered += profile.share
    if not proxies:
        raise TraceError(f"no proxies extracted from {trace.name!r}")
    return proxies


def suite_coverage(proxies: List[Trace]) -> float:
    """Total application share covered by a proxy set."""
    return sum(p.weight for p in proxies)
