"""SPECint 2017 benchmark profiles and the proxy suite.

We cannot ship SPEC binaries, so each of the ten SPECint-rate
benchmarks is modeled as a :class:`~repro.workloads.synthetic.WorkloadSpec`
whose mix, footprints and branch behaviour follow the published
characterization of the suite (gcc: large code footprint and branchy;
mcf/omnetpp: memory bound with poor locality; x264: compute and SIMD
heavy; exchange2: tiny working set, high ILP; xz: large data set with
phases; perlbench/xalancbmk: indirect-branch rich; deepsjeng/leela:
branch-heavy game tree search).

:func:`specint_suite` yields the full-size workloads;
:func:`specint_proxies` is the Chopstix-processed proxy set used for
day-to-day runs, matching the paper's L1-contained snippet methodology.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.isa import InstrClass
from ..errors import ConfigError
from .synthetic import WorkloadSpec, generate
from .trace import Trace

KIB = 1024
MIB = 1024 * KIB


def _mix(fx=0.42, muldiv=0.02, load=0.25, store=0.12, br=0.15,
         br_ind=0.01, cr=0.02, fp=0.01, vsx=0.0) -> Dict[InstrClass, float]:
    mix = {
        InstrClass.FX: fx,
        InstrClass.FX_MULDIV: muldiv,
        InstrClass.LOAD: load,
        InstrClass.STORE: store,
        InstrClass.BRANCH: br,
        InstrClass.BRANCH_IND: br_ind,
        InstrClass.CR: cr,
        InstrClass.FP: fp,
    }
    if vsx:
        mix[InstrClass.VSX] = vsx
    total = sum(mix.values())
    return {k: v / total for k, v in mix.items()}


SPECINT_PROFILES: Dict[str, WorkloadSpec] = {
    "perlbench": WorkloadSpec(
        name="perlbench", suite="specint",
        mix=_mix(br=0.16, br_ind=0.025, load=0.26, store=0.13),
        code_bytes=160 * KIB, code_hot_bytes=16 * KIB, data_bytes=512 * KIB,
        stream_fraction=0.20, hot_fraction=0.715, hot_bytes=24 * KIB,
        warm_fraction=0.08, warm_bytes=3 * MIB,
        branch_sites=200, branch_bias=0.78, seed=101),
    "gcc": WorkloadSpec(
        name="gcc", suite="specint",
        mix=_mix(br=0.19, br_ind=0.015, load=0.24, store=0.12),
        code_bytes=512 * KIB, code_hot_bytes=24 * KIB, data_bytes=2 * MIB,
        stream_fraction=0.25, hot_fraction=0.62, hot_bytes=32 * KIB,
        warm_fraction=0.12, warm_bytes=3 * MIB,
        branch_sites=400, branch_bias=0.72, seed=102),
    "mcf": WorkloadSpec(
        name="mcf", suite="specint",
        mix=_mix(br=0.13, load=0.32, store=0.09),
        code_bytes=16 * KIB, code_hot_bytes=8 * KIB, data_bytes=16 * MIB,
        stream_fraction=0.10, hot_fraction=0.48, hot_bytes=16 * KIB,
        warm_fraction=0.12, warm_bytes=3 * MIB,
        branch_sites=80, branch_bias=0.7, seed=103,
        dep_distance_mean=2.5, pointer_chase_fraction=0.40,
        chain_break_fraction=0.20),
    "omnetpp": WorkloadSpec(
        name="omnetpp", suite="specint",
        mix=_mix(br=0.15, br_ind=0.02, load=0.3, store=0.12),
        code_bytes=200 * KIB, code_hot_bytes=16 * KIB, data_bytes=8 * MIB,
        stream_fraction=0.10, hot_fraction=0.72, hot_bytes=48 * KIB,
        warm_fraction=0.10, warm_bytes=3 * MIB,
        branch_sites=250, branch_bias=0.75, seed=104,
        pointer_chase_fraction=0.25),
    "xalancbmk": WorkloadSpec(
        name="xalancbmk", suite="specint",
        mix=_mix(br=0.17, br_ind=0.02, load=0.28, store=0.1),
        code_bytes=300 * KIB, code_hot_bytes=14 * KIB, data_bytes=1 * MIB,
        stream_fraction=0.25, hot_fraction=0.645, hot_bytes=24 * KIB,
        warm_fraction=0.10, warm_bytes=3 * MIB,
        branch_sites=150, branch_bias=0.8, seed=105),
    "x264": WorkloadSpec(
        name="x264", suite="specint",
        mix=_mix(fx=0.35, load=0.24, store=0.12, br=0.08, fp=0.01,
                 vsx=0.14),
        code_bytes=96 * KIB, code_hot_bytes=14 * KIB, data_bytes=4 * MIB,
        stream_fraction=0.60, hot_fraction=0.315, hot_bytes=16 * KIB,
        warm_fraction=0.08, warm_bytes=3 * MIB,
        branch_sites=80, branch_bias=0.9, seed=106,
        dep_distance_mean=6.0),
    "deepsjeng": WorkloadSpec(
        name="deepsjeng", suite="specint",
        mix=_mix(br=0.17, load=0.25, store=0.1, muldiv=0.03),
        code_bytes=64 * KIB, code_hot_bytes=14 * KIB, data_bytes=2 * MIB,
        stream_fraction=0.15, hot_fraction=0.745, hot_bytes=24 * KIB,
        warm_fraction=0.10, warm_bytes=3 * MIB,
        branch_sites=180, branch_bias=0.68, seed=107),
    "leela": WorkloadSpec(
        name="leela", suite="specint",
        mix=_mix(br=0.16, load=0.24, store=0.1, fp=0.02),
        code_bytes=48 * KIB, code_hot_bytes=12 * KIB, data_bytes=1 * MIB,
        stream_fraction=0.20, hot_fraction=0.715, hot_bytes=16 * KIB,
        warm_fraction=0.08, warm_bytes=3 * MIB,
        branch_sites=150, branch_bias=0.7, seed=108),
    "exchange2": WorkloadSpec(
        name="exchange2", suite="specint",
        mix=_mix(fx=0.5, br=0.13, load=0.2, store=0.09),
        code_bytes=24 * KIB, code_hot_bytes=10 * KIB, data_bytes=64 * KIB,
        stream_fraction=0.30, hot_fraction=0.68, hot_bytes=12 * KIB,
        branch_sites=70, branch_bias=0.88, seed=109,
        dep_distance_mean=5.0),
    "xz": WorkloadSpec(
        name="xz", suite="specint",
        mix=_mix(fx=0.45, br=0.13, load=0.25, store=0.1),
        code_bytes=20 * KIB, code_hot_bytes=8 * KIB, data_bytes=8 * MIB,
        stream_fraction=0.45, hot_fraction=0.45, hot_bytes=16 * KIB,
        warm_fraction=0.08, warm_bytes=3 * MIB,
        branch_sites=60, branch_bias=0.82, seed=110),
}

SPECINT_NAMES = tuple(SPECINT_PROFILES)

# Fraction of each benchmark's execution captured by its top-10 most
# executed functions, per Section III-A (41% for gcc ... 99% for xz).
PROXY_COVERAGE: Dict[str, float] = {
    "perlbench": 0.62, "gcc": 0.41, "mcf": 0.93, "omnetpp": 0.71,
    "xalancbmk": 0.58, "x264": 0.82, "deepsjeng": 0.66, "leela": 0.64,
    "exchange2": 0.88, "xz": 0.99,
}


def scaled_spec(spec: WorkloadSpec, *, instructions: int,
                footprint_scale: int = 1) -> WorkloadSpec:
    """Copy a profile with a new length and scaled-down footprints.

    ``footprint_scale`` divides every code/data footprint, matching the
    ``cache_scale`` convention of :func:`repro.core.power9_config`:
    sampled runs shrink caches and working sets by the same factor.
    """
    fields = dict(spec.__dict__)
    fields["instructions"] = instructions
    for key in ("code_bytes", "code_hot_bytes", "data_bytes",
                "hot_bytes", "warm_bytes"):
        fields[key] = max(1024, fields[key] // footprint_scale)
    return WorkloadSpec(**fields)


def specint_suite(instructions: int = 20000,
                  names: Optional[List[str]] = None,
                  footprint_scale: int = 1) -> List[Trace]:
    """Full synthetic SPECint workloads (one trace per benchmark)."""
    chosen = names or list(SPECINT_NAMES)
    traces: List[Trace] = []
    for name in chosen:
        if name not in SPECINT_PROFILES:
            raise ConfigError(f"unknown SPECint benchmark: {name!r}")
        spec = scaled_spec(SPECINT_PROFILES[name],
                           instructions=instructions,
                           footprint_scale=footprint_scale)
        traces.append(generate(spec))
    return traces


def specint_proxies(instructions: int = 8000,
                    names: Optional[List[str]] = None) -> List[Trace]:
    """Chopstix-style proxies: L1-contained snippets of each benchmark.

    Uses :mod:`repro.workloads.chopstix` to extract top-function
    snippets from each synthetic application, weighted by coverage.
    """
    from .chopstix import extract_proxies
    chosen = names or list(SPECINT_NAMES)
    proxies: List[Trace] = []
    for name in chosen:
        app = SPECINT_PROFILES[name]
        app = WorkloadSpec(**{**app.__dict__,
                              "instructions": instructions})
        proxies.extend(extract_proxies(generate(app),
                                       coverage=PROXY_COVERAGE[name]))
    return proxies
