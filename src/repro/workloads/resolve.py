"""Named-workload resolution shared by CLI, campaigns and benchmarks.

Every entry point that accepts a workload *name* (``repro trace``,
``repro inject/campaign``, ``repro bench``, the figure benchmarks and
the golden-regression harness) resolves it through this one function,
so the same name always produces the same trace — which is what makes
the content-addressed result cache (:mod:`repro.exec.cache`) shareable
between the CLI and the benchmark harness: identical names fingerprint
to identical cache keys.
"""

from __future__ import annotations

from ..errors import ConfigError

# Non-SPEC workload names (SPECint proxy names are added dynamically).
KERNEL_WORKLOADS = ("daxpy", "dgemm-vsu", "dgemm-mma", "stream-triad",
                    "pointer-chase", "stressmark")


def workload_names() -> tuple:
    """Every name :func:`resolve_workload` accepts."""
    from .spec import SPECINT_NAMES
    return KERNEL_WORKLOADS + tuple(SPECINT_NAMES)


def resolve_workload(name: str, instructions: int):
    """Build the named workload trace (deterministic in its inputs).

    ``instructions`` is the nominal dynamic instruction budget; kernel
    generators that take iteration counts derive them from it the same
    way for every caller.
    """
    from . import (daxpy_trace, dgemm_mma_trace, dgemm_vsu_trace,
                   max_power_stressmark, pointer_chase_trace,
                   specint_proxies, stream_triad_trace)
    from .spec import SPECINT_NAMES

    if instructions <= 0:
        raise ConfigError("instructions must be positive")
    if name == "dgemm-mma":
        return dgemm_mma_trace(max(1, instructions // 8))
    if name == "dgemm-vsu":
        return dgemm_vsu_trace(max(1, instructions // 8))
    if name == "daxpy":
        return daxpy_trace(instructions)
    if name == "stream-triad":
        return stream_triad_trace(instructions)
    if name == "pointer-chase":
        return pointer_chase_trace(instructions)
    if name == "stressmark":
        return max_power_stressmark(instructions)
    if name in SPECINT_NAMES:
        return specint_proxies(instructions=instructions,
                               names=[name])[0]
    choices = ", ".join(workload_names())
    raise ConfigError(
        f"unknown workload {name!r} (choices: {choices})")
