"""Workload traces: the unit of work every simulator run consumes.

A :class:`Trace` is an ordered list of dynamic
:class:`~repro.core.isa.Instruction` records plus metadata (name, suite,
weight for suite-level aggregation).  Traces come from the generators in
this package (synthetic microbenchmarks, SPECint proxies, GEMM kernels,
AI workload layers) and can be sliced into windows for the 5K-cycle
measurement methodology of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from ..core.isa import Instruction, InstrClass
from ..errors import TraceError


@dataclass
class Trace:
    """An instruction trace with provenance metadata."""

    name: str
    instructions: List[Instruction]
    suite: str = ""
    weight: float = 1.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.instructions:
            raise TraceError(f"trace {self.name!r} is empty")
        if self.weight <= 0:
            raise TraceError("trace weight must be positive")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def class_mix(self) -> Dict[InstrClass, float]:
        """Fraction of instructions per class."""
        counts: Dict[InstrClass, int] = {}
        for instr in self.instructions:
            counts[instr.iclass] = counts.get(instr.iclass, 0) + 1
        total = len(self.instructions)
        return {cls: cnt / total for cls, cnt in counts.items()}

    def total_flops(self) -> int:
        return sum(i.flops for i in self.instructions)

    def windows(self, size: int) -> List["Trace"]:
        """Split into fixed-size instruction windows (last partial kept
        if it is at least half a window)."""
        if size <= 0:
            raise TraceError("window size must be positive")
        out: List[Trace] = []
        for start in range(0, len(self.instructions), size):
            chunk = self.instructions[start:start + size]
            if len(chunk) >= size // 2:
                out.append(Trace(
                    name=f"{self.name}@{start}", instructions=chunk,
                    suite=self.suite, weight=self.weight,
                    metadata=dict(self.metadata)))
        if not out:
            raise TraceError("trace shorter than half a window")
        return out

    def repeated(self, times: int) -> "Trace":
        """The trace unrolled ``times`` times (L1-contained endless-loop
        proxies are built this way)."""
        if times <= 0:
            raise TraceError("times must be positive")
        import copy
        body: List[Instruction] = []
        for _ in range(times):
            body.extend(copy.copy(i) for i in self.instructions)
        return Trace(name=f"{self.name}x{times}", instructions=body,
                     suite=self.suite, weight=self.weight,
                     metadata=dict(self.metadata))


def merge_smt(traces: Sequence[Trace], name: str = "smt") -> Trace:
    """Interleave per-thread traces round-robin into one SMT trace.

    Thread ids are (re)assigned by position.  The simulator uses the
    ``thread`` field for dependence tracking and predictor history.
    """
    if not traces:
        raise TraceError("need at least one thread trace")
    import copy
    streams = []
    for tid, trace in enumerate(traces):
        stream = []
        for instr in trace.instructions:
            clone = copy.copy(instr)
            clone.thread = tid
            stream.append(clone)
        streams.append(stream)
    merged: List[Instruction] = []
    longest = max(len(s) for s in streams)
    for i in range(longest):
        for stream in streams:
            if i < len(stream):
                merged.append(stream[i])
    return Trace(name=name, instructions=merged,
                 suite=traces[0].suite,
                 metadata={"threads": len(traces)})
