"""Trace serialization.

The paper's proxies were long-lived artifacts ("to have consistent and
repeatable results during the duration of the project") — traces here
can likewise be saved and reloaded bit-exactly, as compact JSON-lines
files (one instruction per line, metadata in a header record).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..core.isa import Instruction, InstrClass
from ..errors import TraceError
from .trace import Trace

_FORMAT_VERSION = 1


def _instruction_record(instr: Instruction) -> dict:
    record = {"c": instr.iclass.value, "p": instr.pc}
    if instr.dests:
        record["d"] = list(instr.dests)
    if instr.srcs:
        record["s"] = list(instr.srcs)
    if instr.address is not None:
        record["a"] = instr.address
        record["z"] = instr.size
    if instr.iclass.is_branch:
        record["t"] = int(instr.taken)
        if instr.target is not None:
            record["g"] = instr.target
    if instr.flops:
        record["f"] = instr.flops
    if instr.thread:
        record["h"] = instr.thread
    return record


def _instruction_from(record: dict) -> Instruction:
    return Instruction(
        iclass=InstrClass(record["c"]),
        dests=tuple(record.get("d", ())),
        srcs=tuple(record.get("s", ())),
        address=record.get("a"),
        size=record.get("z", 0),
        taken=bool(record.get("t", 0)),
        target=record.get("g"),
        flops=record.get("f", 0),
        pc=record.get("p", 0),
        thread=record.get("h", 0))


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace as JSON lines (header + one line per instruction)."""
    path = Path(path)
    header = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "suite": trace.suite,
        "weight": trace.weight,
        "metadata": {k: v for k, v in trace.metadata.items()
                     if isinstance(v, (str, int, float, bool, list))},
        "instructions": len(trace.instructions),
    }
    with path.open("w") as fh:
        fh.write(json.dumps(header) + "\n")
        for instr in trace.instructions:
            fh.write(json.dumps(_instruction_record(instr),
                                separators=(",", ":")) + "\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open() as fh:
        header_line = fh.readline()
        if not header_line:
            raise TraceError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("version") != _FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported trace format "
                f"{header.get('version')!r}")
        instructions = [_instruction_from(json.loads(line))
                        for line in fh if line.strip()]
    if len(instructions) != header["instructions"]:
        raise TraceError(
            f"{path}: truncated trace ({len(instructions)} of "
            f"{header['instructions']} instructions)")
    return Trace(name=header["name"], instructions=instructions,
                 suite=header.get("suite", ""),
                 weight=header.get("weight", 1.0),
                 metadata=dict(header.get("metadata", {})))
