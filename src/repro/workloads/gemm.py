"""GEMM kernel trace generators: VSU (vector) vs MMA code.

These produce the OpenBLAS-micro-kernel-shaped instruction streams the
Fig. 5 experiment measures.  Both variants compute the same panel of a
DGEMM/SGEMM; the difference is the code generation target:

* **VSU** code follows the classic BLAS1 decomposition: per k step it
  loads A and B vectors, *splats* each B element across lanes (splats
  compete with FMAs for VSX issue slots — the paper's "extra load or
  splat instructions" point) and issues one 128-bit FMA per C tile
  register.
* **MMA** code issues one ``ger`` outer product per accumulator per k
  step.  No splats, and C never leaves the accumulators during the k
  loop — the data-movement saving the paper highlights.

The paper measures "multiple 5K cycle windows" of the kernel steady
state; :func:`repro.workloads.trace.Trace.windows` provides the
slicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.isa import (ACC_BASE, GPR_BASE, Instruction, InstrClass,
                        VSR_BASE)
from ..errors import TraceError
from .trace import Trace

_FLOPS_PER_FMA = {"fp64": 4, "fp32": 8}       # 128-bit FMA, 2 FLOPs/lane
_FLOPS_PER_GER = {"fp64": 16, "fp32": 32}     # 4x2 / 4x4 rank-1 tiles


@dataclass
class VsuKernelShape:
    """Register-blocking of the vector micro-kernel."""

    mr: int = 4        # C rows held in registers
    nr: int = 8        # C columns held in registers
    dtype: str = "fp64"

    @property
    def lanes(self) -> int:
        return 2 if self.dtype == "fp64" else 4

    @property
    def c_regs(self) -> int:
        return self.mr * self.nr // self.lanes


@dataclass
class MmaKernelShape:
    """Accumulator-blocking of the MMA micro-kernel."""

    accumulators: int = 8
    dtype: str = "fp64"

    @property
    def tile_rows(self) -> int:
        return 4

    @property
    def tile_cols(self) -> int:
        return 2 if self.dtype == "fp64" else 4


def dgemm_vsu_trace(k_iterations: int, shape: VsuKernelShape = None,
                    *, max_load_bytes: int = 16,
                    name: str = "dgemm-vsu") -> Trace:
    """Vector-code GEMM micro-kernel trace (POWER9-tuned, per Fig. 5
    the same binary is run unmodified on POWER10)."""
    shape = shape or VsuKernelShape()
    if k_iterations <= 0:
        raise TraceError("k_iterations must be positive")
    lanes = shape.lanes
    elem = 8 if shape.dtype == "fp64" else 4
    flops = _FLOPS_PER_FMA[shape.dtype]

    c_regs = [VSR_BASE + i for i in range(shape.c_regs)]
    a_regs = [VSR_BASE + 40 + i for i in range(shape.mr // lanes)]
    b_load_regs = [VSR_BASE + 48 + i for i in range(shape.nr // lanes)]
    b_splat_regs = [VSR_BASE + 52 + i for i in range(shape.nr)]
    ptr_a, ptr_b = GPR_BASE + 3, GPR_BASE + 4
    a_base, b_base = 0x3000000, 0x3800000

    instrs: List[Instruction] = []
    vec_bytes = min(16, max_load_bytes)
    for k in range(k_iterations):
        pc = 0x5000
        a_addr = a_base + (k * shape.mr * elem) % (32 * 1024)
        b_addr = b_base + (k * shape.nr * elem) % (32 * 1024)
        for i, reg in enumerate(a_regs):
            instrs.append(Instruction(
                iclass=InstrClass.VSX_LOAD, dests=(reg,), srcs=(ptr_a,),
                address=a_addr + i * vec_bytes, size=vec_bytes,
                pc=pc + 4 * i))
        for i, reg in enumerate(b_load_regs):
            instrs.append(Instruction(
                iclass=InstrClass.VSX_LOAD, dests=(reg,), srcs=(ptr_b,),
                address=b_addr + i * vec_bytes, size=vec_bytes,
                pc=pc + 0x20 + 4 * i))
        # splat each B element across lanes (consumes a VSX slot)
        for j in range(shape.nr):
            src = b_load_regs[j // lanes]
            instrs.append(Instruction(
                iclass=InstrClass.VSX, dests=(b_splat_regs[j],),
                srcs=(src,), pc=pc + 0x40 + 4 * j))
        # FMAs: C[i,j] += A[i] * Bsplat[j]
        reg_idx = 0
        for j in range(shape.nr):
            for i in range(shape.mr // lanes):
                c = c_regs[reg_idx]
                instrs.append(Instruction(
                    iclass=InstrClass.VSX, dests=(c,),
                    srcs=(c, a_regs[i], b_splat_regs[j]),
                    pc=pc + 0x80 + 4 * reg_idx, flops=flops))
                reg_idx += 1
        # loop overhead: pointer bumps + count + branch
        instrs.append(Instruction(
            iclass=InstrClass.FX, dests=(ptr_a,), srcs=(ptr_a,),
            pc=pc + 0x140))
        instrs.append(Instruction(
            iclass=InstrClass.FX, dests=(ptr_b,), srcs=(ptr_b,),
            pc=pc + 0x144))
        instrs.append(Instruction(
            iclass=InstrClass.BRANCH, pc=pc + 0x148,
            taken=k != k_iterations - 1, target=pc))
    return Trace(name=name, instructions=instrs, suite="gemm",
                 metadata={"kernel": "vsu", "dtype": shape.dtype,
                           "k": k_iterations,
                           "flops_per_iter": shape.mr * shape.nr * 2})


def dgemm_mma_trace(k_iterations: int, shape: MmaKernelShape = None,
                    *, max_load_bytes: int = 32, store_period: int = 128,
                    name: str = "dgemm-mma") -> Trace:
    """MMA-code GEMM micro-kernel trace (POWER10 only)."""
    shape = shape or MmaKernelShape()
    if k_iterations <= 0:
        raise TraceError("k_iterations must be positive")
    elem = 8 if shape.dtype == "fp64" else 4
    flops = _FLOPS_PER_GER[shape.dtype]
    rows = shape.tile_rows * shape.accumulators // 2
    cols = shape.tile_cols * 2

    accs = [ACC_BASE + i for i in range(shape.accumulators)]
    a_bytes = rows * elem
    b_bytes = cols * elem
    n_a_loads = max(1, a_bytes // max_load_bytes)
    n_b_loads = max(1, b_bytes // max_load_bytes)
    a_regs = [VSR_BASE + 32 + i for i in range(n_a_loads)]
    b_regs = [VSR_BASE + 40 + i for i in range(n_b_loads)]
    ptr_a, ptr_b = GPR_BASE + 3, GPR_BASE + 4
    a_base, b_base = 0x3000000, 0x3800000

    instrs: List[Instruction] = []
    for k in range(k_iterations):
        pc = 0x6000
        a_addr = a_base + (k * a_bytes) % (32 * 1024)
        b_addr = b_base + (k * b_bytes) % (32 * 1024)
        for i, reg in enumerate(a_regs):
            instrs.append(Instruction(
                iclass=InstrClass.VSX_LOAD, dests=(reg,), srcs=(ptr_a,),
                address=a_addr + i * max_load_bytes,
                size=max_load_bytes, pc=pc + 4 * i))
        for i, reg in enumerate(b_regs):
            instrs.append(Instruction(
                iclass=InstrClass.VSX_LOAD, dests=(reg,), srcs=(ptr_b,),
                address=b_addr + i * max_load_bytes,
                size=max_load_bytes, pc=pc + 0x20 + 4 * i))
        for n, acc in enumerate(accs):
            a_src = a_regs[n % len(a_regs)]
            b_src = b_regs[n % len(b_regs)]
            instrs.append(Instruction(
                iclass=InstrClass.MMA, dests=(acc,),
                srcs=(acc, a_src, b_src),
                pc=pc + 0x40 + 4 * n, flops=flops))
        instrs.append(Instruction(
            iclass=InstrClass.FX, dests=(ptr_a,), srcs=(ptr_a,),
            pc=pc + 0x80))
        instrs.append(Instruction(
            iclass=InstrClass.FX, dests=(ptr_b,), srcs=(ptr_b,),
            pc=pc + 0x84))
        instrs.append(Instruction(
            iclass=InstrClass.BRANCH, pc=pc + 0x88,
            taken=k != k_iterations - 1, target=pc))
        # drain accumulators to memory at panel boundaries
        if (k + 1) % store_period == 0 or k == k_iterations - 1:
            for n, acc in enumerate(accs):
                vsr = VSR_BASE + n
                instrs.append(Instruction(
                    iclass=InstrClass.MMA_MOVE, dests=(vsr,), srcs=(acc,),
                    pc=pc + 0x100 + 8 * n))
                instrs.append(Instruction(
                    iclass=InstrClass.VSX_STORE, srcs=(vsr,),
                    address=0x4000000 + n * 64, size=32,
                    pc=pc + 0x104 + 8 * n))
    return Trace(name=name, instructions=instrs, suite="gemm",
                 metadata={"kernel": "mma", "dtype": shape.dtype,
                           "k": k_iterations,
                           "flops_per_iter": (shape.accumulators
                                              * flops)})


def gemm_instruction_estimate(m: int, n: int, k: int, *, dtype: str,
                              kernel: str) -> int:
    """Analytic dynamic-instruction estimate for a full ``m x n x k``
    GEMM under either code generation target.

    Used by the end-to-end AI model (Fig. 6), where simulating the full
    batch is infeasible; validated against the generated kernel traces
    in the test suite.
    """
    if kernel == "vsu":
        shape = VsuKernelShape(dtype=dtype)
        lanes = shape.lanes
        fmas = m * n * k // (lanes * 1)
        per_iter = (shape.mr // lanes + shape.nr // lanes   # loads
                    + shape.nr                              # splats
                    + shape.mr * shape.nr // lanes          # FMAs
                    + 3)                                    # overhead
        iters = max(1, m * n * k // (shape.mr * shape.nr))
        return per_iter * iters
    if kernel == "mma":
        shape = MmaKernelShape(dtype=dtype)
        rows = shape.tile_rows * shape.accumulators // 2
        cols = shape.tile_cols * 2
        per_iter = (2 + 1 + shape.accumulators + 3)
        iters = max(1, m * n * k // (rows * cols))
        return per_iter * iters
    raise TraceError(f"unknown kernel target: {kernel!r}")
