"""Workload generation: traces, synthetic mixes, SPECint profiles,
Chopstix proxy extraction, GEMM kernels, AI models and stressmarks."""

from .trace import Trace, merge_smt
from .synthetic import (WorkloadSpec, derating_suites, generate,
                        microbenchmark)
from .spec import (PROXY_COVERAGE, SPECINT_NAMES, SPECINT_PROFILES,
                   specint_proxies, specint_suite)
from .chopstix import extract_proxies, profile_functions, suite_coverage
from .gemm import (MmaKernelShape, VsuKernelShape, dgemm_mma_trace,
                   dgemm_vsu_trace, gemm_instruction_estimate)
from .kernels import daxpy_trace, pointer_chase_trace, stream_triad_trace
from .stressmark import max_power_stressmark
from .io import load_trace, save_trace
from .resolve import KERNEL_WORKLOADS, resolve_workload, workload_names

__all__ = [
    "Trace", "merge_smt",
    "WorkloadSpec", "derating_suites", "generate", "microbenchmark",
    "PROXY_COVERAGE", "SPECINT_NAMES", "SPECINT_PROFILES",
    "specint_proxies", "specint_suite",
    "extract_proxies", "profile_functions", "suite_coverage",
    "MmaKernelShape", "VsuKernelShape", "dgemm_mma_trace",
    "dgemm_vsu_trace", "gemm_instruction_estimate",
    "daxpy_trace", "pointer_chase_trace", "stream_triad_trace",
    "max_power_stressmark",
    "load_trace", "save_trace",
    "KERNEL_WORKLOADS", "resolve_workload", "workload_names",
]
