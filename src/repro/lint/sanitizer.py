"""Runtime concurrency sanitizer (``REPRO_SANITIZE=1`` / ``--sanitize``).

The static tier (R007-R011) proves what it can from source; this
module watches the *dynamic* residue while the real server runs.
Threat model — the three concurrency failures that static analysis
cannot rule out:

* **event-loop blocking** — a callback that holds the loop longer
  than ``block_threshold_ms`` (default 250 ms, env
  ``REPRO_SANITIZE_THRESHOLD_MS``) stalls every in-flight request;
  detected by timing ``asyncio.events.Handle._run``.
* **lost futures** — "exception was never retrieved" / "Task was
  destroyed but it is pending" surface at garbage-collection time via
  the loop exception handler; the sanitizer classifies and records
  them instead of letting them scroll past in a log.
* **cross-process nondeterminism** — the same task key producing
  different payload digests (engine results are content-addressed, so
  any divergence means a worker broke the purity contract), plus the
  double-run harness: serve the identical seeded load twice and diff
  the ordering-sensitive response bodies.

The sanitizer is strictly observational: it never changes scheduling,
so a clean sanitized run is evidence about the *production* code
path.  Reports are capped (the first ``_MAX_REPORTS`` are kept, the
rest counted as suppressed) so a hot failure cannot OOM the run.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

_MAX_REPORTS = 200

_TRUTHY = ("1", "true", "yes", "on")


def _describe(obj: object, limit: int = 200) -> str:
    try:
        text = repr(obj)
    except Exception:           # noqa: BLE001 - repr() of anything
        text = f"<unreprable {type(obj).__name__}>"
    return text if len(text) <= limit else text[:limit - 3] + "..."


class ConcurrencySanitizer:
    """Collects concurrency-hazard reports from one process."""

    def __init__(self, block_threshold_ms: Optional[float] = None):
        if block_threshold_ms is None:
            block_threshold_ms = float(os.environ.get(
                "REPRO_SANITIZE_THRESHOLD_MS", "250"))
        self.block_threshold_ms = block_threshold_ms
        self.reports: List[Dict[str, object]] = []
        self.suppressed = 0
        self._lock = threading.Lock()
        self._digests: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self._orig_handle_run = None

    # -- collection ------------------------------------------------------

    def record(self, kind: str, detail: str,
               value_ms: float = 0.0) -> None:
        with self._lock:
            if len(self.reports) >= _MAX_REPORTS:
                self.suppressed += 1
                return
            self.reports.append({
                "kind": kind,
                "detail": detail,
                "value_ms": round(value_ms, 3),
            })

    def observe_result(self, kind: str, key: str, payload: object,
                       source: str) -> None:
        """Cross-process determinism check: one key, one digest.

        Called by the engine every time a task result lands (from a
        worker or the cache).  The first sighting pins the digest;
        any later sighting with a different digest is a divergence.
        """
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str)
            .encode("utf-8")).hexdigest()[:16]
        with self._lock:
            prior = self._digests.get((kind, key))
            if prior is None:
                self._digests[(kind, key)] = (digest, source)
                return
        if prior[0] != digest:
            self.record(
                "cross_process_divergence",
                f"task {kind}:{key[:16]} produced digest {digest} "
                f"(source={source}) but {prior[0]} earlier "
                f"(source={prior[1]})")

    # -- loop instrumentation -------------------------------------------

    def install(self) -> None:
        """Patch ``Handle._run`` to time every loop callback."""
        if self._orig_handle_run is not None:
            return
        import asyncio.events
        orig = asyncio.events.Handle._run
        threshold_ms = self.block_threshold_ms
        sanitizer = self

        def _timed_run(handle):
            t0 = time.perf_counter()
            try:
                return orig(handle)
            finally:
                dt_ms = (time.perf_counter() - t0) * 1e3
                if dt_ms >= threshold_ms:
                    sanitizer.record(
                        "loop_block",
                        f"callback held the event loop for "
                        f"{dt_ms:.0f} ms: "
                        f"{_describe(getattr(handle, '_callback', None))}",
                        dt_ms)

        self._orig_handle_run = orig
        # the sanitizer's whole job is this one foreign write: timing
        # instrumentation on the loop's callback runner
        asyncio.events.Handle._run = _timed_run  # repro-lint: disable=R009

    def uninstall(self) -> None:
        if self._orig_handle_run is None:
            return
        import asyncio.events
        asyncio.events.Handle._run = self._orig_handle_run  # repro-lint: disable=R009
        self._orig_handle_run = None

    def loop_exception_handler(self, loop, context) -> None:
        """Classify loop-level failures, then defer to the default."""
        message = str(context.get("message") or "")
        if "never retrieved" in message:
            kind = "unretrieved_future"
        elif "Task was destroyed" in message:
            kind = "pending_task_destroyed"
        else:
            kind = "loop_exception"
        detail = message or _describe(context.get("exception"))
        future = context.get("future") or context.get("task")
        if future is not None:
            detail += f" [{_describe(future)}]"
        self.record(kind, detail)
        loop.default_exception_handler(context)

    # -- reporting -------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        with self._lock:
            by_kind: Dict[str, int] = {}
            for report in self.reports:
                kind = str(report["kind"])
                by_kind[kind] = by_kind.get(kind, 0) + 1
            return {
                "block_threshold_ms": self.block_threshold_ms,
                "reports": list(self.reports),
                "by_kind": dict(sorted(by_kind.items())),
                "suppressed": self.suppressed,
            }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.summary(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# ---- process-global wiring -----------------------------------------------

_ACTIVE: Optional[ConcurrencySanitizer] = None
_ACTIVE_LOCK = threading.Lock()


def get_sanitizer() -> Optional[ConcurrencySanitizer]:
    """The active sanitizer, or None when sanitizing is off."""
    return _ACTIVE


def set_sanitizer(sanitizer: Optional[ConcurrencySanitizer]
                  ) -> Optional[ConcurrencySanitizer]:
    """Activate (install) a sanitizer; returns the previous one."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        if previous is not None:
            previous.uninstall()
        _ACTIVE = sanitizer
        if sanitizer is not None:
            sanitizer.install()
        return previous


def sanitize_enabled(flag: bool = False) -> bool:
    """--sanitize flag OR the ``REPRO_SANITIZE`` environment switch."""
    return flag or os.environ.get(
        "REPRO_SANITIZE", "").strip().lower() in _TRUTHY


@contextlib.contextmanager
def sanitized(block_threshold_ms: Optional[float] = None):
    """Scope with a fresh active sanitizer; restores the previous."""
    sanitizer = ConcurrencySanitizer(
        block_threshold_ms=block_threshold_ms)
    previous = set_sanitizer(sanitizer)
    try:
        yield sanitizer
    finally:
        set_sanitizer(previous)


# ---- double-run serve harness --------------------------------------------

def diff_double_run(first: Dict[str, object],
                    second: Dict[str, object]) -> Dict[str, object]:
    """Diff two loadgen reports on ordering-sensitive identity.

    Rows pair on the deterministic request id.  Pairs where either
    side was shed, degraded, or failed are *excused* (admission and
    deadline decisions are wall-clock dependent by design); pairs
    where both sides answered full-fidelity must carry identical
    body digests — those bodies are pure functions of the payload.
    """
    rows_a = {str(row.get("id")): row
              for row in first.get("per_request", [])}
    rows_b = {str(row.get("id")): row
              for row in second.get("per_request", [])}
    divergences: List[str] = []
    compared = excused = 0
    for rid in sorted(set(rows_a) | set(rows_b)):
        row_a, row_b = rows_a.get(rid), rows_b.get(rid)
        if row_a is None or row_b is None:
            divergences.append(f"{rid}: present in only one run")
            continue
        outcome_a = row_a.get("outcome")
        if outcome_a != row_b.get("outcome") or outcome_a != "ok":
            excused += 1
            continue
        compared += 1
        if row_a.get("body_sha") != row_b.get("body_sha"):
            divergences.append(
                f"{rid}: full-fidelity body digest mismatch "
                f"{row_a.get('body_sha')} != {row_b.get('body_sha')}")
    return {"divergences": divergences, "compared": compared,
            "excused": excused}


def double_run_serve(serve_config, loadgen_config,
                     sanitizer: Optional[ConcurrencySanitizer] = None):
    """Serve the identical seeded load twice and diff the bodies.

    Each run gets a fresh server (own thread, own engine); the seeded
    loadgen schedule is byte-identical across runs, so any
    full-fidelity body difference is real nondeterminism.  Returns
    ``(reports, diff)``; divergences are also recorded on the given
    sanitizer as ``double_run_divergence``.
    """
    import dataclasses

    from ..serve.loadgen import run_loadgen
    from ..serve.server import start_in_thread

    reports: List[Dict[str, object]] = []
    for _ in range(2):
        handle = start_in_thread(serve_config)
        try:
            config = dataclasses.replace(
                loadgen_config, host="127.0.0.1", port=handle.port)
            reports.append(run_loadgen(config))
        finally:
            handle.stop()
    diff = diff_double_run(reports[0], reports[1])
    if sanitizer is not None:
        for divergence in diff["divergences"]:
            sanitizer.record("double_run_divergence", divergence)
    return reports, diff
