"""Finding and severity primitives for the static-analysis pass.

A :class:`Finding` is one rule violation anchored at ``path:line:col``.
Findings carry a stable *fingerprint* (rule + path + message, no line
numbers) so a committed baseline survives unrelated edits to the same
file: moving code around does not resurrect grandfathered findings, but
changing the offending construct itself does.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict

from ..errors import LintUsageError


class Severity(enum.IntEnum):
    """Ordered severity; exit-code thresholds compare on the int value."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise LintUsageError(
                f"unknown severity {text!r}; "
                f"choose from {[s.name.lower() for s in cls]}") from None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


def fingerprint(rule: str, path: str, message: str) -> str:
    """Stable identity of a finding, independent of line numbers."""
    digest = hashlib.sha256(
        f"{rule}|{path}|{message}".encode("utf-8")).hexdigest()
    return digest[:12]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str                    # e.g. "R001"
    severity: Severity
    path: str                    # package-relative, e.g. repro/core/x.py
    line: int
    col: int
    message: str
    fixable: bool = False        # a safe automatic rewrite exists

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.rule, self.path, self.message)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fixable": self.fixable,
            "fingerprint": self.fingerprint,
        }


@dataclass
class LintResult:
    """Everything one engine run produced."""

    findings: list = field(default_factory=list)       # unsuppressed
    baselined: list = field(default_factory=list)      # matched baseline
    files_checked: int = 0

    def worst(self) -> int:
        return max((f.severity for f in self.findings), default=0)

    def count_at_least(self, threshold: Severity) -> int:
        return sum(1 for f in self.findings if f.severity >= threshold)
