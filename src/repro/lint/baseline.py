"""Baseline (grandfathering) support.

A baseline file records findings that are acknowledged and deliberately
kept, each with a one-line justification.  Matching is by fingerprint
(rule + path + message), so a baselined finding stays suppressed while
the offending construct is unchanged, and resurfaces the moment its
message (event name, class name, ...) changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import LintError
from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    message: str = ""
    justification: str = ""

    def as_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "path": self.path,
                "fingerprint": self.fingerprint, "message": self.message,
                "justification": self.justification}


class Baseline:
    """A set of grandfathered findings keyed by fingerprint."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self.entries: List[BaselineEntry] = list(entries)
        self._by_fp = {e.fingerprint: e for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self._by_fp

    def split(self, findings: Sequence[Finding],
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (fresh, baselined)."""
        fresh, matched = [], []
        for finding in findings:
            (matched if finding in self else fresh).append(finding)
        return fresh, matched

    @classmethod
    def from_findings(cls, findings: Sequence[Finding],
                      justification: str = "grandfathered") -> "Baseline":
        return cls(BaselineEntry(rule=f.rule, path=f.path,
                                 fingerprint=f.fingerprint,
                                 message=f.message,
                                 justification=justification)
                   for f in findings)

    # -- file IO --------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintError(
                f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) \
                or raw.get("version") != BASELINE_VERSION:
            raise LintError(
                f"baseline {path}: expected version {BASELINE_VERSION}")
        entries = []
        for item in raw.get("entries", []):
            try:
                entries.append(BaselineEntry(
                    rule=item["rule"], path=item["path"],
                    fingerprint=item["fingerprint"],
                    message=item.get("message", ""),
                    justification=item.get("justification", "")))
            except (KeyError, TypeError) as exc:
                raise LintError(
                    f"baseline {path}: malformed entry {item!r}") from exc
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro.lint",
            "entries": [e.as_dict() for e in sorted(
                self.entries, key=lambda e: (e.path, e.rule,
                                             e.fingerprint))],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")
