"""Concurrency-correctness rules (R007-R011).

The serve stack (asyncio) and the execution engine (process pool) are
the layers where a single bug silently breaks the repo's strongest
invariant — bit-identical results under batching, caching, and fan-out.
These rules prove the async/multiprocess safety contracts statically,
using the per-function scopes and CFGs from :mod:`repro.lint.cfg`:

* R007 — no blocking calls inside ``async def`` bodies (``time.sleep``,
  sync socket/file/subprocess I/O, ``Engine.run`` without an executor
  offload);
* R008 — every created task/future is awaited, gathered, stored, or
  explicitly detached through the sanctioned ``detach_future`` helper;
  a future that can reach the function exit untouched on some
  non-exception path is a leak;
* R009 — shared mutable state is not written from both async and sync
  (worker/executor) contexts without a lock, and no code writes
  private attributes on objects it does not own (the ad-hoc
  ``fut._repro_meta`` shape);
* R010 — everything submitted to a ``ProcessPoolExecutor`` is
  import-resolvable and picklable by construction: top-level
  callables only, no lambdas, closures, or bound methods;
* R011 — contextvar hygiene: worker-side functions (the ones that run
  in pool processes) never read the request contextvars directly; the
  sanctioned channels are ``to_wire`` and the task-tags handoff
  re-established via ``request_scope``.

All five are whole-module analyses but deliberately *local*: they
never chase imports, so a contract they cannot prove is silently
skipped rather than guessed at.  The runtime counterpart — the
concurrency sanitizer in :mod:`repro.lint.sanitizer` — covers the
dynamic residue (actual loop blocking, actual unretrieved futures,
actual cross-process divergence).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .cfg import build_cfg, leaks_to_exit, walk_own
from .engine import ParsedModule, Rule, register
from .findings import Finding, Severity
from .model_facts import ModelFacts
from .rules import _dotted

#: the one sanctioned foreign-future write (see serve/batcher.py)
DETACH_HELPER = "detach_future"


def _module_imports(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            names.add(node.module.split(".")[0])
    return names


def _imported_names(tree: ast.Module) -> Set[str]:
    """Local names bound by import statements (module level)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


# ---- R007 ----------------------------------------------------------------

_BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "socket.socket": "use asyncio transports or run in an executor",
    "socket.create_connection": "use `loop.create_connection`",
    "socket.getaddrinfo": "use `loop.getaddrinfo`",
    "subprocess.run": "use `asyncio.create_subprocess_exec`",
    "subprocess.call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_output": "use `asyncio.create_subprocess_exec`",
    "subprocess.Popen": "use `asyncio.create_subprocess_exec`",
    "urllib.request.urlopen": "offload to an executor",
    "requests.get": "offload to an executor",
    "requests.post": "offload to an executor",
    "requests.put": "offload to an executor",
    "requests.delete": "offload to an executor",
    "requests.request": "offload to an executor",
    "http.client.HTTPConnection": "offload to an executor",
}

_BLOCKING_METHODS = ("read_text", "write_text", "read_bytes",
                     "write_bytes")


@register
class AsyncBlockingRule(Rule):
    """R007: no blocking calls inside ``async def`` bodies.

    One synchronous sleep, file read, or in-loop ``Engine.run`` stalls
    *every* in-flight request sharing the event loop — the exact
    failure mode the micro-batcher exists to avoid.  Offload via
    ``run_in_executor``/``asyncio.to_thread`` (the batcher's
    ``functools.partial(self.engine.run, ...)`` shape is fine: that is
    a reference, not a call).  Nested synchronous ``def``/lambdas are
    excluded — they run wherever they are called.
    """

    id = "R007"
    title = "blocking call in async function"
    severity = Severity.ERROR

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        scopes = module.function_scopes()
        for scope in scopes.functions:
            if not scope.is_async:
                continue
            for node in walk_own(scope.node):
                if isinstance(node, ast.Call):
                    yield from self._check_call(module, scope, node)

    def _check_call(self, module, scope, node: ast.Call):
        dotted = _dotted(node.func)
        hint = _BLOCKING_CALLS.get(dotted)
        if hint is not None:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"blocking call `{dotted}(...)` in async function "
                f"`{scope.qualname}`; {hint}",
                fixable=(dotted == "time.sleep"))
            return
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"blocking `open(...)` in async function "
                f"`{scope.qualname}`; offload file I/O to an executor")
            return
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _BLOCKING_METHODS:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"blocking `.{node.func.attr}(...)` in async "
                    f"function `{scope.qualname}`; offload file I/O "
                    f"to an executor")
            elif node.func.attr == "run" and \
                    _dotted(node.func.value).endswith("engine"):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"direct `Engine.run(...)` in async function "
                    f"`{scope.qualname}` blocks the event loop for "
                    f"the whole batch; offload via "
                    f"`loop.run_in_executor(None, functools.partial("
                    f"engine.run, ...))`")


# ---- R008 ----------------------------------------------------------------

_CREATION_TAILS = ("create_task", "ensure_future", "create_future",
                   "run_in_executor", "to_thread", "submit")


def _is_creation(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    return bool(dotted) and dotted.split(".")[-1] in _CREATION_TAILS


@register
class FutureLeakRule(Rule):
    """R008: every created task/future is consumed or detached.

    A fire-and-forget ``create_task``/``submit`` whose result is never
    awaited loses exceptions (asyncio logs "exception was never
    retrieved" *at garbage-collection time*, far from the bug) and
    races shutdown.  Consumption is any later mention of the binding —
    ``await``, ``gather``, storing it, passing it on (including to the
    sanctioned ``detach_future`` helper).  The CFG query flags a
    future that can reach the function exit untouched on some
    non-exception path, so consuming on one branch of an ``if`` is not
    enough.
    """

    id = "R008"
    title = "task/future is never awaited or detached"
    severity = Severity.ERROR

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        scopes = module.function_scopes()
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Expr) and _is_creation(stmt.value):
                yield self._leak(module, stmt.value, "<module>")
        for scope in scopes.functions:
            cfg = None
            for node in walk_own(scope.node):
                if isinstance(node, ast.Expr) and \
                        _is_creation(node.value):
                    yield self._leak(module, node.value, scope.qualname)
                elif isinstance(node, ast.Assign) and \
                        _is_creation(node.value) and \
                        len(node.targets) == 1 and \
                        isinstance(node.targets[0], ast.Name):
                    if cfg is None:
                        cfg = build_cfg(scope.node)
                    if leaks_to_exit(cfg, node, node.targets[0].id):
                        yield self._leak(module, node.value,
                                         scope.qualname,
                                         name=node.targets[0].id)

    def _leak(self, module, call: ast.Call, qualname: str,
              name: Optional[str] = None) -> Finding:
        what = f"`{name}`" if name else "the task/future"
        return self.finding(
            module, call.lineno, call.col_offset,
            f"`{_dotted(call.func)}(...)` in `{qualname}` creates a "
            f"task/future but {what} can reach the function exit "
            f"without being awaited, gathered, stored, or handed to "
            f"`{DETACH_HELPER}(...)`")


# ---- R009 ----------------------------------------------------------------

_MUTATORS = ("append", "add", "update", "pop", "clear", "extend",
             "remove", "discard", "insert", "setdefault", "appendleft",
             "popleft")

_GUARD_MARKERS = ("lock", "mutex", "cond", "sem")

_LIFECYCLE_METHODS = ("__init__", "__post_init__", "__new__")


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_guard(item: ast.withitem) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    dotted = _dotted(expr).lower()
    return any(marker in dotted for marker in _GUARD_MARKERS)


@register
class SharedStateRule(Rule):
    """R009: shared mutable state needs a documented sync point.

    Two shapes broke (or nearly broke) the serve stack and are now
    banned:

    * **foreign private writes** — stamping private attributes on an
      object another component owns (``fut._repro_meta = ...``,
      ``handle._loop = loop``).  The one sanctioned shape is the named
      ``detach_future`` helper in ``serve/batcher.py``, which this
      rule allowlists *by function name*, not attribute spelling.
    * **dual-context writes** — an attribute or module global written
      from both an ``async def`` (event-loop context) and a plain
      ``def`` (thread/worker context) with no ``with <lock>:`` around
      at least the unguarded writes.  ``__init__``/``__post_init__``
      do not count as writers (construction happens-before sharing).

    Only modules that import ``asyncio``/``concurrent``/``threading``
    are checked — purely synchronous code has no second context.
    """

    id = "R009"
    title = "shared mutable state written without a sync point"
    severity = Severity.ERROR

    def applies_to(self, module: ParsedModule) -> bool:
        imports = _module_imports(module.tree)
        return bool(imports & {"asyncio", "concurrent", "threading",
                               "multiprocessing"})

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        yield from self._foreign_private_writes(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._dual_context_attrs(module, node)
        yield from self._dual_context_globals(module)

    # -- foreign private writes -----------------------------------------

    def _foreign_private_writes(self, module: ParsedModule):
        scopes = module.function_scopes()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                attr = target.attr
                if not attr.startswith("_") or attr.startswith("__"):
                    continue
                if _root_name(target) in ("self", "cls"):
                    continue
                scope = scopes.scope_of(node)
                if scope is not None and scope.name == DETACH_HELPER:
                    continue
                owner = scope.qualname if scope else "<module>"
                yield self.finding(
                    module, target.lineno, target.col_offset,
                    f"`{owner}` writes private attribute "
                    f"`{_dotted(target.value)}.{attr}` on an object it "
                    f"does not own; move the write into a method of "
                    f"the owning class or the sanctioned "
                    f"`{DETACH_HELPER}` helper")

    # -- dual-context class attributes ----------------------------------

    def _method_writes(self, method) -> List[Tuple[str, ast.AST, bool]]:
        """(attr, node, guarded) for every ``self.X`` write."""
        writes: List[Tuple[str, ast.AST, bool]] = []

        def self_attr(node: ast.AST) -> Optional[str]:
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "self":
                return node.attr
            return None

        def visit(node: ast.AST, guarded: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                guarded = guarded or any(_is_guard(item)
                                         for item in node.items)
            if isinstance(node, (ast.Assign, ast.AugAssign,
                                 ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    attr = self_attr(target)
                    if attr is None and isinstance(target,
                                                   ast.Subscript):
                        attr = self_attr(target.value)
                    if attr is not None:
                        writes.append((attr, target, guarded))
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATORS:
                attr = self_attr(node.func.value)
                if attr is not None:
                    writes.append((attr, node, guarded))
            for child in ast.iter_child_nodes(node):
                visit(child, guarded)

        visit(method, False)
        return writes

    def _dual_context_attrs(self, module: ParsedModule,
                            cls: ast.ClassDef):
        by_attr: Dict[str, Dict[str, List[Tuple[ast.AST, bool]]]] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name in _LIFECYCLE_METHODS:
                continue
            context = "async" \
                if isinstance(method, ast.AsyncFunctionDef) else "sync"
            for attr, node, guarded in self._method_writes(method):
                by_attr.setdefault(attr, {}).setdefault(
                    context, []).append((node, guarded))
        for attr, contexts in sorted(by_attr.items()):
            if "async" not in contexts or "sync" not in contexts:
                continue
            unguarded = [node
                         for writes in contexts.values()
                         for node, guarded in writes if not guarded]
            if not unguarded:
                continue
            first = min(unguarded, key=lambda n: (n.lineno,
                                                  n.col_offset))
            yield self.finding(
                module, first.lineno, first.col_offset,
                f"`{cls.name}.{attr}` is written from both async and "
                f"sync methods without a lock; guard the writes with "
                f"`with <lock>:` or confine them to one context")

    # -- dual-context module globals ------------------------------------

    def _dual_context_globals(self, module: ParsedModule):
        mutables: Set[str] = set()
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and \
                    len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                value = stmt.value
                is_factory = isinstance(value, ast.Call) and \
                    _dotted(value.func).split(".")[-1] in (
                        "dict", "list", "set", "defaultdict",
                        "OrderedDict", "deque")
                if isinstance(value, (ast.Dict, ast.List,
                                      ast.Set)) or is_factory:
                    mutables.add(stmt.targets[0].id)
        if not mutables:
            return

        scopes = module.function_scopes()
        writers: Dict[str, Dict[str, List[Tuple[ast.AST, bool]]]] = {}

        for scope in scopes.functions:
            declared_global: Set[str] = set()
            context = "async" if scope.is_async else "sync"

            def visit(node: ast.AST, guarded: bool) -> None:
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    guarded = guarded or any(_is_guard(item)
                                             for item in node.items)
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
                hit: Optional[Tuple[str, ast.AST]] = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets \
                        if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Name) and \
                                target.id in declared_global:
                            hit = (target.id, target)
                        elif isinstance(target, ast.Subscript) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id in mutables:
                            hit = (target.value.id, target)
                elif isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _MUTATORS and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id in mutables:
                    hit = (node.func.value.id, node)
                if hit is not None:
                    writers.setdefault(hit[0], {}).setdefault(
                        context, []).append((hit[1], guarded))
                for child in ast.iter_child_nodes(node):
                    if not isinstance(child, (ast.FunctionDef,
                                              ast.AsyncFunctionDef,
                                              ast.Lambda)):
                        visit(child, guarded)

            visit(scope.node, False)

        for name, contexts in sorted(writers.items()):
            if "async" not in contexts or "sync" not in contexts:
                continue
            unguarded = [node
                         for writes in contexts.values()
                         for node, guarded in writes if not guarded]
            if not unguarded:
                continue
            first = min(unguarded, key=lambda n: (n.lineno,
                                                  n.col_offset))
            yield self.finding(
                module, first.lineno, first.col_offset,
                f"module global `{name}` is written from both async "
                f"and sync functions without a lock")


# ---- R010 ----------------------------------------------------------------

def _returns_process_pool(func) -> bool:
    returns = getattr(func, "returns", None)
    return returns is not None and \
        _dotted(returns).split(".")[-1] == "ProcessPoolExecutor"


@register
class PicklableSubmitRule(Rule):
    """R010: process-pool work must be picklable by construction.

    ``ProcessPoolExecutor`` pickles the callable *by reference*: it
    must be import-resolvable in the child (a top-level ``def``), and
    lambdas, closures, and bound methods all fail — some at submit
    time, some only when the child unpickles, with a stack trace that
    points nowhere near the bug.  Pool-typed names are inferred from
    ``ProcessPoolExecutor(...)`` constructions and from calls to
    functions annotated ``-> ProcessPoolExecutor`` (the engine's
    ``_ensure_pool``); ``ThreadPoolExecutor`` names are exempt.  A
    first argument bound through ``x = f if cond else g`` is resolved
    through both branches.  ``register_task_kind`` runners get the
    same treatment — they are called inside pool workers.
    """

    id = "R010"
    title = "unpicklable callable submitted to a process pool"
    severity = Severity.ERROR

    def applies_to(self, module: ParsedModule) -> bool:
        return "ProcessPoolExecutor" in module.source or \
            "register_task_kind" in module.source

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        scopes = module.function_scopes()
        module_defs = {
            stmt.name for stmt in module.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        } | _imported_names(module.tree)
        nested_defs = {s.name for s in scopes.functions
                       if s.parent is not None}
        factories = {
            s.name for s in scopes.functions
            if _returns_process_pool(s.node)
        }
        self_pools = self._self_attr_pools(module.tree)

        for scope in scopes.functions:
            env = self._local_env(scope, factories)
            for node in walk_own(scope.node):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "submit":
                    receiver = _dotted(node.func.value)
                    kind = env.get(receiver) or self_pools.get(receiver)
                    if kind == "process":
                        yield from self._check_submit(
                            module, scope, node, env, module_defs,
                            nested_defs)
                elif _dotted(node.func).split(".")[-1] == \
                        "register_task_kind" and len(node.args) >= 2:
                    yield from self._check_runner(
                        module, scope, node.args[1], module_defs,
                        nested_defs)
        # module-level register_task_kind(kind, fn) calls
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    scopes.scope_of(node) is None and \
                    _dotted(node.func).split(".")[-1] == \
                    "register_task_kind" and len(node.args) >= 2:
                yield from self._check_runner(
                    module, None, node.args[1], module_defs,
                    nested_defs)

    @staticmethod
    def _pool_kind(value: ast.AST, factories: Set[str]) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        tail = _dotted(value.func).split(".")[-1]
        if tail == "ProcessPoolExecutor":
            return "process"
        if tail == "ThreadPoolExecutor":
            return "thread"
        if tail in factories:
            return "process"
        return None

    def _self_attr_pools(self, tree: ast.Module) -> Dict[str, str]:
        pools: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Attribute):
                    kind = self._pool_kind(node.value, set())
                    if kind is not None:
                        pools[_dotted(target)] = kind
        return pools

    def _local_env(self, scope, factories: Set[str]) -> Dict[str, str]:
        env: Dict[str, str] = {}
        for node in walk_own(scope.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                kind = self._pool_kind(node.value, factories)
                if kind is not None:
                    env[node.targets[0].id] = kind
        return env

    def _check_submit(self, module, scope, call: ast.Call, env,
                      module_defs, nested_defs):
        if call.args:
            yield from self._check_callable(
                module, scope, call.args[0], module_defs, nested_defs)
        for arg in list(call.args[1:]) + \
                [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, (ast.Lambda, ast.GeneratorExp)):
                    label = "lambda" \
                        if isinstance(sub, ast.Lambda) else "generator"
                    yield self.finding(
                        module, sub.lineno, sub.col_offset,
                        f"{label} passed as a process-pool argument "
                        f"in `{scope.qualname}` cannot be pickled; "
                        f"pass primitives or frozen dataclasses")

    def _check_callable(self, module, scope, arg: ast.AST,
                        module_defs, nested_defs,
                        _depth: int = 0):
        qualname = scope.qualname if scope else "<module>"
        if isinstance(arg, ast.Lambda):
            yield self.finding(
                module, arg.lineno, arg.col_offset,
                f"lambda submitted to a process pool in `{qualname}` "
                f"cannot be pickled; use a top-level `def`")
            return
        if isinstance(arg, ast.Attribute):
            if _root_name(arg) == "self":
                yield self.finding(
                    module, arg.lineno, arg.col_offset,
                    f"bound method `{_dotted(arg)}` submitted to a "
                    f"process pool in `{qualname}` pickles the whole "
                    f"instance; use a top-level `def`")
            return
        if not isinstance(arg, ast.Name) or _depth > 4:
            return
        if arg.id in nested_defs and arg.id not in module_defs:
            yield self.finding(
                module, arg.lineno, arg.col_offset,
                f"`{arg.id}` submitted to a process pool in "
                f"`{qualname}` is a nested function (closure) and is "
                f"not import-resolvable in the worker; move it to "
                f"module level")
            return
        if arg.id in module_defs or scope is None:
            return
        # resolve through local single-assignment bindings, including
        # the `run_one = traced if cond else plain` shape
        for node in walk_own(scope.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == arg.id:
                value = node.value
                branches = [value.body, value.orelse] \
                    if isinstance(value, ast.IfExp) else [value]
                for branch in branches:
                    if isinstance(branch, (ast.Name, ast.Lambda,
                                           ast.Attribute)):
                        yield from self._check_callable(
                            module, scope, branch, module_defs,
                            nested_defs, _depth + 1)

    def _check_runner(self, module, scope, arg: ast.AST,
                      module_defs, nested_defs):
        qualname = scope.qualname if scope else "<module>"
        if isinstance(arg, ast.Lambda):
            yield self.finding(
                module, arg.lineno, arg.col_offset,
                f"lambda registered as a task runner in `{qualname}` "
                f"cannot be pickled; use a top-level `def`")
        elif isinstance(arg, ast.Name) and arg.id in nested_defs \
                and arg.id not in module_defs:
            yield self.finding(
                module, arg.lineno, arg.col_offset,
                f"nested function `{arg.id}` registered as a task "
                f"runner in `{qualname}` is not import-resolvable in "
                f"pool workers; move it to module level")
        elif isinstance(arg, ast.Attribute) and _root_name(arg) == \
                "self":
            yield self.finding(
                module, arg.lineno, arg.col_offset,
                f"bound method `{_dotted(arg)}` registered as a task "
                f"runner in `{qualname}`; use a top-level `def`")


# ---- R011 ----------------------------------------------------------------

_CONTEXT_READERS = ("current_request", "current_request_id")

_SANCTIONED = ("request_scope", "to_wire", "merge_wire")


@register
class ContextvarHygieneRule(Rule):
    """R011: contextvars do not cross the executor boundary.

    ``contextvars`` propagate into threads (via ``run_in_executor``'s
    context copy) but **not** into pool processes — a worker reading
    ``current_request()`` gets the child interpreter's empty default,
    so traces silently detach.  The sanctioned channels are explicit:
    serialize with ``to_wire`` before submit, re-establish with
    ``request_scope(task.tags[0])`` inside the worker.  Worker-side
    functions are identified structurally: first arguments of
    process-pool ``submit`` calls, ``register_task_kind`` runners, and
    the values of module-level ``*_RUNNERS`` dispatch tables.  The
    check is local to the worker function body (it does not chase
    calls into other modules).
    """

    id = "R011"
    title = "contextvar read across an executor boundary"
    severity = Severity.ERROR

    def applies_to(self, module: ParsedModule) -> bool:
        return "ProcessPoolExecutor" in module.source or \
            "register_task_kind" in module.source or \
            "_RUNNERS" in module.source

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        scopes = module.function_scopes()
        worker_names = self._worker_names(module, scopes)
        if not worker_names:
            return
        contextvars = {
            stmt.targets[0].id
            for stmt in module.tree.body
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and _dotted(stmt.value.func).split(".")[-1] == "ContextVar"
        }
        for scope in scopes.functions:
            if scope.parent is not None or \
                    scope.name not in worker_names:
                continue
            for node in ast.walk(scope.node):
                if not isinstance(node, ast.Call):
                    continue
                tail = _dotted(node.func).split(".")[-1]
                if tail in _CONTEXT_READERS:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"worker function `{scope.qualname}` reads "
                        f"the request contextvar via `{tail}()`; "
                        f"contextvars do not cross the process "
                        f"boundary — re-establish with "
                        f"`request_scope(task.tags[0])` or pass state "
                        f"through `to_wire`")
                elif isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "get" and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id in contextvars:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"worker function `{scope.qualname}` reads "
                        f"contextvar `{node.func.value.id}` directly; "
                        f"it is empty in pool workers — use "
                        f"`request_scope`/`to_wire` instead")

    def _worker_names(self, module: ParsedModule, scopes) -> Set[str]:
        names: Set[str] = set()
        # *_RUNNERS dispatch tables
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and stmt.targets[0].id.endswith("_RUNNERS") \
                    and isinstance(stmt.value, ast.Dict):
                for value in stmt.value.values:
                    if isinstance(value, ast.Name):
                        names.add(value.id)
        for scope in scopes.functions:
            for node in walk_own(scope.node):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "submit" and node.args:
                    names.update(self._resolve_names(
                        scope, node.args[0]))
                elif _dotted(node.func).split(".")[-1] == \
                        "register_task_kind" and len(node.args) >= 2 \
                        and isinstance(node.args[1], ast.Name):
                    names.add(node.args[1].id)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    scopes.scope_of(node) is None and \
                    _dotted(node.func).split(".")[-1] == \
                    "register_task_kind" and len(node.args) >= 2 and \
                    isinstance(node.args[1], ast.Name):
                names.add(node.args[1].id)
        return names

    def _resolve_names(self, scope, arg: ast.AST) -> Set[str]:
        if not isinstance(arg, ast.Name):
            return set()
        resolved = {arg.id}
        for node in walk_own(scope.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == arg.id:
                value = node.value
                branches = [value.body, value.orelse] \
                    if isinstance(value, ast.IfExp) else [value]
                for branch in branches:
                    if isinstance(branch, ast.Name):
                        resolved.add(branch.id)
        return resolved
