"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .findings import Finding, LintResult, Severity

JSON_SCHEMA_VERSION = 1


def _counts(findings: List[Finding]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0, "info": 0}
    for finding in findings:
        counts[finding.severity.name.lower()] += 1
    return counts


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """One ``path:line:col: RULE severity: message`` line per finding."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} "
        f"{f.severity.name.lower()}: {f.message}"
        for f in result.findings
    ]
    counts = _counts(result.findings)
    summary = (f"{len(result.findings)} finding"
               f"{'' if len(result.findings) == 1 else 's'} "
               f"({counts['error']} error, {counts['warning']} warning) "
               f"in {result.files_checked} files")
    if result.baselined:
        summary += f"; {len(result.baselined)} baselined"
    lines.append(summary)
    if verbose and result.baselined:
        lines.append("baselined findings:")
        lines.extend(
            f"  {f.path}:{f.line}: {f.rule}: {f.message} "
            f"[{f.fingerprint}]"
            for f in result.baselined)
    return "\n".join(lines)


def render_json(result: LintResult, *,
                threshold: Optional[Severity] = None) -> str:
    """Machine-readable report (stable schema, see tests)."""
    threshold = threshold if threshold is not None else Severity.WARNING
    by_rule: Dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro.lint",
        "files_checked": result.files_checked,
        "counts": _counts(result.findings),
        "by_rule": dict(sorted(by_rule.items())),
        "baselined": len(result.baselined),
        "exit_code": 1 if result.count_at_least(threshold) else 0,
        "findings": [f.as_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2)
