"""The lint engine: file walking, parsing, rule dispatch, suppression.

The engine is deliberately dumb: it parses every Python file once,
hands the AST to each registered rule, and collects findings.  All
repo-specific knowledge lives in :mod:`repro.lint.rules`; all contract
tables live in :mod:`repro.lint.model_facts`.

Suppression works at two levels:

* inline — a ``# repro-lint: disable=R001`` (or ``disable=all``)
  comment on the offending line silences that line;
* baseline — a committed ``lint-baseline.json`` grandfathers known
  findings by fingerprint (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from ..errors import LintError
from .findings import Finding, LintResult, Severity
from .model_facts import ModelFacts, load_model_facts

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: Path
    relpath: str            # package-relative, forward slashes
    source: str
    lines: List[str]
    tree: ast.Module
    _scopes: Optional[object] = None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def function_scopes(self):
        """Lazily built :class:`repro.lint.cfg.ModuleScopes` for this
        module, shared by every rule that needs qualname attribution."""
        if self._scopes is None:
            from .cfg import collect_scopes
            self._scopes = collect_scopes(self.tree)
        return self._scopes


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``title``/``severity`` and override
    :meth:`check_module` (runs per file) and/or :meth:`check_project`
    (runs once per engine run, for whole-tree contracts like the
    component partition).
    """

    id: str = "R000"
    title: str = ""
    severity: Severity = Severity.WARNING

    def applies_to(self, module: ParsedModule) -> bool:
        return True

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        return ()

    def check_project(self, facts: ModelFacts,
                      modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        return ()

    # -- helpers shared by subclasses -----------------------------------

    def finding(self, module_or_path, line: int, col: int, message: str,
                *, severity: Optional[Severity] = None,
                fixable: bool = False) -> Finding:
        path = module_or_path.relpath \
            if isinstance(module_or_path, ParsedModule) else module_or_path
        return Finding(rule=self.id,
                       severity=severity or self.severity,
                       path=path, line=line, col=col, message=message,
                       fixable=fixable)


_RULE_REGISTRY: List[type] = []


def register(cls: type) -> type:
    """Class decorator adding a rule to the default rule set."""
    _RULE_REGISTRY.append(cls)
    return cls


def default_rules() -> List[Rule]:
    # importing the rule modules populates the registry
    from . import concurrency as _concurrency  # noqa: F401
    from . import rules as _rules  # noqa: F401
    return [cls() for cls in _RULE_REGISTRY]


def _suppressed(finding: Finding, module: ParsedModule) -> bool:
    match = _DISABLE_RE.search(module.line_text(finding.line))
    if not match:
        return False
    tokens = {t.strip().upper() for t in match.group(1).split(",")}
    return "ALL" in tokens or finding.rule.upper() in tokens


class LintEngine:
    """Run a rule set over a tree rooted at the ``repro`` package."""

    def __init__(self, package_root: Optional[Path] = None,
                 rules: Optional[Sequence[Rule]] = None,
                 facts: Optional[ModelFacts] = None):
        if package_root is None:
            package_root = Path(__file__).resolve().parent.parent
        self.package_root = Path(package_root)
        self.rules = list(rules) if rules is not None else default_rules()
        self._facts = facts

    @property
    def facts(self) -> ModelFacts:
        if self._facts is None:
            self._facts = load_model_facts(self.package_root)
        return self._facts

    # -- parsing --------------------------------------------------------

    def _relpath(self, path: Path) -> str:
        try:
            rel = path.resolve().relative_to(
                self.package_root.resolve().parent)
        except ValueError:
            rel = path.resolve()   # outside the source tree: keep it
        return rel.as_posix()

    def parse_file(self, path: Path) -> ParsedModule:
        source = Path(path).read_text(encoding="utf-8")
        return self.parse_source(source, self._relpath(Path(path)),
                                 path=Path(path))

    def parse_source(self, source: str, relpath: str,
                     path: Optional[Path] = None) -> ParsedModule:
        tree = ast.parse(source, filename=relpath)
        return ParsedModule(path=path or Path(relpath), relpath=relpath,
                            source=source, lines=source.splitlines(),
                            tree=tree)

    # -- running --------------------------------------------------------

    def _check_module(self, module: ParsedModule) -> List[Finding]:
        found: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check_module(module, self.facts):
                if not _suppressed(finding, module):
                    found.append(finding)
        return found

    def lint_source(self, source: str, relpath: str) -> List[Finding]:
        """Lint one in-memory module (per-module rules only).

        The virtual ``relpath`` controls path-scoped rules, so tests can
        exercise e.g. the determinism rule with
        ``relpath="repro/core/fixture.py"``.
        """
        return self._check_module(self.parse_source(source, relpath))

    def run(self, paths: Optional[Sequence[Path]] = None) -> LintResult:
        """Lint files/directories (default: the whole package)."""
        result = LintResult()
        try:
            self.facts
        except LintError as exc:
            result.findings.append(Finding(
                rule="R000", severity=Severity.ERROR, path="<contracts>",
                line=1, col=0,
                message=f"cannot load model contracts: {exc}"))
            return result

        files: List[Path] = []
        for entry in (paths or [self.package_root]):
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.rglob("*.py")))
            else:
                files.append(entry)

        modules: List[ParsedModule] = []
        for path in files:
            try:
                module = self.parse_file(path)
            except SyntaxError as exc:
                result.findings.append(Finding(
                    rule="R000", severity=Severity.ERROR,
                    path=self._relpath(path), line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}"))
                continue
            except OSError as exc:
                raise LintError(f"cannot read {path}: {exc}") from exc
            modules.append(module)
            result.findings.extend(self._check_module(module))
        result.files_checked = len(modules)

        for rule in self.rules:
            result.findings.extend(rule.check_project(self.facts, modules))
        result.findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.rule))
        return result
