"""Static extraction of the model's bookkeeping contracts.

The rules in :mod:`repro.lint.rules` cross-check source code against
three ground-truth tables:

* ``EVENT_NAMES`` / ``UNIT_NAMES`` in ``repro/core/activity.py``,
* the :class:`~repro.power.components.Component` inventory and
  ``CATEGORIES`` in ``repro/power/components.py``,
* ``WELL_KNOWN_METRICS`` in ``repro/obs/metrics.py``.

Crucially the tables are recovered by *parsing* those modules, not by
importing them: ``components.py`` validates its own inventory at import
time, so a broken partition would crash the very tool meant to report
it.  Parsing keeps the linter usable on any tree a human can save.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..errors import LintError

# Section III-D: "39 components were defined and a counter-based power
# model was implemented for each of them."
EXPECTED_COMPONENT_COUNT = 39


@dataclass(frozen=True)
class ComponentDecl:
    """One ``Component(...)`` declaration as written in source."""

    name: str
    unit: str
    category: str
    events: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class ModelFacts:
    """The contract tables, plus source anchors for findings."""

    event_names: Tuple[str, ...]
    unit_names: Tuple[str, ...]
    categories: Tuple[str, ...]
    components: Tuple[ComponentDecl, ...]
    metric_decls: Dict[str, str] = field(default_factory=dict)
    activity_path: str = "repro/core/activity.py"
    components_path: str = "repro/power/components.py"
    metrics_path: str = "repro/obs/metrics.py"
    event_names_line: int = 1
    components_line: int = 1

    @property
    def event_set(self) -> frozenset:
        return frozenset(self.event_names)

    @property
    def unit_set(self) -> frozenset:
        return frozenset(self.unit_names)


def _parse(path: Path) -> ast.Module:
    try:
        return ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
    except (OSError, SyntaxError) as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc


def _module_assign(tree: ast.Module, name: str) -> Optional[ast.Assign]:
    """The last module-level ``name = ...`` assignment, if any."""
    found = None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    found = node
        elif isinstance(node, ast.AnnAssign):
            if (isinstance(node.target, ast.Name)
                    and node.target.id == name and node.value is not None):
                # normalize to the Assign shape callers expect
                assign = ast.Assign(targets=[node.target],
                                    value=node.value)
                assign.lineno = node.lineno
                found = assign
    return found


def _literal_strings(tree: ast.Module, name: str,
                     path: Path) -> Tuple[Tuple[str, ...], int]:
    node = _module_assign(tree, name)
    if node is None:
        raise LintError(f"{path}: no module-level {name} assignment")
    try:
        value = ast.literal_eval(node.value)
    except ValueError as exc:
        raise LintError(
            f"{path}:{node.lineno}: {name} is not a literal") from exc
    if not isinstance(value, (tuple, list)) \
            or not all(isinstance(v, str) for v in value):
        raise LintError(f"{path}: {name} must be a tuple of strings")
    return tuple(value), node.lineno


def _component_decls(tree: ast.Module,
                     path: Path) -> Tuple[ComponentDecl, ...]:
    decls = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if callee != "Component":
            continue
        fields: Dict[str, object] = {}
        order = ("name", "unit", "category", "events", "clock_share")
        for pos, arg in enumerate(node.args):
            if pos < len(order):
                fields[order[pos]] = arg
        for kw in node.keywords:
            if kw.arg:
                fields[kw.arg] = kw.value
        try:
            name = ast.literal_eval(fields["name"])
            unit = ast.literal_eval(fields["unit"])
            category = ast.literal_eval(fields["category"])
            events = tuple(ast.literal_eval(fields["events"]))
        except (KeyError, ValueError) as exc:
            raise LintError(
                f"{path}:{node.lineno}: Component(...) arguments must "
                f"be literals for static checking") from exc
        decls.append(ComponentDecl(name=str(name), unit=str(unit),
                                   category=str(category),
                                   events=tuple(str(e) for e in events),
                                   line=node.lineno))
    return tuple(decls)


def _metric_decls(tree: ast.Module, path: Path) -> Dict[str, str]:
    node = _module_assign(tree, "WELL_KNOWN_METRICS")
    if node is None:
        raise LintError(
            f"{path}: no WELL_KNOWN_METRICS declaration (R006 needs the "
            f"canonical metric-name table)")
    try:
        value = ast.literal_eval(node.value)
    except ValueError as exc:
        raise LintError(
            f"{path}:{node.lineno}: WELL_KNOWN_METRICS is not a "
            f"literal dict") from exc
    if not isinstance(value, dict):
        raise LintError(f"{path}: WELL_KNOWN_METRICS must be a dict")
    return {str(k): str(v) for k, v in value.items()}


def load_model_facts(package_root: Path) -> ModelFacts:
    """Extract the contract tables from a ``repro`` package directory."""
    package_root = Path(package_root)
    activity = package_root / "core" / "activity.py"
    components = package_root / "power" / "components.py"
    metrics = package_root / "obs" / "metrics.py"

    activity_tree = _parse(activity)
    event_names, event_line = _literal_strings(
        activity_tree, "EVENT_NAMES", activity)
    unit_names, _ = _literal_strings(activity_tree, "UNIT_NAMES", activity)

    components_tree = _parse(components)
    categories, comp_line = _literal_strings(
        components_tree, "CATEGORIES", components)
    decls = _component_decls(components_tree, components)

    rel = package_root.name  # "repro"
    return ModelFacts(
        event_names=event_names,
        unit_names=unit_names,
        categories=categories,
        components=decls,
        metric_decls=_metric_decls(_parse(metrics), metrics),
        activity_path=f"{rel}/core/activity.py",
        components_path=f"{rel}/power/components.py",
        metrics_path=f"{rel}/obs/metrics.py",
        event_names_line=event_line,
        components_line=comp_line,
    )
