"""Per-function scope and control-flow facts for the concurrency tier.

The original lint engine (PR 2) was single-construct AST matching; the
concurrency rules (R007-R011) need two more ingredients, both built
here once per module and cached on the :class:`ParsedModule`:

* **scopes** — every ``def``/``async def`` with its dotted qualname
  (``MicroBatcher.submit``, ``run_loadgen._fire``), async-ness, and
  enclosing class, plus an ``id(node) -> scope`` map so any finding can
  be attributed to the function it lives in.  This is what lets R003
  narrow its old path-prefix carve-out down to *named* functions with
  justifications.
* **a per-function CFG** — basic blocks over the statement list, with
  edges for branches, loops, try/except and early exits.  Exit edges
  are tagged ``return``/``raise``/``fall`` so path queries can excuse
  exception exits.  Await suspension points (``await`` / ``async for``
  / ``async with``) are recorded per block.

The CFG is deliberately approximate where Python control flow is
undecidable (exception edges originate at the try entry, ``while
True`` only exits through ``break``); rules built on it query
*reachability*, so the approximations are tuned to avoid false
positives on real code at the cost of missing some exotic leaks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: pseudo block id for the single function exit
EXIT = -1


@dataclass
class FunctionScope:
    """One ``def``/``async def`` and its dotted location in the module."""

    node: ast.AST
    qualname: str                       # e.g. "MicroBatcher.submit"
    is_async: bool
    class_name: Optional[str] = None    # nearest enclosing class, if a method
    parent: Optional["FunctionScope"] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def lineno(self) -> int:
        return self.node.lineno


class ModuleScopes:
    """Every function scope in one module, with node attribution."""

    def __init__(self) -> None:
        self.functions: List[FunctionScope] = []
        self._owner: Dict[int, FunctionScope] = {}

    def scope_of(self, node: ast.AST) -> Optional[FunctionScope]:
        """The innermost function owning ``node`` (None = module level)."""
        return self._owner.get(id(node))

    def qualname_of(self, node: ast.AST) -> str:
        scope = self.scope_of(node)
        return scope.qualname if scope is not None else ""


def collect_scopes(tree: ast.Module) -> ModuleScopes:
    """Walk a module once, building qualnames and node ownership."""
    scopes = ModuleScopes()

    def visit(node: ast.AST, current: Optional[FunctionScope],
              prefix: str, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES):
                scope = FunctionScope(
                    node=child, qualname=prefix + child.name,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    class_name=cls, parent=current)
                scopes.functions.append(scope)
                # the def statement itself belongs to the outer scope
                if current is not None:
                    scopes._owner[id(child)] = current
                visit(child, scope, scope.qualname + ".", None)
            elif isinstance(child, ast.ClassDef):
                if current is not None:
                    scopes._owner[id(child)] = current
                visit(child, current, prefix + child.name + ".",
                      child.name)
            else:
                if current is not None:
                    scopes._owner[id(child)] = current
                visit(child, current, prefix, cls)

    visit(tree, None, "", None)
    return scopes


def walk_own(func_node: ast.AST) -> Iterator[ast.AST]:
    """Nodes owned directly by a function: nested def/lambda bodies are
    yielded as single nodes but not descended into."""
    stack = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _FUNC_NODES + (ast.Lambda,)):
            stack.extend(ast.iter_child_nodes(node))


# ---- control-flow graph --------------------------------------------------

@dataclass
class Block:
    """A basic block: a run of statement *units* with no internal branch.

    Each unit is ``(stmt, expr_roots)`` — for simple statements the
    roots cover the whole statement, for compound statements only the
    expressions evaluated *at this block* (an ``if`` test, a loop
    iterable), with the branch bodies living in successor blocks.
    """

    id: int
    units: List[Tuple[ast.stmt, List[ast.AST]]] = field(
        default_factory=list)
    succ: List[Tuple[int, str]] = field(default_factory=list)
    suspends: bool = False          # contains an await point


@dataclass
class CFG:
    """Per-function control-flow graph (blocks + tagged edges)."""

    blocks: List[Block]
    entry: int
    stmt_at: Dict[int, Tuple[int, int]]   # id(stmt) -> (block id, unit idx)
    await_lines: List[int]

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]


_COMPOUND = (ast.If, ast.While, ast.For, ast.AsyncFor, ast.Try,
             ast.With, ast.AsyncWith)


def _own_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """Expression roots evaluated by the statement itself (compound
    statements exclude their bodies, which land in other blocks)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots: List[ast.AST] = []
        for item in stmt.items:
            roots.append(item.context_expr)
            if item.optional_vars is not None:
                roots.append(item.optional_vars)
        return roots
    if isinstance(stmt, ast.Try):
        return []
    return list(ast.iter_child_nodes(stmt))


def _has_await(roots: Sequence[ast.AST]) -> Optional[int]:
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Await):
                return node.lineno
    return None


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.stmt_at: Dict[int, Tuple[int, int]] = {}
        self.await_lines: List[int] = []

    def new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block

    def edge(self, src: Block, dst: int, kind: str = "next") -> None:
        if (dst, kind) not in src.succ:
            src.succ.append((dst, kind))

    def place(self, stmt: ast.stmt, block: Block) -> None:
        roots = _own_exprs(stmt)
        self.stmt_at[id(stmt)] = (block.id, len(block.units))
        block.units.append((stmt, roots))
        line = _has_await(roots)
        if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
            line = stmt.lineno
        if line is not None:
            block.suspends = True
            self.await_lines.append(line)

    # ``loop`` is (header block, after block) for break/continue targets.
    def stmts(self, body: Sequence[ast.stmt], current: Optional[Block],
              loop) -> Optional[Block]:
        for stmt in body:
            if current is None:         # unreachable, but keep modeling
                current = self.new_block()
            current = self.stmt(stmt, current, loop)
        return current

    def stmt(self, stmt: ast.stmt, current: Block, loop
             ) -> Optional[Block]:
        self.place(stmt, current)
        if isinstance(stmt, ast.Return):
            self.edge(current, EXIT, "return")
            return None
        if isinstance(stmt, ast.Raise):
            self.edge(current, EXIT, "raise")
            return None
        if isinstance(stmt, ast.Break):
            if loop is not None:
                self.edge(current, loop[1].id, "break")
            return None
        if isinstance(stmt, ast.Continue):
            if loop is not None:
                self.edge(current, loop[0].id, "continue")
            return None
        if isinstance(stmt, ast.If):
            return self._if(stmt, current, loop)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current, loop)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current, loop)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.stmts(stmt.body, current, loop)
        return current

    def _if(self, stmt: ast.If, current: Block, loop) -> Optional[Block]:
        body = self.new_block()
        self.edge(current, body.id, "true")
        ends = []
        body_end = self.stmts(stmt.body, body, loop)
        if body_end is not None:
            ends.append(body_end)
        if stmt.orelse:
            orelse = self.new_block()
            self.edge(current, orelse.id, "false")
            orelse_end = self.stmts(stmt.orelse, orelse, loop)
            if orelse_end is not None:
                ends.append(orelse_end)
        else:
            ends.append(current)        # condition false: fall through
        if not ends:
            return None
        join = self.new_block()
        for end in ends:
            self.edge(end, join.id)
        return join

    def _loop(self, stmt, current: Block, loop) -> Block:
        header = self.new_block()
        self.edge(current, header.id)
        self.place(stmt, header)
        body = self.new_block()
        self.edge(header, body.id, "iterate")
        after = self.new_block()
        # ``while True`` exits only through break
        infinite = (isinstance(stmt, ast.While)
                    and isinstance(stmt.test, ast.Constant)
                    and stmt.test.value is True)
        body_end = self.stmts(stmt.body, body, (header, after))
        if body_end is not None:
            self.edge(body_end, header.id, "loop")
        exit_from = header
        if stmt.orelse:
            orelse = self.new_block()
            if not infinite:
                self.edge(header, orelse.id, "exhausted")
            orelse_end = self.stmts(stmt.orelse, orelse, loop)
            if orelse_end is not None:
                self.edge(orelse_end, after.id)
        elif not infinite:
            self.edge(exit_from, after.id, "exhausted")
        return after

    def _try(self, stmt: ast.Try, current: Block, loop
             ) -> Optional[Block]:
        body = self.new_block()
        self.edge(current, body.id)
        ends = []
        body_end = self.stmts(stmt.body, body, loop)
        if stmt.orelse and body_end is not None:
            body_end = self.stmts(stmt.orelse, body_end, loop)
        if body_end is not None:
            ends.append(body_end)
        for handler in stmt.handlers:
            hblock = self.new_block()
            # exceptions may fire anywhere in the body; edging from the
            # try entry keeps the graph simple (reachability-accurate
            # for code before the try)
            self.edge(current, hblock.id, "except")
            hend = self.stmts(handler.body, hblock, loop)
            if hend is not None:
                ends.append(hend)
        join = self.new_block() if (ends or stmt.finalbody) else None
        for end in ends:
            self.edge(end, join.id)
        if join is None:
            return None
        if stmt.finalbody:
            return self.stmts(stmt.finalbody, join, loop)
        return join if ends else None


def build_cfg(func_node: ast.AST) -> CFG:
    """Basic-block CFG for one ``def``/``async def`` body."""
    builder = _Builder()
    entry = builder.new_block()
    last = builder.stmts(func_node.body, entry, None)
    if last is not None:
        builder.edge(last, EXIT, "fall")
    return CFG(blocks=builder.blocks, entry=entry.id,
               stmt_at=builder.stmt_at,
               await_lines=sorted(set(builder.await_lines)))


# ---- reachability queries ------------------------------------------------

def _unit_loads(roots: Sequence[ast.AST], name: str) -> bool:
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and node.id == name:
                return True
    return False


def leaks_to_exit(cfg: CFG, creation_stmt: ast.stmt, name: str) -> bool:
    """True when some non-raise path runs from the creation of ``name``
    to the function exit without ever touching ``name`` again.

    Any later mention of the name (await, call argument, return value,
    container store, attribute access) counts as consumption; a path
    that exits via ``raise`` is excused (the error path is allowed to
    abandon work).  This is the R008 core query.
    """
    where = cfg.stmt_at.get(id(creation_stmt))
    if where is None:
        return False
    block_id, unit_idx = where
    block = cfg.block(block_id)
    # consumption later in the creation block gates every path through it
    for stmt, roots in block.units[unit_idx + 1:]:
        if _unit_loads(roots, name):
            return False

    def block_consumes(candidate: Block) -> bool:
        return any(_unit_loads(roots, name)
                   for _stmt, roots in candidate.units)

    seen = set()
    frontier = [dst for dst, kind in block.succ if kind != "raise"]
    while frontier:
        dst = frontier.pop()
        if dst == EXIT:
            return True
        if dst in seen:
            continue
        seen.add(dst)
        candidate = cfg.block(dst)
        if block_consumes(candidate):
            continue
        frontier.extend(d for d, kind in candidate.succ
                        if kind != "raise")
    return False
