"""Model-aware static analysis for the reproduction (``repro lint``).

The paper's methodology is bookkeeping discipline: Einspower and the
counter-based power models are only trustworthy because every latch and
activity event is accounted to exactly one of 39 components and the
activity streams are complete and reproducible (§III-D).  This package
proves those contracts without running a simulation:

=====  ==================================================================
R001   event/unit string literals resolve to EVENT_NAMES / UNIT_NAMES
R002   the 39-component inventory partitions the event space
R003   model code is deterministic (no clocks / unseeded RNG / set order)
R004   library code raises the repro.errors taxonomy
R005   config dataclasses are frozen; no mutable default arguments
R006   obs metric names are declared once in WELL_KNOWN_METRICS
R007   no blocking calls inside ``async def`` bodies
R008   every created task/future is consumed or explicitly detached
R009   shared mutable state crossing async/sync contexts needs a lock
R010   process-pool submissions are picklable by construction
R011   contextvars never cross the executor boundary directly
=====  ==================================================================

R007-R011 (the concurrency tier, PR 7) ride on per-function scopes and
control-flow graphs from :mod:`repro.lint.cfg`; their dynamic
counterpart is the runtime sanitizer in :mod:`repro.lint.sanitizer`
(``repro serve --sanitize`` / ``REPRO_SANITIZE=1``).

Run ``repro lint`` from the CLI, or programmatically::

    from repro.lint import LintEngine
    result = LintEngine().run()
    for finding in result.findings:
        print(finding.path, finding.line, finding.message)
"""

from .baseline import Baseline, BaselineEntry, DEFAULT_BASELINE_NAME
from .cfg import CFG, FunctionScope, ModuleScopes, build_cfg, collect_scopes
from .engine import LintEngine, ParsedModule, Rule, default_rules, register
from .findings import Finding, LintResult, Severity, fingerprint
from .fixes import DEFAULT_FIX_RULES, apply_fixes
from .model_facts import (ComponentDecl, ModelFacts,
                          EXPECTED_COMPONENT_COUNT, load_model_facts)
from .reporters import render_json, render_text
from .sanitizer import (ConcurrencySanitizer, diff_double_run,
                        double_run_serve, get_sanitizer,
                        sanitize_enabled, sanitized, set_sanitizer)

__all__ = [
    "Baseline", "BaselineEntry", "DEFAULT_BASELINE_NAME",
    "CFG", "FunctionScope", "ModuleScopes", "build_cfg",
    "collect_scopes",
    "LintEngine", "ParsedModule", "Rule", "default_rules", "register",
    "Finding", "LintResult", "Severity", "fingerprint",
    "DEFAULT_FIX_RULES", "apply_fixes",
    "ComponentDecl", "ModelFacts", "EXPECTED_COMPONENT_COUNT",
    "load_model_facts",
    "render_json", "render_text",
    "ConcurrencySanitizer", "diff_double_run", "double_run_serve",
    "get_sanitizer", "sanitize_enabled", "sanitized", "set_sanitizer",
]
