"""Model-aware static analysis for the reproduction (``repro lint``).

The paper's methodology is bookkeeping discipline: Einspower and the
counter-based power models are only trustworthy because every latch and
activity event is accounted to exactly one of 39 components and the
activity streams are complete and reproducible (§III-D).  This package
proves those contracts without running a simulation:

=====  ==================================================================
R001   event/unit string literals resolve to EVENT_NAMES / UNIT_NAMES
R002   the 39-component inventory partitions the event space
R003   model code is deterministic (no clocks / unseeded RNG / set order)
R004   library code raises the repro.errors taxonomy
R005   config dataclasses are frozen; no mutable default arguments
R006   obs metric names are declared once in WELL_KNOWN_METRICS
=====  ==================================================================

Run ``repro lint`` from the CLI, or programmatically::

    from repro.lint import LintEngine
    result = LintEngine().run()
    for finding in result.findings:
        print(finding.path, finding.line, finding.message)
"""

from .baseline import Baseline, BaselineEntry, DEFAULT_BASELINE_NAME
from .engine import LintEngine, ParsedModule, Rule, default_rules, register
from .findings import Finding, LintResult, Severity, fingerprint
from .fixes import apply_fixes
from .model_facts import (ComponentDecl, ModelFacts,
                          EXPECTED_COMPONENT_COUNT, load_model_facts)
from .reporters import render_json, render_text

__all__ = [
    "Baseline", "BaselineEntry", "DEFAULT_BASELINE_NAME",
    "LintEngine", "ParsedModule", "Rule", "default_rules", "register",
    "Finding", "LintResult", "Severity", "fingerprint",
    "apply_fixes",
    "ComponentDecl", "ModelFacts", "EXPECTED_COMPONENT_COUNT",
    "load_model_facts",
    "render_json", "render_text",
]
