"""Repo-specific semantic rules.

Each rule proves one of the model's bookkeeping contracts *statically*
(PAPER.md §III-D: the power methodology is only trustworthy because
every latch and event is accounted to exactly one of the 39 components,
and the activity streams feeding the counter models are complete and
reproducible):

* R001 — every event/unit string literal handed to the activity
  interface resolves to ``EVENT_NAMES``/``UNIT_NAMES``;
* R002 — the component inventory is a total, disjoint partition of the
  event space over real clock-gating units and known categories;
* R003 — model code (``repro.core``, ``repro.power``, ``repro.pm``,
  ``repro.exec``, and — since PR 7 — ``repro.serve`` minus named
  wall-clock allowances) is deterministic: no wall clocks, no
  unseeded randomness, no iteration over unordered sets;
* R004 — library errors go through the ``repro.errors`` taxonomy;
* R005 — simulator configs are frozen dataclasses and no function has
  a mutable default argument;
* R006 — metric names used in ``obs`` wiring are declared once in
  ``WELL_KNOWN_METRICS`` with the right kind.

The concurrency tier (R007-R011) lives in
:mod:`repro.lint.concurrency`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Sequence

from .engine import ParsedModule, Rule, register
from .findings import Finding, Severity
from .model_facts import EXPECTED_COMPONENT_COUNT, ModelFacts


def _const_str(node: ast.AST) -> str:
    """The literal string value of a node, or '' if it is not one."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return ""


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``np.random.rand``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class EventLiteralRule(Rule):
    """R001: activity event/unit string literals must be declared.

    A typo'd event (``act.count("icache_acess")``) used to surface only
    at runtime, and only on code paths the workload actually exercised;
    in non-strict counters it would silently charge zero energy.  This
    rule resolves every literal against the canonical tables without
    running anything: ``count(...)`` first arguments against
    ``EVENT_NAMES``; ``busy(...)``/``utilization(...)`` against
    ``UNIT_NAMES``; subscripts of ``.events`` / ``.unit_busy_cycles``;
    and string keys/values of module-level dicts whose name mentions
    EVENT (the per-event energy tables and issue-event maps).
    """

    id = "R001"
    title = "event literal must resolve to EVENT_NAMES/UNIT_NAMES"
    severity = Severity.ERROR

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        events, units = facts.event_set, facts.unit_set
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, events, units)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(module, node,
                                                 events, units)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_event_dict(module, node, events)

    @staticmethod
    def _is_event_table_name(name: str) -> bool:
        # constant-style names only (_P9_EVENT_PJ, _ISSUE_EVENT); local
        # lowercase variables like Chrome-trace `event` dicts are not
        # activity tables
        return name.isupper() and "EVENT" in name

    def _check_call(self, module, node, events, units):
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "update" and isinstance(func.value, ast.Name) \
                and self._is_event_table_name(func.value.id):
            # _P10_EVENT_PJ.update({...}): check the literal dict's keys
            for arg in node.args:
                if isinstance(arg, ast.Dict):
                    yield from self._check_dict_entries(module, arg,
                                                        events)
            return
        if func.attr not in ("count", "busy", "utilization"):
            return
        # skip str.count / list.count on literals and call results, e.g.
        # bin(x).count("1")
        if isinstance(func.value, (ast.Constant, ast.Call)):
            return
        arg = node.args[0] if node.args else None
        if arg is None:
            for kw in node.keywords:
                if kw.arg in ("event", "unit"):
                    arg = kw.value
        name = _const_str(arg) if arg is not None else ""
        if not name or not name.isidentifier():
            return
        if func.attr == "count":
            if name not in events:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f'unknown activity event "{name}" passed to '
                    f".count() — not in EVENT_NAMES "
                    f"(declare it in repro/core/activity.py)")
        else:
            if name not in units:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f'unknown unit "{name}" passed to .{func.attr}() '
                    f"— not in UNIT_NAMES")

    def _check_subscript(self, module, node, events, units):
        value = node.value
        if not isinstance(value, ast.Attribute):
            return
        key = _const_str(node.slice)
        if not key or not key.isidentifier():
            return
        if value.attr == "events" and key not in events:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f'unknown activity event "{key}" in .events[...] '
                f"subscript — not in EVENT_NAMES")
        elif value.attr == "unit_busy_cycles" and key not in units:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f'unknown unit "{key}" in .unit_busy_cycles[...] '
                f"subscript — not in UNIT_NAMES")

    def _check_event_dict(self, module, node, events):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            targets = [node.target]
            value = node.value
        if not isinstance(value, ast.Dict):
            return
        named = any(isinstance(t, ast.Name)
                    and self._is_event_table_name(t.id)
                    for t in targets)
        if not named:
            return
        yield from self._check_dict_entries(module, value, events)

    def _check_dict_entries(self, module, value, events):
        for part in list(value.keys) + list(value.values):
            if part is None:
                continue
            text = _const_str(part)
            if text and text.isidentifier() and text not in events:
                yield self.finding(
                    module, part.lineno, part.col_offset,
                    f'unknown activity event "{text}" in event-keyed '
                    f"dict — not in EVENT_NAMES")


@register
class ComponentCoverageRule(Rule):
    """R002: the 39-component partition is total and disjoint.

    Every declared activity event must be owned by exactly one
    ``Component``; every component must charge a real clock-gating unit
    and a known Einspower category; and the inventory must stay at the
    paper's 39 entries.  This is ``validate_inventory()`` made static:
    it holds even for a tree too broken to import.
    """

    id = "R002"
    title = "component inventory must partition the event space"
    severity = Severity.ERROR

    def check_project(self, facts: ModelFacts,
                      modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        path = facts.components_path
        if len(facts.components) != EXPECTED_COMPONENT_COUNT:
            yield self.finding(
                path, facts.components_line, 0,
                f"expected {EXPECTED_COMPONENT_COUNT} components "
                f"(paper §III-D), found {len(facts.components)}")
        owners: Dict[str, str] = {}
        for comp in facts.components:
            if comp.unit not in facts.unit_set:
                yield self.finding(
                    path, comp.line, 0,
                    f'component "{comp.name}": unit "{comp.unit}" is '
                    f"not a clock-gating domain in UNIT_NAMES")
            if comp.category not in facts.categories:
                yield self.finding(
                    path, comp.line, 0,
                    f'component "{comp.name}": category '
                    f'"{comp.category}" not in CATEGORIES '
                    f"{tuple(facts.categories)}")
            for event in comp.events:
                if event not in facts.event_set:
                    yield self.finding(
                        path, comp.line, 0,
                        f'component "{comp.name}" charges unknown '
                        f'event "{event}" (not in EVENT_NAMES)')
                elif event in owners:
                    yield self.finding(
                        path, comp.line, 0,
                        f'event "{event}" charged to both '
                        f'"{owners[event]}" and "{comp.name}" — the '
                        f"partition must be disjoint")
                else:
                    owners[event] = comp.name
        for event in facts.event_names:
            if event not in owners:
                yield self.finding(
                    facts.activity_path, facts.event_names_line, 0,
                    f'event "{event}" is declared in EVENT_NAMES but '
                    f"owned by no component in "
                    f"{facts.components_path} — its energy would be "
                    f"charged nowhere")


# Wall-clock and entropy sources banned from model code.
_BANNED_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
}
_BANNED_TIME_NAMES = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time",
}
# numpy module-level RNG entry points (global hidden state); the
# Generator API obtained from a *seeded* default_rng is fine.
_NP_RANDOM_FUNCS = {
    "random", "rand", "randn", "randint", "random_sample", "choice",
    "shuffle", "permutation", "seed", "standard_normal", "uniform",
    "normal", "binomial",
}


@register
class DeterminismRule(Rule):
    """R003: model code must be reproducible.

    ``repro.core``, ``repro.power`` and ``repro.pm`` carry the
    "telemetry off => bit-identical results" guarantee (PR 1), and the
    counter-based power models are only validatable if two runs of the
    same trace produce the same activity stream.  Banned here: wall
    clocks, the seedless ``random`` module, numpy's global RNG,
    ``np.random.default_rng()`` without a seed, and iteration over set
    displays/calls (Python set order is not deterministic across
    processes) unless wrapped in ``sorted(...)``.

    Scope policy (revised in PR 7): the observability layer
    (``repro.obs``) measures wall time by design and stays exempt, but
    the serving layer is now *in* scope — the old blanket
    ``repro/serve/`` carve-out is retired in favour of
    ``WALL_CLOCK_ALLOWANCES``, a table of *named functions* that
    legitimately touch wall clocks or jitter RNGs (latency
    measurement, queue-wait accounting, client backoff), each with a
    one-line justification.  Everything else in ``repro.serve`` must
    be deterministic; the concurrency tier (R007-R011,
    :mod:`repro.lint.concurrency`) plus the runtime sanitizer cover
    what a static clock ban cannot.  Allowances excuse *calls* only —
    banned imports and unordered-set iteration are never excused.
    """

    id = "R003"
    title = "model code must be deterministic"
    severity = Severity.ERROR

    SCOPES = ("repro/core/", "repro/power/", "repro/pm/",
              "repro/exec/", "repro/serve/", "repro/cluster/")

    #: relpath -> {function qualname: justification}.  The only wall
    #: clock/RNG escape hatch in scoped code; every entry must say why
    #: the measurement is inherently wall-clock (these feed latency
    #: telemetry, never model results).
    WALL_CLOCK_ALLOWANCES: Dict[str, Dict[str, str]] = {
        "repro/exec/executor.py": {
            "Engine._execute_parallel":
                "wall-clock watchdog for per-batch deadline budgets "
                "(feeds supervision, never model results)",
        },
        "repro/serve/batcher.py": {
            "MicroBatcher.submit":
                "queue-wait vs service split for SLO accounting",
            "MicroBatcher._run_batch":
                "batch service-time measurement for SLO accounting",
        },
        "repro/serve/server.py": {
            "ReproServer._dispatch":
                "end-to-end request latency for access log + metrics",
        },
        "repro/serve/client.py": {
            "ServeClient.__post_init__":
                "seeded jitter RNG for retry backoff (seed is in the "
                "client config, so tests stay reproducible)",
            "ServeClient._once":
                "client-side latency measurement",
        },
        "repro/serve/loadgen.py": {
            "run_loadgen":
                "open-loop pacing and wall-clock throughput",
            "run_loadgen._fire":
                "per-request latency measurement",
        },
        "repro/cluster/router.py": {
            "ClusterRouter._proxy":
                "routed-request latency measurement for the cluster "
                "histogram (feeds telemetry, never routing decisions)",
        },
        "repro/cluster/workers.py": {
            "ProcessWorker._await_port":
                "wall-clock bound on a child process publishing its "
                "ephemeral port (supervision, never model results)",
        },
        "repro/cluster/supervisor.py": {
            "Cluster._await":
                "wall-clock bound on drain/health settling during "
                "rolling restarts (supervision, never model results)",
        },
    }

    def applies_to(self, module: ParsedModule) -> bool:
        return module.relpath.startswith(self.SCOPES)

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        allowed = self.WALL_CLOCK_ALLOWANCES.get(module.relpath, {})
        scopes = module.function_scopes() if allowed else None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if scopes is not None \
                        and scopes.qualname_of(node) in allowed:
                    continue
                yield from self._check_call(module, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(module, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(module, node.iter)
            elif isinstance(node, ast.comprehension):
                yield from self._check_iteration(module, node.iter)

    def _check_call(self, module, node):
        dotted = _dotted(node.func)
        if dotted in _BANNED_CALLS:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"non-deterministic call {dotted}() in model code — "
                f"route timing through repro.obs spans instead")
            return
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[-2] == "random":
            func = parts[-1]
            if func == "default_rng" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "np.random.default_rng() without a seed is "
                    "non-reproducible — pass an explicit seed")
            elif parts[0] in ("np", "numpy") and func in _NP_RANDOM_FUNCS:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"numpy global RNG ({dotted}) in model code — use "
                    f"a seeded np.random.default_rng(seed) Generator")
            elif parts[0] == "random":
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"stdlib random ({dotted}) has hidden global state "
                    f"— use a seeded np.random.default_rng(seed)")

    def _check_import(self, module, node):
        if node.module == "time":
            for alias in node.names:
                if alias.name in _BANNED_TIME_NAMES:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"importing time.{alias.name} into model code "
                        f"— wall clocks belong in repro.obs")
        elif node.module == "random":
            yield self.finding(
                module, node.lineno, node.col_offset,
                "importing from stdlib random in model code — use a "
                "seeded np.random.default_rng(seed)")

    def _check_iteration(self, module, iter_node):
        target = iter_node
        if isinstance(target, ast.Set):
            yield self.finding(
                module, target.lineno, target.col_offset,
                "iterating over a set display — order is not "
                "deterministic; wrap in sorted(...)")
        elif isinstance(target, ast.Call) \
                and _call_name(target) in ("set", "frozenset"):
            yield self.finding(
                module, target.lineno, target.col_offset,
                f"iterating over {_call_name(target)}(...) — order is "
                f"not deterministic; wrap in sorted(...)")


# Builtin exceptions that library code must not raise directly.
_FORBIDDEN_RAISES = {
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "RuntimeError", "ArithmeticError", "OSError",
    "LookupError", "AttributeError",
}


@register
class ErrorTaxonomyRule(Rule):
    """R004: library errors go through the ``repro.errors`` taxonomy.

    Callers (the CLI, telemetry sessions, suite drivers) catch
    ``ReproError`` to distinguish "the model rejected your input" from
    genuine bugs; a bare ``ValueError`` escaping the library defeats
    that and turns into a traceback for the user.  Bare ``except:``
    clauses are flagged too (they swallow ``KeyboardInterrupt``); the
    ``--fix`` mode rewrites those to ``except Exception:``.
    """

    id = "R004"
    title = "raise ReproError subclasses from library code"
    severity = Severity.WARNING

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                exc = node.exc
                if exc is None:
                    continue          # bare re-raise
                name = exc.func if isinstance(exc, ast.Call) else exc
                dotted = _dotted(name)
                base = dotted.split(".")[-1] if dotted else ""
                if base in _FORBIDDEN_RAISES:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"raise {base} from library code — raise a "
                        f"repro.errors.ReproError subclass instead")
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "bare except: swallows KeyboardInterrupt/"
                        "SystemExit — use except Exception:",
                        fixable=True)


_CONFIG_CLASS_RE = re.compile(r"(Config|Spec)$")
_MUTABLE_FACTORIES = {"dict", "list", "set", "defaultdict", "OrderedDict"}


def _dataclass_decorator(node: ast.ClassDef):
    """The @dataclass decorator node of a class, or None."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if _dotted(target).split(".")[-1] == "dataclass":
            return dec
    return None


@register
class ConfigHygieneRule(Rule):
    """R005: configs are frozen; no mutable default arguments.

    Simulator configurations (``*Config``, ``*Spec`` dataclasses) are
    shared across runs by session-scoped fixtures and factory caches; a
    mutation through one alias silently changes someone else's
    experiment, so they must be ``frozen=True`` (copy-on-write via
    ``dataclasses.replace``).  Mutable default arguments are the same
    aliasing bug at function granularity.
    """

    id = "R005"
    title = "config dataclasses frozen; no mutable default args"
    severity = Severity.WARNING

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                yield from self._check_defaults(module, node)

    def _check_class(self, module, node):
        if not _CONFIG_CLASS_RE.search(node.name):
            return
        dec = _dataclass_decorator(node)
        if dec is None:
            return
        frozen = False
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "frozen" \
                        and isinstance(kw.value, ast.Constant):
                    frozen = bool(kw.value.value)
        if not frozen:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"config dataclass {node.name} is not frozen=True — "
                f"configs are shared across runs and must be "
                f"copy-on-write (dataclasses.replace)")

    def _check_defaults(self, module, node):
        defaults = list(node.args.defaults) \
            + [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default,
                                 (ast.Dict, ast.List, ast.Set,
                                  ast.DictComp, ast.ListComp, ast.SetComp))
            if isinstance(default, ast.Call) \
                    and _call_name(default) in _MUTABLE_FACTORIES:
                mutable = True
            if mutable:
                name = getattr(node, "name", "<lambda>")
                yield self.finding(
                    module, default.lineno, default.col_offset,
                    f"mutable default argument in {name}() is shared "
                    f"across calls — default to None and create inside",
                    fixable=not isinstance(node, ast.Lambda))


@register
class MetricRegistrationRule(Rule):
    """R006: metric names are declared once, with a fixed kind.

    Mirrors the runtime registry semantics from PR 1 (one name = one
    kind, registration idempotent): every literal name passed to
    ``.counter()`` / ``.gauge()`` / ``.histogram()`` must appear in
    ``WELL_KNOWN_METRICS`` in ``repro/obs/metrics.py`` with the same
    kind, so dashboards and exports have a single source of truth and a
    typo'd name cannot fork a metric family.
    """

    id = "R006"
    title = "metric names declared once in WELL_KNOWN_METRICS"
    severity = Severity.WARNING

    KINDS = ("counter", "gauge", "histogram")

    def applies_to(self, module: ParsedModule) -> bool:
        # the declaration table itself is exempt
        return not module.relpath.endswith("obs/metrics.py")

    def check_module(self, module: ParsedModule,
                     facts: ModelFacts) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) \
                    or func.attr not in self.KINDS:
                continue
            name = _const_str(node.args[0]) if node.args else ""
            if not name:
                continue
            declared = facts.metric_decls.get(name)
            if declared is None:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f'metric "{name}" is not declared in '
                    f"WELL_KNOWN_METRICS ({facts.metrics_path}) — "
                    f"declare it once with its kind")
            elif declared != func.attr:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f'metric "{name}" declared as {declared} but used '
                    f"as {func.attr}")
