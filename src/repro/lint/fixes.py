"""Automatic fixes for the (few) findings with a provably safe rewrite.

Only mechanical, semantics-preserving-or-strengthening rewrites belong
here; today that is exactly one: ``except:`` -> ``except Exception:``
(strictly narrower — stops swallowing KeyboardInterrupt/SystemExit).
Everything else the linter reports needs human judgment.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Sequence

from .findings import Finding

_BARE_EXCEPT_RE = re.compile(r"(?P<head>\bexcept)\s*:")


def fix_bare_except(line: str) -> str:
    """Rewrite ``except:`` to ``except Exception:`` on one line."""
    return _BARE_EXCEPT_RE.sub(r"\g<head> Exception:", line, count=1)


def apply_fixes(findings: Sequence[Finding],
                root: Path) -> List[Finding]:
    """Apply safe fixes in place; returns the findings actually fixed.

    ``root`` is the directory the package-relative finding paths are
    anchored at (the parent of the ``repro`` package).
    """
    by_file: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.fixable:
            by_file.setdefault(finding.path, []).append(finding)

    fixed: List[Finding] = []
    for relpath, file_findings in sorted(by_file.items()):
        path = Path(root) / relpath
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        changed = False
        for finding in file_findings:
            idx = finding.line - 1
            if not 0 <= idx < len(lines):
                continue
            new = fix_bare_except(lines[idx])
            if new != lines[idx]:
                lines[idx] = new
                fixed.append(finding)
                changed = True
        if changed:
            path.write_text("".join(lines), encoding="utf-8")
    return fixed
