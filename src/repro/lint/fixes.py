"""Automatic fixes for the (few) findings with a provably safe rewrite.

Only mechanical, semantics-preserving-or-strengthening rewrites belong
here; everything else the linter reports needs human judgment.  Three
rules have fixers today, each gated behind ``--fix-rule``:

* R004 — ``except:`` -> ``except Exception:`` (strictly narrower —
  stops swallowing KeyboardInterrupt/SystemExit).  The only fixer in
  the default set.
* R005 — mutable default argument -> ``None`` sentinel plus an
  ``if <param> is None:`` guard after the docstring.  AST-guided: the
  default node is located by the finding's exact span, so the rewrite
  never fires on a stale line.
* R007 — ``time.sleep(...)`` -> ``await asyncio.sleep(...)``.  Only
  applied when R007 produced the finding (so the call is known to sit
  in an ``async def``), the call starts its statement line, and the
  file already imports asyncio.

Every fixer is idempotent: once applied, the rule stops firing, so a
second ``--fix`` pass is a no-op.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import LintUsageError
from .findings import Finding

#: rules fixed by a bare ``--fix`` (the rest need ``--fix-rule``)
DEFAULT_FIX_RULES = ("R004",)

_BARE_EXCEPT_RE = re.compile(r"(?P<head>\bexcept)\s*:")

_ASYNCIO_IMPORT_RE = re.compile(
    r"^\s*(?:import\s+asyncio\b|from\s+asyncio\s+import\b)",
    re.MULTILINE)


def fix_bare_except(line: str) -> str:
    """Rewrite ``except:`` to ``except Exception:`` on one line."""
    return _BARE_EXCEPT_RE.sub(r"\g<head> Exception:", line, count=1)


def _fix_r004(path: Path, finding: Finding) -> bool:
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    idx = finding.line - 1
    if not 0 <= idx < len(lines):
        return False
    new = fix_bare_except(lines[idx])
    if new == lines[idx]:
        return False
    lines[idx] = new
    path.write_text("".join(lines), encoding="utf-8")
    return True


def fix_time_sleep(line: str, col: int) -> str:
    """``time.sleep(...)`` -> ``await asyncio.sleep(...)`` at ``col``.

    Only rewrites a call that *starts* its statement line (anything
    left of it defeats the ``await`` insertion); callers must already
    know the call sits in an async function.
    """
    if not line[col:].startswith("time.sleep("):
        return line
    if line[:col].strip():
        return line
    return line[:col] + "await asyncio." + line[col + len("time."):]


def _fix_r007(path: Path, finding: Finding) -> bool:
    text = path.read_text(encoding="utf-8")
    if not _ASYNCIO_IMPORT_RE.search(text):
        return False            # would introduce a NameError
    lines = text.splitlines(keepends=True)
    idx = finding.line - 1
    if not 0 <= idx < len(lines):
        return False
    new = fix_time_sleep(lines[idx], finding.col)
    if new == lines[idx]:
        return False
    lines[idx] = new
    path.write_text("".join(lines), encoding="utf-8")
    return True


def _locate_default(tree: ast.Module, line: int, col: int
                    ) -> Optional[Tuple[ast.AST, str, ast.expr]]:
    """(function, param name, default node) at an exact span."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        pairs = list(zip(positional[len(positional)
                                    - len(args.defaults):],
                         args.defaults))
        pairs += [(a, d) for a, d in zip(args.kwonlyargs,
                                         args.kw_defaults)
                  if d is not None]
        for arg, default in pairs:
            if default.lineno == line and default.col_offset == col:
                return node, arg.arg, default
    return None


def _fix_r005(path: Path, finding: Finding) -> bool:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return False
    located = _locate_default(tree, finding.line, finding.col)
    if located is None:
        return False
    func, param, default = located
    if default.lineno != default.end_lineno:
        return False            # multi-line default: human judgment
    original = ast.get_source_segment(source, default)
    if original is None:
        return False

    lines = source.splitlines(keepends=True)
    dline = lines[default.lineno - 1]
    lines[default.lineno - 1] = (dline[:default.col_offset] + "None"
                                 + dline[default.end_col_offset:])

    body = func.body
    has_docstring = (isinstance(body[0], ast.Expr)
                     and isinstance(body[0].value, ast.Constant)
                     and isinstance(body[0].value.value, str))
    if has_docstring and len(body) > 1:
        insert_at, indent_col = body[1].lineno - 1, body[1].col_offset
    elif has_docstring:
        insert_at = body[0].end_lineno or body[0].lineno
        indent_col = body[0].col_offset
    else:
        insert_at, indent_col = body[0].lineno - 1, body[0].col_offset
    indent = " " * indent_col
    lines.insert(insert_at,
                 f"{indent}if {param} is None:\n"
                 f"{indent}    {param} = {original}\n")
    path.write_text("".join(lines), encoding="utf-8")
    return True


_FIXERS = {
    "R004": _fix_r004,
    "R005": _fix_r005,
    "R007": _fix_r007,
}


def apply_fixes(findings: Sequence[Finding], root: Path,
                rules: Optional[Sequence[str]] = None) -> List[Finding]:
    """Apply safe fixes in place; returns the findings actually fixed.

    ``root`` is the directory the package-relative finding paths are
    anchored at (the parent of the ``repro`` package).  ``rules``
    selects which fixers run (default :data:`DEFAULT_FIX_RULES`); an
    unknown rule id raises :class:`~repro.errors.LintUsageError`.
    """
    selected = tuple(rules) if rules is not None else DEFAULT_FIX_RULES
    unknown = sorted(set(selected) - set(_FIXERS))
    if unknown:
        raise LintUsageError(
            f"no fixer for rule(s) {', '.join(unknown)}; "
            f"fixable rules: {', '.join(sorted(_FIXERS))}")

    by_file: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.fixable and finding.rule in selected:
            by_file.setdefault(finding.path, []).append(finding)

    fixed: List[Finding] = []
    for relpath, file_findings in sorted(by_file.items()):
        path = Path(root) / relpath
        # descending source order keeps earlier spans valid: every
        # rewrite only touches text at or after its own finding
        for finding in sorted(file_findings,
                              key=lambda f: (f.line, f.col),
                              reverse=True):
            if _FIXERS[finding.rule](path, finding):
                fixed.append(finding)
    return fixed
