"""Cluster supervisor: N serve workers, one router, one cache tier.

:class:`Cluster` owns the whole topology.  ``start()`` brings up the
workers (threads in-process or ``repro serve`` child processes),
points them all at one **shared result-cache directory** — the
cross-worker tier that turns PR 5's per-process cache into cluster
infrastructure; the cache's atomic ``os.replace`` publish makes
concurrent writers safe without locks — then starts the router and a
supervisor thread.

The supervisor thread is the control loop the router must not run
itself (its event loop can never block):

* **chaos tick** — when ``$REPRO_CHAOS_DIR`` is armed, claim a
  ``worker_down`` token via the cluster hook and SIGKILL/abort a
  victim worker after the fault's scheduled delay, so the kill lands
  mid-burst and the router's failover path is exercised for real;
* **revival** — with ``restart_dead=True``, a dead worker is
  restarted and its new port republished to the router (the
  self-healing mode ``repro cluster`` runs with).

``rolling_restart()`` is the zero-downtime path: drain one worker at
a time through the router (stop routing, wait for its in-flight count
to reach zero), bounce it, republish, wait healthy, move on — at
least one worker serves at every instant, so a cluster of two or more
never drops a request during the roll.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, List, Optional, Union

from ..errors import ClusterError
from ..obs.metrics import get_registry
from ..serve.server import ServeConfig
from .router import RouterConfig, RouterHandle
from .workers import ProcessWorker, ThreadWorker, serve_argv

Worker = Union[ThreadWorker, ProcessWorker]

_WORKER_MODES = ("thread", "process")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that shapes one cluster instance."""

    shards: int = 2                    # worker count
    worker_mode: str = "thread"        # "thread" | "process"
    host: str = "127.0.0.1"
    port: int = 0                      # router port; 0 = ephemeral
    #: per-worker engine pool width (``ServeConfig.workers``); the
    #: cluster's parallelism is ``shards * engine_workers``
    engine_workers: Optional[int] = None
    #: the shared cache tier; None = a managed tempdir for the
    #: cluster's lifetime
    cache_dir: Optional[str] = None
    window_ms: float = 2.0
    max_inflight: int = 32
    rate_per_s: Optional[float] = None
    default_deadline_ms: int = 30_000
    drain_timeout_s: float = 5.0
    max_pool_restarts: int = 2
    warm_fast_path: bool = False
    upstream_timeout_s: float = 60.0
    health_interval_s: float = 0.25
    health_timeout_s: float = 2.0
    fail_threshold: int = 2
    tick_s: float = 0.05               # supervisor loop cadence
    restart_dead: bool = False         # revive killed workers
    worker_start_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ClusterError(
                f"shards must be >= 1, got {self.shards}")
        if self.worker_mode not in _WORKER_MODES:
            raise ClusterError(
                f"worker_mode must be one of {_WORKER_MODES}, "
                f"got {self.worker_mode!r}")


class Cluster:
    """One running cluster; ``start()`` / ``stop()`` or context-manage."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config if config is not None else ClusterConfig()
        self.workers: List[Worker] = []
        self.router = RouterHandle()
        self.cache_dir: Optional[str] = None
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        #: serializes kill/restart/roll against the chaos tick
        self._lock = threading.Lock()

    # ---- lifecycle ----------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The router's bound port (the cluster's front door)."""
        return self.router.port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def _serve_config(self) -> ServeConfig:
        cfg = self.config
        return ServeConfig(
            host="127.0.0.1", port=0,
            workers=cfg.engine_workers,
            cache_dir=self.cache_dir,
            window_ms=cfg.window_ms,
            max_inflight=cfg.max_inflight,
            rate_per_s=cfg.rate_per_s,
            default_deadline_ms=cfg.default_deadline_ms,
            drain_timeout_s=cfg.drain_timeout_s,
            max_pool_restarts=cfg.max_pool_restarts,
            warm_fast_path=cfg.warm_fast_path)

    def _build_worker(self, index: int,
                      serve_cfg: ServeConfig) -> Worker:
        if self.config.worker_mode == "thread":
            return ThreadWorker(index, lambda cfg=serve_cfg: cfg)
        port_file = Path(self._tmp.name) / f"worker-{index}.port"
        child_cfg = replace(serve_cfg, port_file=str(port_file))
        return ProcessWorker(
            index, lambda cfg=child_cfg, pf=port_file:
            serve_argv(cfg, pf), port_file)

    def start(self) -> "Cluster":
        if self.workers:
            raise ClusterError("cluster is already started")
        cfg = self.config
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        self.cache_dir = cfg.cache_dir \
            or str(Path(self._tmp.name) / "cache")
        serve_cfg = self._serve_config()
        try:
            for index in range(cfg.shards):
                worker = self._build_worker(index, serve_cfg)
                worker.start(timeout_s=cfg.worker_start_timeout_s)
                self.workers.append(worker)
            self.router.start(
                RouterConfig(
                    host=cfg.host, port=cfg.port,
                    upstream_timeout_s=cfg.upstream_timeout_s,
                    health_interval_s=cfg.health_interval_s,
                    health_timeout_s=cfg.health_timeout_s,
                    fail_threshold=cfg.fail_threshold),
                [(w.host, w.port) for w in self.workers])
        except BaseException:
            self._teardown()
            raise
        self._stop.clear()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-cluster-supervisor",
            daemon=True)
        self._supervisor.start()
        return self

    def stop(self) -> bool:
        """Graceful teardown; True when every worker drained clean."""
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=30.0)
            self._supervisor = None
        return self._teardown()

    def _teardown(self) -> bool:
        clean = True
        try:
            if self.router.port is not None:
                self.router.stop()
        except ClusterError:
            clean = False
        for worker in self.workers:
            try:
                clean = worker.stop() and clean
            except ClusterError:
                clean = False
        self.workers = []
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
        return clean

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---- worker operations --------------------------------------------

    def kill_worker(self, index: int) -> None:
        """Abrupt worker death (the ``worker_down`` chaos effect)."""
        with self._lock:
            self.workers[index].kill()
            self.router.mark_down(index)
        get_registry().counter(
            "repro_cluster_worker_kills_total",
            "workers killed (chaos or operator)").inc()

    def restart_worker(self, index: int) -> None:
        """(Re)start a worker and republish its address."""
        with self._lock:
            worker = self.workers[index]
            if worker.alive():
                worker.stop()
            worker.start(
                timeout_s=self.config.worker_start_timeout_s)
            self.router.update_backend(index, worker.host, worker.port)
        get_registry().counter(
            "repro_cluster_worker_restarts_total",
            "worker (re)starts after the initial bring-up").inc()

    def rolling_restart(self, settle_timeout_s: float = 60.0) -> None:
        """Bounce every worker, one at a time, dropping nothing.

        Per worker: stop routing to it, wait for its router-side
        in-flight count to hit zero, drain-stop it, start it again,
        republish the (new) port, wait until the router marks it
        healthy.  The rest of the fleet keeps serving throughout.
        """
        for index in range(len(self.workers)):
            self.router.set_draining(index, True)
            try:
                self._await(
                    lambda i=index: self.router.backend_snapshot()
                    [i]["inflight"] == 0,
                    settle_timeout_s,
                    f"worker {index} in-flight requests to drain")
                with self._lock:
                    worker = self.workers[index]
                    worker.stop()
                    worker.start(
                        timeout_s=self.config.worker_start_timeout_s)
                    self.router.update_backend(
                        index, worker.host, worker.port)
            finally:
                self.router.set_draining(index, False)
            self._await(
                lambda i=index: self.router.backend_snapshot()
                [i]["healthy"],
                settle_timeout_s,
                f"worker {index} to report healthy")
            get_registry().counter(
                "repro_cluster_worker_restarts_total",
                "worker (re)starts after the initial bring-up").inc()

    def _await(self, predicate: Callable[[], bool], timeout_s: float,
               what: str) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.02)
        raise ClusterError(f"timed out waiting for {what}")

    # ---- the supervisor loop ------------------------------------------

    def _supervise(self) -> None:
        while not self._stop.wait(self.config.tick_s):
            try:
                self._chaos_tick()
                if self.config.restart_dead:
                    self._revive_dead()
            except ClusterError:
                # a failed revive/kill must not end supervision; the
                # next tick (or the operator) retries
                continue

    def _chaos_tick(self) -> None:
        # literal env check mirrors the other hook sites so chaos-off
        # runs never import the chaos module
        if not os.environ.get("REPRO_CHAOS_DIR"):
            return
        from ..resilience.chaos import chaos_point
        fault = chaos_point("cluster")
        if fault is None:
            return
        if fault.delay_s > 0:          # land the kill mid-burst
            time.sleep(fault.delay_s)
        victim = self._pick_victim()
        if victim is not None:
            self.kill_worker(victim)

    def _pick_victim(self) -> Optional[int]:
        """Deterministic choice: the highest-index live worker."""
        for index in range(len(self.workers) - 1, -1, -1):
            if self.workers[index].alive():
                return index
        return None

    def _revive_dead(self) -> None:
        for index, worker in enumerate(self.workers):
            if not worker.alive():
                self.restart_worker(index)
