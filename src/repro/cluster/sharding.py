"""Fingerprint sharding: which worker owns which request.

The router keys every ``/v1/*`` request with the same content-
addressed machinery the result cache uses
(:func:`repro.exec.cache.task_fingerprint`): canonical-JSON the
decoded body, fold in the route and the deadline header, salt with the
model-source hash.  Two consequences fall out for free:

* identical concurrent requests land on the *same* shard (whose
  micro-batcher single-flights them) and on the same router-side
  pending entry — cross-process dedupe without leases or locks;
* a shard's working set is exactly a stable slice of the shared
  result-cache keyspace, so its warm entries stay relevant across
  restarts.

Placement is highest-random-weight-flavored but deliberately simple:
primary = ``int(key, 16) % n``, failover walks the ring to the next
healthy worker.  Pure functions of (key, health vector) — the
router's failover decisions replay deterministically in tests.
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Optional, Sequence

from ..errors import ClusterError
from ..exec.cache import task_fingerprint


def shard_key(route: str, body: bytes,
              deadline_header: Optional[str] = None) -> str:
    """The content-addressed key for one routed request.

    The *decoded* body is hashed (canonical JSON), so key order and
    whitespace in the wire bytes do not split identical requests; a
    body that is not valid JSON is hashed raw (it will 400 at the
    worker, but it still needs a stable shard).  The deadline header
    participates because it changes the answer a worker may produce
    (degraded-by-deadline vs full fidelity).
    """
    try:
        decoded = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        return task_fingerprint("cluster-raw", route,
                                hashlib.sha256(body).hexdigest(),
                                deadline_header or "")
    return task_fingerprint("cluster", route, decoded,
                            deadline_header or "")


class ShardMap:
    """Maps keys to worker indices with deterministic failover order."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ClusterError(
                f"cluster needs >= 1 worker, got {workers}")
        self.workers = workers

    def primary(self, key: str) -> int:
        return int(key, 16) % self.workers

    def chain(self, key: str) -> List[int]:
        """Every worker index in failover order (primary first)."""
        first = self.primary(key)
        return [(first + i) % self.workers
                for i in range(self.workers)]

    def assign(self, key: str, eligible: Sequence[bool]) -> int:
        """The first eligible worker on the key's failover chain."""
        if len(eligible) != self.workers:
            raise ClusterError(
                f"eligibility vector has {len(eligible)} entries for "
                f"{self.workers} workers")
        for index in self.chain(key):
            if eligible[index]:
                return index
        raise ClusterError("no eligible worker for any shard")
