"""The cluster front door: an asyncio router over N serve workers.

One ``asyncio`` process accepts the same JSON-over-HTTP protocol the
single server speaks and proxies every ``/v1/*`` request to a worker
picked by content-addressed shard key (:mod:`.sharding`).  The
contract that makes the whole topology honest: **the router forwards
upstream body bytes verbatim** — it never decodes and re-encodes a
worker's answer — so cluster responses are bit-identical to the
single-process server by construction (and test-enforced).  Shard
attribution travels in an ``X-Shard`` response header, headers being
the only place metadata may live (PR 7's rule for ``X-Request-Id``).

Reliability model:

* *Health*: a background loop scrapes every worker's ``/healthz`` on
  an interval; ``fail_threshold`` consecutive scrape failures mark a
  worker down, one success marks it back up.  A transport error
  during dispatch marks it down immediately — the next request must
  not pay the probe interval to find out.
* *Failover*: dispatch walks the key's failover chain past unhealthy
  and draining workers; a dead-mid-request worker surfaces as a
  transport error and the request is retried on the next shard
  (workers are deterministic and idempotent, so a re-execution is
  bit-identical — the reason failover needs no at-most-once fencing).
* *Single-flight*: identical concurrent requests (same shard key)
  join one pending upstream dispatch in a router-side pending map and
  all receive the same raw bytes; combined with fingerprint sharding
  (identical requests hit the same worker, whose micro-batcher
  single-flights them into the shared cache tier) a burst of N
  duplicates executes exactly once cluster-wide.
* *Draining*: the supervisor marks a worker admin-draining before a
  rolling restart; the router stops routing to it and exposes its
  remaining ``inflight`` so the supervisor knows when the worker can
  be bounced without dropping anything.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ClusterError, ReproError, ServeError
from ..obs.context import clean_request_id
from ..obs.metrics import get_registry
from ..obs.prometheus import CONTENT_TYPE as _PROMETHEUS_CONTENT_TYPE
from ..obs.prometheus import render_prometheus
from ..serve import protocol
from ..serve.http import fetch, read_request, write_response
from .sharding import ShardMap, shard_key

#: upstream failure shapes that trigger shard failover (torn response,
#: refused/reset connection, timeout, malformed wire data)
_TRANSPORT_ERRORS = (OSError, asyncio.TimeoutError,
                     asyncio.IncompleteReadError, ServeError)


@dataclass(frozen=True)
class RouterConfig:
    """Everything that shapes one router instance."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral
    upstream_timeout_s: float = 60.0   # per proxied request
    health_interval_s: float = 0.25    # probe cadence
    health_timeout_s: float = 2.0      # per probe
    fail_threshold: int = 2            # consecutive probe failures


class BackendState:
    """Router-side view of one worker (mutated only on the loop)."""

    def __init__(self, index: int, host: str, port: int):
        self.index = index
        self.host = host
        self.port = port
        self.healthy = True            # optimistic: workers start first
        self.draining = False          # observed (worker said so)
        self.admin_draining = False    # commanded (rolling restart)
        self.consecutive_failures = 0
        self.inflight = 0
        self.last_healthz: Optional[Dict[str, object]] = None

    @property
    def eligible(self) -> bool:
        return self.healthy and not self.draining \
            and not self.admin_draining

    def snapshot(self) -> Dict[str, object]:
        last = self.last_healthz or {}
        return {"index": self.index,
                "url": f"http://{self.host}:{self.port}",
                "healthy": self.healthy,
                "draining": self.draining or self.admin_draining,
                "inflight": self.inflight,
                "consecutive_failures": self.consecutive_failures,
                "status": last.get("status"),
                "cache": last.get("cache")}


def _shutting_down(body: bytes) -> bool:
    """Is this 503 a worker-side drain (failover-able)?"""
    try:
        doc = json.loads(body.decode("utf-8"))
        return doc.get("error", {}).get("code") == "shutting_down"
    except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
        return False


class ClusterRouter:
    """One router instance; create, ``await start()``, ``await stop()``."""

    def __init__(self, config: RouterConfig,
                 backends: Sequence[Tuple[str, int]],
                 tick_hook: Optional[Callable[[], None]] = None):
        if not backends:
            raise ClusterError("router needs at least one backend")
        self.config = config
        self.backends = [BackendState(i, host, port)
                         for i, (host, port) in enumerate(backends)]
        self.shards = ShardMap(len(self.backends))
        self.port: Optional[int] = None
        #: quick supervisor callback run once per health sweep (chaos
        #: ticks, dead-worker checks); must not block the loop
        self._tick_hook = tick_hook
        self._pending: Dict[str, asyncio.Task] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._draining = False

    # ---- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.create_task(self._health_loop())

    async def stop(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        pending = [t for t in self._pending.values() if not t.done()]
        conns = [t for t in self._conn_tasks if not t.done()]
        if conns:                       # let in-flight answers flush
            await asyncio.wait(conns, timeout=5.0)
        for task in pending + [t for t in self._conn_tasks
                               if not t.done()]:
            task.cancel()

    # ---- control plane (supervisor calls these via its loop) ----------

    async def set_admin_draining(self, index: int, flag: bool) -> None:
        self.backends[index].admin_draining = flag

    async def update_backend(self, index: int, host: str,
                             port: int) -> None:
        """Republish a restarted worker's address and reset its state."""
        backend = self.backends[index]
        backend.host = host
        backend.port = port
        backend.healthy = True
        backend.draining = False
        backend.consecutive_failures = 0
        backend.last_healthz = None

    async def mark_down(self, index: int) -> None:
        self.backends[index].healthy = False

    async def backend_snapshot(self) -> List[Dict[str, object]]:
        return [b.snapshot() for b in self.backends]

    # ---- health -------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            if self._tick_hook is not None:
                try:
                    self._tick_hook()
                except Exception:       # noqa: BLE001 - a supervisor
                    # tick error must not kill the health loop
                    get_registry().counter(
                        "repro_cluster_tick_errors_total",
                        "supervisor tick-hook failures").inc()
            for backend in self.backends:
                await self._probe(backend)
            await asyncio.sleep(self.config.health_interval_s)

    async def _probe(self, backend: BackendState) -> None:
        try:
            status, _headers, payload = await fetch(
                backend.host, backend.port, "GET", "/healthz",
                timeout_s=self.config.health_timeout_s)
            doc = json.loads(payload.decode("utf-8"))
        except _TRANSPORT_ERRORS + (ValueError,):
            backend.consecutive_failures += 1
            if backend.consecutive_failures \
                    >= self.config.fail_threshold:
                backend.healthy = False
            return
        backend.consecutive_failures = 0
        backend.healthy = status == 200
        backend.draining = doc.get("status") == "draining"
        backend.last_healthz = doc

    # ---- dispatch -----------------------------------------------------

    async def _proxy(self, path: str, headers: Dict[str, str],
                     body: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        """Route one ``/v1/*`` request; returns raw upstream bytes."""
        registry = get_registry()
        start_ns = time.perf_counter_ns()
        key = shard_key(path, body,
                        headers.get(protocol.DEADLINE_HEADER))
        task = self._pending.get(key)
        if task is None:
            task = asyncio.create_task(
                self._dispatch(key, path, headers, body))
            self._pending[key] = task
            task.add_done_callback(
                lambda _t, _k=key: self._pending.pop(_k, None))
        else:
            registry.counter(
                "repro_cluster_singleflight_joins_total",
                "identical concurrent requests joined to one "
                "upstream dispatch").inc(route=path)
        # shield: a joiner (or the originator) losing its connection
        # must not cancel the dispatch other waiters share
        index, status, up_headers, up_body = await asyncio.shield(task)
        extra = {"X-Shard": str(index)}
        ctype = up_headers.get("content-type")
        if ctype:
            extra["Content-Type"] = ctype
        retry_after = up_headers.get("retry-after")
        if retry_after:
            extra["Retry-After"] = retry_after
        # the rid echo is per-caller even for joined requests: bodies
        # are shared bytes, correlation stays in headers
        rid = clean_request_id(headers.get("x-request-id")) \
            or up_headers.get("x-request-id")
        if rid:
            extra["X-Request-Id"] = rid
        registry.counter(
            "repro_cluster_requests_total",
            "requests routed, by route/shard/status").inc(
                route=path, shard=index, status=status)
        registry.histogram(
            "repro_cluster_request_seconds",
            "routed request latency").observe(
                max(0, time.perf_counter_ns() - start_ns) / 1e9,
                route=path)
        return status, up_body, extra

    async def _dispatch(self, key: str, path: str,
                        headers: Dict[str, str], body: bytes,
                        ) -> Tuple[int, int, Dict[str, str], bytes]:
        """Try the key's failover chain; returns
        ``(shard, status, headers, raw body)``."""
        registry = get_registry()
        fwd = {"Content-Type": headers.get("content-type",
                                           "application/json")}
        rid = headers.get("x-request-id")
        if rid:
            fwd["X-Request-Id"] = rid
        deadline = headers.get(protocol.DEADLINE_HEADER)
        if deadline:
            fwd["X-Deadline-Ms"] = deadline
        attempts = 0
        last_error: Optional[BaseException] = None
        for index in self.shards.chain(key):
            backend = self.backends[index]
            if not backend.eligible:
                continue
            attempts += 1
            backend.inflight += 1
            try:
                status, up_headers, up_body = await fetch(
                    backend.host, backend.port, "POST", path,
                    body=body, headers=fwd,
                    timeout_s=self.config.upstream_timeout_s)
            except _TRANSPORT_ERRORS as exc:
                # the worker died (or tore the response) mid-request:
                # mark it down now and re-execute on the next shard —
                # deterministic workers make the retry bit-identical
                backend.healthy = False
                registry.counter(
                    "repro_cluster_failovers_total",
                    "requests moved to another shard").inc(
                        reason="transport")
                last_error = exc
                continue
            finally:
                backend.inflight -= 1
            if status == 503 and _shutting_down(up_body):
                backend.draining = True
                registry.counter(
                    "repro_cluster_failovers_total",
                    "requests moved to another shard").inc(
                        reason="draining")
                last_error = None
                continue
            return index, status, up_headers, up_body
        raise ClusterError(
            f"no healthy shard answered {path} after {attempts} "
            f"attempt(s) across {len(self.backends)} worker(s)"
            + (f": {last_error}" if last_error is not None else ""))

    # ---- front-door HTTP ----------------------------------------------

    def _healthz_doc(self) -> Dict[str, object]:
        from .. import __version__
        shards = [b.snapshot() for b in self.backends]
        eligible = sum(1 for b in self.backends if b.eligible)
        cache = {"hits": 0, "misses": 0, "corrupt": 0}
        cache_seen = False
        for row in shards:
            stats = row.get("cache")
            if isinstance(stats, dict):
                cache_seen = True
                for field in ("hits", "misses", "corrupt"):
                    cache[field] += int(stats.get(field, 0))
        if cache_seen:
            lookups = cache["hits"] + cache["misses"]
            cache["hit_rate"] = (cache["hits"] / lookups
                                 if lookups else 0.0)
        registry = get_registry()
        if self._draining:
            status = "draining"
        elif eligible == len(shards):
            status = "ok"
        elif eligible:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "role": "router",
            "version": __version__,
            "shards": shards,
            "healthy_shards": eligible,
            "cache": cache if cache_seen else None,
            "dedupe": {
                "joins": int(registry.counter(
                    "repro_cluster_singleflight_joins_total",
                    "identical concurrent requests joined to one "
                    "upstream dispatch").total),
                "failovers": int(registry.counter(
                    "repro_cluster_failovers_total",
                    "requests moved to another shard").total),
            },
        }

    async def _respond(self, method: str, path: str,
                       headers: Dict[str, str], body: bytes,
                       ) -> Tuple[int, object, Dict[str, str]]:
        try:
            if path == "/healthz":
                if method != "GET":
                    raise ServeError("use GET for /healthz")
                return 200, self._healthz_doc(), {}
            if path == "/metrics":
                if method != "GET":
                    raise ServeError("use GET for /metrics")
                if "text/plain" in headers.get("accept", "").lower():
                    return (200, render_prometheus(get_registry()),
                            {"Content-Type": _PROMETHEUS_CONTENT_TYPE})
                return 200, get_registry().collect(), {}
            if path not in protocol.REQUEST_TYPES:
                return 404, {
                    "ok": False,
                    "error": {"code": "not_found",
                              "type": "ServeError",
                              "message": f"no route {path}"}}, {}
            if method != "POST":
                raise ServeError(f"use POST for {path}")
            if self._draining:
                raise ClusterError("router is draining")
            return await self._proxy(path, headers, body)
        except asyncio.CancelledError:
            raise
        except Exception as exc:        # noqa: BLE001 - structured body
            code, status = protocol.error_status(exc)
            doc = protocol.error_body(exc)
            extra = {"Retry-After": "1"} if status == 503 else {}
            if not isinstance(exc, ReproError):
                doc["error"]["code"] = "internal"
            return status, doc, extra

    async def _handle_conn(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServeError as exc:
                    await write_response(
                        writer, 400, protocol.error_body(exc), {},
                        keep_alive=False)
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, doc, extra = await self._respond(
                    method, path, headers, body)
                keep = (headers.get("connection", "").lower() != "close"
                        and not self._draining)
                await write_response(writer, status, doc, extra,
                                     keep_alive=keep)
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass


class RouterHandle:
    """A router on its own thread, with a thread-safe control plane.

    Mirrors :class:`~repro.serve.server.ServerHandle`; the extra
    control methods marshal onto the router's event loop via
    ``run_coroutine_threadsafe`` so the (synchronous) supervisor can
    drain, republish, and inspect backends without data races.
    """

    def __init__(self) -> None:
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None
        self._loop = None
        self._stop_event = None
        self._router: Optional[ClusterRouter] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self, config: RouterConfig,
              backends: Sequence[Tuple[str, int]],
              tick_hook: Optional[Callable[[], None]] = None,
              timeout_s: float = 30.0) -> None:
        started = threading.Event()

        async def _main() -> None:
            router = ClusterRouter(config, backends,
                                   tick_hook=tick_hook)
            try:
                await router.start()
            except BaseException as exc:  # noqa: BLE001 - to caller
                self.error = exc
                started.set()
                return
            self._router = router
            self.port = router.port
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            started.set()
            await self._stop_event.wait()
            await router.stop()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_main()),
            name="repro-cluster-router", daemon=True)
        self._thread.start()
        if not started.wait(timeout=timeout_s):
            raise ClusterError(
                f"router did not start within {timeout_s:.0f}s")
        if self.error is not None:
            raise self.error

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():
            raise ClusterError("router thread did not stop in time")

    def _call(self, coro, timeout_s: float = 10.0):
        if self._loop is None or self._router is None:
            raise ClusterError("router is not running")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout_s)

    def set_draining(self, index: int, flag: bool) -> None:
        self._call(self._router.set_admin_draining(index, flag))

    def update_backend(self, index: int, host: str, port: int) -> None:
        self._call(self._router.update_backend(index, host, port))

    def mark_down(self, index: int) -> None:
        self._call(self._router.mark_down(index))

    def backend_snapshot(self) -> List[Dict[str, object]]:
        return self._call(self._router.backend_snapshot())
