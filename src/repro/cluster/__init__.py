"""Sharded multi-worker serving with a shared result-cache tier.

The single ``repro serve`` process (PR 6) maps one simulated chip;
this package is the chip-level view the paper's energy-management
story is really about — many cores behind one power envelope, §III's
telemetry loop deciding where work lands.  Here: N serve workers
behind one router, requests sharded by the same content-addressed
fingerprints the result cache uses, one shared cache tier so any
worker's computation is every worker's hit, and failover/rolling
restarts so the envelope survives any single worker.

Layout:

* :mod:`.sharding` — fingerprint → shard placement (pure functions);
* :mod:`.workers` — thread- and subprocess-hosted worker lifecycles;
* :mod:`.router` — the asyncio front door: health checks, failover,
  cross-process single-flight, verbatim byte forwarding;
* :mod:`.supervisor` — :class:`Cluster`: bring-up, chaos tick,
  revival, rolling restarts;
* :mod:`.bench` — the two-phase benchmark behind
  ``repro loadgen --cluster`` (``BENCH_cluster.json``).
"""

from .bench import (CLUSTER_BENCH_SCHEMA, ClusterBench,
                    ClusterBenchConfig, run_cluster_bench)
from .router import (BackendState, ClusterRouter, RouterConfig,
                     RouterHandle)
from .sharding import ShardMap, shard_key
from .supervisor import Cluster, ClusterConfig
from .workers import ProcessWorker, ThreadWorker, serve_argv

__all__ = [
    "BackendState", "CLUSTER_BENCH_SCHEMA", "Cluster", "ClusterBench",
    "ClusterBenchConfig", "ClusterConfig", "ClusterRouter",
    "ProcessWorker", "RouterConfig", "RouterHandle", "ShardMap",
    "ThreadWorker", "run_cluster_bench", "serve_argv", "shard_key",
]
