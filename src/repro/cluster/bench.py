"""The cluster benchmark behind ``repro loadgen --cluster``.

Two phases, one seeded schedule (so every number is reproducible):

* **burst** — a fault-free loadgen burst at ≥10× the single-server
  default rate against a fresh cluster with a cold shared cache.  The
  report keeps the usual loadgen aggregates plus what only a cluster
  can show: per-shard latency tables (from the ``X-Shard`` column),
  the aggregate cache-tier hit-rate and the single-flight join /
  failover counts scraped from the router's ``/healthz``.
* **chaos** (optional, on by default) — the same schedule against a
  second cluster with a ``worker_down`` fault armed: the supervisor
  kills a worker mid-burst and the burst-phase rows serve as the
  bit-identity reference.  The phase is classified with the chaos
  campaign's availability taxonomy; any OK row whose body digest
  differs from the fault-free run is an SDC and fails the benchmark.

``BENCH_cluster.json`` (schema 1) is the artifact ``repro perfwatch``
tracks for the ``cluster:availability`` row.
"""

from __future__ import annotations

import contextlib
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ChaosError, ClusterError, ServeError
from ..resilience.chaos import (WORKER_DOWN, ChaosCampaign,
                                generate_service_schedule,
                                service_chaos)
from ..serve.client import ServeClient
from ..serve.loadgen import LoadgenConfig, _percentile, run_loadgen
from .supervisor import Cluster, ClusterConfig

CLUSTER_BENCH_SCHEMA = 1


@dataclass(frozen=True)
class ClusterBenchConfig:
    """One cluster benchmark run, fully determined by these fields."""

    seed: int = 0
    requests: int = 240
    rate_per_s: float = 250.0          # 10x the loadgen default
    shards: int = 2
    worker_mode: str = "thread"
    engine_workers: Optional[int] = None
    window_ms: float = 2.0
    deadline_ms: Optional[int] = None
    timeout_s: float = 60.0
    slo_p99_ms: float = 2000.0
    chaos: bool = True                 # run the worker_down phase
    #: scale for the seeded kill delay (drawn in [0.5, 1.5] * this),
    #: sized so the kill lands inside the burst
    kill_delay_s: float = 0.4

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ClusterError(
                f"requests must be >= 1, got {self.requests}")
        if self.rate_per_s <= 0:
            raise ClusterError(
                f"rate_per_s must be positive, got {self.rate_per_s}")
        if self.chaos and self.shards < 2:
            raise ClusterError(
                "the worker_down chaos phase needs shards >= 2 (a "
                "surviving shard must absorb the traffic), got "
                f"{self.shards}")


def _latency_doc(values: List[float]) -> Dict[str, float]:
    values = sorted(values)
    return {"p50": _percentile(values, 50.0),
            "p95": _percentile(values, 95.0),
            "p99": _percentile(values, 99.0),
            "max": values[-1] if values else 0.0}


def _per_shard(report: Dict[str, object]) -> Dict[str, object]:
    """Per-shard request counts and latency tables from the loadgen
    rows' ``X-Shard`` column."""
    shards: Dict[str, Dict[str, object]] = {}
    for row in report["per_request"]:
        shard = row.get("shard")
        if shard is None:
            continue
        entry = shards.setdefault(
            str(shard), {"count": 0, "latencies": []})
        entry["count"] += 1
        if "latency_s" in row:
            entry["latencies"].append(float(row["latency_s"]))
    return {shard: {"count": entry["count"],
                    "latency_s": _latency_doc(entry["latencies"])}
            for shard, entry in sorted(shards.items())}


class ClusterBench:
    """Runs the two phases and assembles ``BENCH_cluster.json``."""

    def __init__(self, config: Optional[ClusterBenchConfig] = None):
        self.config = config if config is not None \
            else ClusterBenchConfig()

    def _cluster_config(self, cache_dir: str) -> ClusterConfig:
        cfg = self.config
        return ClusterConfig(
            shards=cfg.shards, worker_mode=cfg.worker_mode,
            engine_workers=cfg.engine_workers,
            cache_dir=cache_dir, window_ms=cfg.window_ms)

    def _phase(self, cache_dir: str, faults, chaos_root,
               ) -> Dict[str, object]:
        """One cluster + one seeded burst (+ optional armed chaos)."""
        cfg = self.config
        with contextlib.ExitStack() as stack:
            controller = None
            if faults:
                controller = stack.enter_context(
                    service_chaos(faults, chaos_root))
            cluster = stack.enter_context(
                Cluster(self._cluster_config(cache_dir)))
            report = run_loadgen(LoadgenConfig(
                seed=cfg.seed, requests=cfg.requests,
                rate_per_s=cfg.rate_per_s, host="127.0.0.1",
                port=cluster.port, timeout_s=cfg.timeout_s,
                deadline_ms=cfg.deadline_ms,
                slo_p99_ms=cfg.slo_p99_ms))
            try:
                healthz = ServeClient(
                    port=cluster.port,
                    timeout_s=cfg.timeout_s).healthz()
            except ServeError:
                healthz = {}
            chaos = (controller.summary() if controller is not None
                     else {"armed_left": 0, "fired": []})
        return {"report": report, "healthz": healthz, "chaos": chaos,
                "clean_drain": True, "faults_armed": len(faults)}

    def run(self) -> Dict[str, object]:
        cfg = self.config
        with tempfile.TemporaryDirectory(
                prefix="repro-cluster-bench-") as td:
            root = Path(td)
            burst = self._phase(str(root / "cache-burst"), [], None)
            ref_rows = {str(r["id"]): r
                        for r in burst["report"]["per_request"]}
            chaos_doc: Optional[Dict[str, object]] = None
            if cfg.chaos:
                faults = generate_service_schedule(
                    cfg.seed, (WORKER_DOWN,), per_class=1,
                    slow_s=cfg.kill_delay_s)
                phase = self._phase(str(root / "cache-chaos"), faults,
                                    root / "chaos")
                classified = ChaosCampaign._classify(
                    WORKER_DOWN, phase, ref_rows)
                chaos_doc = {
                    **classified,
                    "per_shard": _per_shard(phase["report"]),
                    "availability_rate":
                        phase["report"]["availability"]["rate"],
                    "healthy_shards_after":
                        phase["healthz"].get("healthy_shards"),
                }
                if not classified["faults_fired"]:
                    raise ChaosError(
                        "the worker_down fault never fired — the "
                        "chaos phase exercised nothing")
        healthz = burst["healthz"]
        report: Dict[str, object] = {
            "schema": CLUSTER_BENCH_SCHEMA,
            "mode": cfg.worker_mode,
            "seed": cfg.seed,
            "shards": cfg.shards,
            "requests": cfg.requests,
            "offered_rate_per_s": cfg.rate_per_s,
            "throughput_per_s": burst["report"]["throughput_per_s"],
            "latency_s": burst["report"]["latency_s"],
            "availability": burst["report"]["availability"],
            "slo": burst["report"]["slo"],
            "per_shard": _per_shard(burst["report"]),
            "cache": healthz.get("cache"),
            "dedupe": healthz.get("dedupe"),
            "chaos": chaos_doc,
            "per_request": burst["report"]["per_request"],
        }
        report["sdc_total"] = (len(chaos_doc["sdc"])
                               if chaos_doc is not None else 0)
        report["ok"] = (report["sdc_total"] == 0
                        and report["availability"]["rate"] > 0.0)
        return report


def run_cluster_bench(config: Optional[ClusterBenchConfig] = None,
                      ) -> Dict[str, object]:
    """Convenience wrapper behind ``repro loadgen --cluster``."""
    return ClusterBench(config).run()
