"""Worker lifecycles for the serving cluster.

Two interchangeable backends behind one small protocol (``start`` /
``stop`` / ``kill`` / ``alive`` / ``port``):

* :class:`ThreadWorker` hosts a full :class:`~repro.serve.server.
  ReproServer` on a thread in *this* process (the shape tests, CI
  smoke, and ``repro loadgen --cluster`` use — no spawn cost, and the
  in-process metrics registry stays scrapeable).  ``kill`` maps to the
  server's abort path: connections are cancelled un-flushed, so the
  router sees real transport errors, not polite drains.
* :class:`ProcessWorker` spawns ``repro serve`` as a child process
  (the production topology behind ``repro cluster``): the worker binds
  an ephemeral port and publishes it through ``--port-file``; ``stop``
  is SIGTERM (the server's graceful drain), ``kill`` is SIGKILL.

Every (re)start bumps ``generation`` and may change ``port`` — the
supervisor republishes the new address to the router.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional

from ..errors import ClusterError
from ..serve.server import ServeConfig, ServerHandle


class ThreadWorker:
    """One ``repro serve`` instance on a thread of this process."""

    mode = "thread"

    def __init__(self, index: int,
                 config_factory: Callable[[], ServeConfig]):
        self.index = index
        self.host = "127.0.0.1"
        self.generation = 0
        self._config_factory = config_factory
        self._handle: Optional[ServerHandle] = None

    @property
    def port(self) -> Optional[int]:
        return self._handle.port if self._handle is not None else None

    def start(self, timeout_s: float = 60.0) -> None:
        if self.alive():
            raise ClusterError(
                f"worker {self.index} is already running")
        handle = ServerHandle()
        handle.start(self._config_factory(), timeout_s=timeout_s)
        self._handle = handle
        self.generation += 1

    def alive(self) -> bool:
        handle = self._handle
        return (handle is not None and handle._thread is not None
                and handle._thread.is_alive())

    def stop(self, timeout_s: float = 30.0) -> bool:
        """Graceful drain; returns True when the drain was clean."""
        if self._handle is None:
            return True
        try:
            return self._handle.stop(timeout_s=timeout_s)
        finally:
            self._handle = None

    def kill(self, timeout_s: float = 10.0) -> None:
        """Abrupt death: no drain, in-flight connections cancelled."""
        if self._handle is None:
            return
        try:
            self._handle.kill(timeout_s=timeout_s)
        finally:
            self._handle = None


class ProcessWorker:
    """One ``repro serve`` child process."""

    mode = "process"

    def __init__(self, index: int, argv_factory: Callable[[], List[str]],
                 port_file: Path):
        self.index = index
        self.host = "127.0.0.1"
        self.generation = 0
        self.port: Optional[int] = None
        self._argv_factory = argv_factory
        self._port_file = Path(port_file)
        self._proc: Optional[subprocess.Popen] = None

    def start(self, timeout_s: float = 60.0) -> None:
        if self.alive():
            raise ClusterError(
                f"worker {self.index} is already running")
        try:
            self._port_file.unlink()
        except FileNotFoundError:
            pass
        self._proc = subprocess.Popen(
            self._argv_factory(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        self.port = self._await_port(timeout_s)
        self.generation += 1

    def _await_port(self, timeout_s: float) -> int:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._proc.poll() is not None:
                raise ClusterError(
                    f"worker {self.index} exited with "
                    f"{self._proc.returncode} before binding a port")
            try:
                text = self._port_file.read_text().strip()
                if text:
                    return int(text)
            except (OSError, ValueError):
                pass
            time.sleep(0.02)
        self.kill()
        raise ClusterError(
            f"worker {self.index} did not publish a port within "
            f"{timeout_s:.0f}s")

    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def stop(self, timeout_s: float = 30.0) -> bool:
        if self._proc is None:
            return True
        try:
            if self._proc.poll() is None:
                self._proc.send_signal(signal.SIGTERM)
                try:
                    self._proc.wait(timeout=timeout_s)
                except subprocess.TimeoutExpired:
                    self._proc.kill()
                    self._proc.wait(timeout=5.0)
                    return False
            return self._proc.returncode == 0
        finally:
            self._proc = None

    def kill(self, timeout_s: float = 10.0) -> None:
        if self._proc is None:
            return
        try:
            if self._proc.poll() is None:
                self._proc.kill()
                self._proc.wait(timeout=timeout_s)
        finally:
            self._proc = None


def serve_argv(config: ServeConfig, port_file: Path) -> List[str]:
    """The ``repro serve`` command line for one process worker."""
    argv = [sys.executable, "-m", "repro", "serve",
            "--host", config.host, "--port", "0",
            "--port-file", str(port_file),
            "--window-ms", str(config.window_ms),
            "--max-inflight", str(config.max_inflight),
            "--drain-timeout", str(config.drain_timeout_s)]
    if config.workers is not None:
        argv += ["--workers", str(config.workers)]
    if config.cache_dir is not None:
        argv += ["--cache-dir", str(config.cache_dir)]
    if config.rate_per_s is not None:
        argv += ["--rate-limit", str(config.rate_per_s)]
    if config.warm_fast_path:
        argv.append("--warm")
    return argv
