"""Address-translation structures: ERAT, TLB and the table walker.

POWER10 quadruples MMU resources relative to POWER9 (Table I / Fig. 1):
the modeled TLB grows from 1K to 4K entries.  More important for energy
is *when* translation happens: with POWER9's RA-tagged L1s, the ERAT is
looked up on every L1 access; with POWER10's EA-tagged L1s it is looked
up only on an L1 miss.  That policy is applied by the LSU/pipeline —
this module just provides the structures and their hit/miss behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from ..errors import ConfigError

PAGE_BYTES = 4096


@dataclass
class TranslationResult:
    """Outcome of one effective-to-real translation."""

    erat_hit: bool
    tlb_hit: bool
    extra_latency: int       # cycles added beyond the ERAT lookup itself


class _LruTable:
    def __init__(self, entries: int):
        if entries <= 0:
            raise ConfigError("entries must be positive")
        self.entries = entries
        self._table: OrderedDict = OrderedDict()
        self.lookups = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        self.lookups += 1
        if page in self._table:
            self._table.move_to_end(page)
            return True
        self.misses += 1
        self._table[page] = True
        if len(self._table) > self.entries:
            self._table.popitem(last=False)
        return False

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


class MMU:
    """ERAT backed by a TLB backed by a (fixed-latency) table walker."""

    def __init__(self, erat_entries: int = 64, tlb_entries: int = 1024,
                 tlb_latency: int = 10, walk_latency: int = 60):
        self.erat = _LruTable(erat_entries)
        self.tlb = _LruTable(tlb_entries)
        self.tlb_latency = tlb_latency
        self.walk_latency = walk_latency
        self.tablewalks = 0

    def translate(self, address: int) -> TranslationResult:
        page = address // PAGE_BYTES
        if self.erat.access(page):
            return TranslationResult(True, True, 0)
        if self.tlb.access(page):
            return TranslationResult(False, True, self.tlb_latency)
        self.tablewalks += 1
        return TranslationResult(False, False,
                                 self.tlb_latency + self.walk_latency)
