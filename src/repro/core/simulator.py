"""High-level simulation API: single runs, suites, and SMT sweeps.

This is the public entry point most examples and benchmarks use:

>>> from repro.core import power10_config, simulate_trace
>>> result = simulate_trace(power10_config(), trace)
>>> result.ipc, result.power_w
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import SimulationError
from ..obs.metrics import get_registry
from ..obs.tracing import span as _obs_span
from .config import CoreConfig
from .pipeline import SimResult, simulate
from .activity import ActivityCounters


def simulate_trace(config: CoreConfig, trace, *,
                   with_power: bool = True,
                   sampler=None,
                   warmup_fraction: float = 0.0,
                   max_instructions: Optional[int] = None,
                   tier: str = "detailed",
                   ) -> "RunMeasurement":
    """Simulate one trace; optionally attach an Einspower power report.

    ``sampler`` (a :class:`repro.obs.sampler.CycleIntervalSampler`) is
    forwarded to the timing model for interval telemetry capture;
    ``warmup_fraction``/``max_instructions`` pass through to
    :func:`repro.core.pipeline.simulate`.  ``tier`` selects the
    simulator tier: ``"detailed"`` (the oracle) or ``"fast"`` (the
    columnar replay, :mod:`repro.fastsim`).
    """
    with _obs_span("simulator.simulate_trace", "core",
                   config=config.name, tier=tier,
                   trace=getattr(trace, "name", "?")) as sp:
        from ..fastsim.dispatch import simulate_tiered
        result = simulate_tiered(config, trace, tier=tier,
                                 sampler=sampler,
                                 warmup_fraction=warmup_fraction,
                                 max_instructions=max_instructions)
        measurement = measurement_from_result(config, result,
                                              with_power=with_power)
        if measurement.power_w is not None:
            sp.set(power_w=round(measurement.power_w, 3))
        registry = get_registry()
        registry.histogram(
            "repro_run_seconds",
            "wall time of simulate_trace").observe(
                sp.duration_s, config=config.name)
    return measurement


def measurement_from_result(config: CoreConfig, result: SimResult, *,
                            with_power: bool = True) -> "RunMeasurement":
    """Attach the power report to an existing timing result.

    Shared by the direct path above and the engine path below: power is
    always recomputed in the calling process from the (exact) activity
    counters, so a cached or worker-produced :class:`SimResult` yields
    a bit-identical :class:`RunMeasurement`.
    """
    power_w = None
    breakdown = None
    if with_power:
        from ..power.einspower import EinspowerModel
        report = EinspowerModel(config).report(result.activity)
        power_w = report.total_w
        breakdown = report
    get_registry().counter(
        "repro_runs_total",
        "simulate_trace invocations").inc(
            config=config.name, power=with_power)
    return RunMeasurement(result=result, power_w=power_w,
                          power_report=breakdown)


@dataclass
class RunMeasurement:
    """SimResult plus the attached power report (if requested)."""

    result: SimResult
    power_w: Optional[float] = None
    power_report: Optional[object] = None

    @property
    def ipc(self) -> float:
        return self.result.ipc

    @property
    def cpi(self) -> float:
        return self.result.cpi

    @property
    def flops_per_cycle(self) -> float:
        return self.result.flops_per_cycle

    @property
    def perf_per_watt(self) -> float:
        if self.power_w is None:
            raise SimulationError("run was measured without power")
        if self.power_w == 0.0:
            raise SimulationError(
                "measured power is zero; perf/watt is undefined")
        return self.result.ipc / self.power_w

    @property
    def energy_per_instruction_nj(self) -> float:
        """nJ per completed instruction (power x time / instructions)."""
        if self.power_w is None:
            raise SimulationError("run was measured without power")
        freq_hz = 1e9 * _freq_of(self.result)
        seconds = self.result.cycles / freq_hz
        return 1e9 * self.power_w * seconds / self.result.instructions


def _freq_of(result: SimResult) -> float:
    return float(result.metadata.get("frequency_ghz", 4.0))


@dataclass
class SuiteResult:
    """Weighted aggregate over a suite of traces (e.g. SPECint proxies)."""

    runs: List[RunMeasurement]
    weights: List[float]

    def __post_init__(self) -> None:
        if len(self.runs) != len(self.weights):
            raise SimulationError("runs and weights must align")
        if not self.runs:
            raise SimulationError("empty suite result")

    @property
    def mean_ipc(self) -> float:
        return self._weighted(lambda r: r.ipc)

    @property
    def mean_power_w(self) -> float:
        return self._weighted(lambda r: r.power_w or 0.0)

    @property
    def mean_cpi(self) -> float:
        return self._weighted(lambda r: r.cpi)

    @property
    def perf_per_watt(self) -> float:
        power = self.mean_power_w
        if power <= 0:
            raise SimulationError("suite has no power data")
        return self.mean_ipc / power

    @property
    def total_flushed(self) -> int:
        return sum(r.result.flushed_instructions for r in self.runs)

    @property
    def total_instructions(self) -> int:
        return sum(r.result.instructions for r in self.runs)

    def _weighted(self, fn) -> float:
        total_w = sum(self.weights)
        return sum(fn(r) * w for r, w in zip(self.runs, self.weights)) \
            / total_w


def simulate_suite(config: CoreConfig, traces: Sequence,
                   with_power: bool = True, sampler=None,
                   engine=None, tier: str = "detailed") -> SuiteResult:
    """Run a whole trace suite and aggregate by trace weight.

    Runs route through the execution engine
    (:class:`repro.exec.Engine`), so worker fan-out and the result
    cache apply; pass ``engine`` to share one across calls, or leave it
    None for the environment default (``$REPRO_WORKERS`` /
    ``$REPRO_CACHE_DIR``).  A shared ``sampler`` collects one telemetry
    segment per trace (run labels distinguish them) and forces the
    direct in-process path, since samplers are stateful.
    """
    if sampler is not None:
        runs = [simulate_trace(config, t, with_power=with_power,
                               sampler=sampler, tier=tier)
                for t in traces]
    else:
        from ..exec.executor import Engine, run_sim_plan, sim_task
        if engine is None:
            engine = Engine()
        results = run_sim_plan(
            engine, [sim_task(config, t, tier=tier) for t in traces])
        runs = [measurement_from_result(config, r,
                                        with_power=with_power)
                for r in results]
    weights = [getattr(t, "weight", 1.0) for t in traces]
    return SuiteResult(runs=runs, weights=weights)


def compare_configs(configs: Sequence[CoreConfig], traces: Sequence,
                    with_power: bool = True,
                    engine=None,
                    tier: str = "detailed") -> Dict[str, SuiteResult]:
    """Run the same suite across configs; keys are config names.

    All (config, trace) runs go to the engine as one flat plan, so
    ``workers=N`` parallelizes across the whole cross product rather
    than one suite at a time.
    """
    from ..exec.executor import Engine, run_sim_plan, sim_task
    if engine is None:
        engine = Engine()
    traces = list(traces)
    results = run_sim_plan(
        engine, [sim_task(c, t, tier=tier)
                 for c in configs for t in traces])
    weights = [getattr(t, "weight", 1.0) for t in traces]
    out: Dict[str, SuiteResult] = {}
    for ci, config in enumerate(configs):
        block = results[ci * len(traces):(ci + 1) * len(traces)]
        runs = [measurement_from_result(config, r,
                                        with_power=with_power)
                for r in block]
        out[config.name] = SuiteResult(runs=runs,
                                       weights=list(weights))
    return out
