"""Socket-level scaling model.

The paper's socket numbers layer three multipliers onto the per-core
results: core count per socket (POWER9: 24 cores/dual-chip comparison
point vs POWER10: up to 60 SMT4-equivalent cores → ~2.5x), a system
factor (~1.1x from bandwidth/software/system configuration), and shared
uncore power.  For AI workloads an additional precision factor applies
when moving from FP32 to INT8 on the MMA (rank-4 int8 ger performs 4x
the MACs of the rank-1 fp32 ger, of which roughly 2x survives end to
end at the model level).

Socket energy-efficiency ("up to 3x" in Table I) combines the core-level
2.6x perf/W with uncore amortization over more cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class SocketConfig:
    """Socket composition for one generation."""

    name: str
    cores: int
    core_power_w: float          # per-core power under the workload
    uncore_power_w: float        # memory/IO/fabric, shared
    system_factor: float = 1.0   # bandwidth/software/system uplift

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError("socket needs at least one core")
        if self.core_power_w < 0 or self.uncore_power_w < 0:
            raise ConfigError("power must be non-negative")


POWER9_SOCKET = SocketConfig(
    name="POWER9-socket", cores=24, core_power_w=0.0,
    uncore_power_w=60.0, system_factor=1.0)

POWER10_SOCKET = SocketConfig(
    name="POWER10-socket", cores=60, core_power_w=0.0,
    uncore_power_w=55.0, system_factor=1.1)


@dataclass
class SocketProjection:
    """Socket throughput/power derived from a per-core measurement."""

    name: str
    throughput: float
    power_w: float

    @property
    def efficiency(self) -> float:
        if self.power_w <= 0:
            raise ConfigError("socket power must be positive")
        return self.throughput / self.power_w


def project_socket(config: SocketConfig, core_throughput: float,
                   core_power_w: float) -> SocketProjection:
    """Scale a per-core (throughput, power) pair to the socket."""
    if core_throughput < 0 or core_power_w < 0:
        raise ConfigError("core measurements must be non-negative")
    return SocketProjection(
        name=config.name,
        throughput=core_throughput * config.cores * config.system_factor,
        power_w=core_power_w * config.cores + config.uncore_power_w)


# Precision scaling on the MMA: MACs per ger instruction by dtype,
# relative to fp32 (Section II-C: INT8 models reach 21x vs 10x for FP32,
# i.e. ~2.1x from precision end to end).
MMA_PRECISION_THROUGHPUT = {
    "fp64": 0.5,
    "fp32": 1.0,
    "bf16": 2.0,
    "int8": 4.0,
}

# Fraction of the raw precision throughput that survives at the
# application level (quantization overheads, non-GEMM phases).
# calibrated: 21x / 10x for int8 vs fp32 implies ~0.53 realization.
MMA_PRECISION_REALIZATION = {
    "fp64": 1.0,
    "fp32": 1.0,
    "bf16": 0.75,
    "int8": 0.53,
}


def precision_speedup(dtype: str) -> float:
    """End-to-end speedup factor of running the MMA at ``dtype``
    relative to fp32."""
    if dtype not in MMA_PRECISION_THROUGHPUT:
        raise ConfigError(f"unknown MMA precision: {dtype!r}")
    return (MMA_PRECISION_THROUGHPUT[dtype]
            * MMA_PRECISION_REALIZATION[dtype])
