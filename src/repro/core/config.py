"""Core configurations for the modeled POWER9 and POWER10 processors.

Every micro-architectural knob the paper discusses is an explicit field
here: pipeline widths, queue/window sizes, cache geometry and latency,
branch-predictor generation, EA- vs RA-tagged L1s, fusion, the MMA unit,
and the power coefficients consumed by :mod:`repro.power`.

Two factory functions build the shipped configurations
(:func:`power9_config`, :func:`power10_config`); the Fig. 4 experiment
applies single POWER10 features onto the POWER9 base via
:func:`apply_features`.

Calibration policy (see DESIGN.md): per-event energies and clock-power
coefficients are marked ``# calibrated:`` where their magnitude was tuned
so that the modeled mechanisms reproduce the paper's aggregate numbers on
the same workloads.  No benchmark result is hard-coded.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Tuple

from ..errors import ConfigError
from .caches import CacheGeometry, HierarchyGeometry

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class FrontEndConfig:
    """Fetch/decode stage parameters."""

    fetch_width: int            # instructions fetched per cycle
    decode_width: int           # instructions decoded per cycle
    ibuffer_entries: int
    fusion_enabled: bool
    branch_kind: str            # "power9" | "power10"
    branch_scale: int = 1       # table size multiplier (Fig. 4 ladder)
    redirect_penalty: int = 10  # cycles from resolve to refetch
    # average fraction of wrong-path fetch slots actually filled before a
    # mispredicted branch resolves (drives flushed-instruction counts)
    wrong_path_fill: float = 0.55


@dataclass(frozen=True)
class IssueConfig:
    """Out-of-order window and execution resources (per SMT4 half-core)."""

    window_entries: int         # instruction table (completion) entries
    issueq_entries: int
    rename_registers: int
    fx_ports: int
    fx_muldiv_ports: int
    load_ports: int
    store_ports: int
    vsx_ports: int              # number of 128-bit VSX pipes
    branch_ports: int
    completion_width: int
    # extra cycles on the main execution pipe traded for the unified,
    # two-write-port sliced register file (POWER10, Section II-B)
    rf_extra_stage: int = 0
    mma_present: bool = False
    mma_ops_per_cycle: int = 1  # 512-bit outer products accepted per cycle


@dataclass(frozen=True)
class LSUConfig:
    """Load/store unit and queues."""

    load_queue_smt: int
    load_queue_st: int
    store_queue_smt: int
    store_queue_st: int
    load_miss_queue: int
    store_merge_enabled: bool
    max_access_bytes: int       # 16B on POWER9, 32B on POWER10


@dataclass(frozen=True)
class MMUConfig:
    erat_entries: int
    tlb_entries: int
    tlb_latency: int
    walk_latency: int


@dataclass
class EnergyTable:
    """Per-event dynamic energies in pJ.

    Keys must be a subset of :data:`repro.core.activity.EVENT_NAMES`.
    Events absent from the table are free (e.g. pure bookkeeping events).
    """

    per_event_pj: Dict[str, float]

    def energy_pj(self, event: str) -> float:
        return self.per_event_pj.get(event, 0.0)

    def scaled(self, factor: float) -> "EnergyTable":
        return EnergyTable({k: v * factor
                            for k, v in self.per_event_pj.items()})


@dataclass(frozen=True)
class PowerConfig:
    """Clock-tree/latch, leakage and per-event energy parameters."""

    energy: EnergyTable
    # watts of latch+clock power per unit at 100% clock enable
    unit_clock_w: Dict[str, float]
    # fraction of latch clocks that remain enabled even when a unit is
    # idle.  POWER9: gating added after function ("gate-after"); POWER10:
    # clocks off by default.  This single discipline knob is the largest
    # contributor to the core power reduction.
    gating_floor: float
    leakage_w: float
    frequency_ghz: float
    voltage_v: float = 1.0
    # leakage of the (power-gateable) MMA unit, charged only while on
    mma_leakage_w: float = 0.0
    # fraction of array/RF input switching not corresponding to a write
    # ("ghost switching", Section II-B); POWER10 design rules drove it down
    ghost_factor: float = 0.15


@dataclass(frozen=True)
class CoreConfig:
    """Complete configuration of one modeled core."""

    name: str
    generation: str             # "power9" | "power10"
    front_end: FrontEndConfig
    issue: IssueConfig
    lsu: LSUConfig
    mmu: MMUConfig
    hierarchy: HierarchyGeometry
    power: PowerConfig
    smt: int = 1                # hardware threads sharing the core
    # EA-tagged L1s translate only on miss (POWER10);
    # RA-tagged L1s translate on every access (POWER9).
    ea_tagged_l1: bool = False

    def __post_init__(self) -> None:
        if self.smt not in (1, 2, 4, 8):
            raise ConfigError(f"unsupported SMT level: {self.smt}")
        if self.front_end.decode_width <= 0:
            raise ConfigError("decode width must be positive")
        if self.issue.window_entries < self.front_end.decode_width:
            raise ConfigError("window smaller than decode width")

    def with_smt(self, smt: int) -> "CoreConfig":
        return replace(self, smt=smt)

    @property
    def vsx_flops_per_cycle_fp64(self) -> int:
        """Peak fp64 FLOPs/cycle of the vector engine (FMA = 2 FLOPs)."""
        return self.issue.vsx_ports * 4     # 128b = 2 fp64 lanes * FMA

    @property
    def mma_flops_per_cycle_fp64(self) -> int:
        """Peak fp64 FLOPs/cycle of the MMA (0 when absent)."""
        if not self.issue.mma_present:
            return 0
        # one 512-bit fp64 outer product: 4x2 grid of MACs = 16 FLOPs
        return 16 * self.issue.mma_ops_per_cycle


# --------------------------------------------------------------------------
# Energy tables.
#
# Magnitudes are in picojoules per event at nominal voltage/frequency.
# calibrated: absolute scale chosen so core power lands in the low single
# digit watts and the POWER10/POWER9 mechanisms reproduce the paper's
# aggregate -50% power / +30% performance on the SPECint proxy suite.
# --------------------------------------------------------------------------

_P9_EVENT_PJ: Dict[str, float] = {
    "fetch_instr": 8.0,
    "icache_access": 30.0,
    "icache_miss": 60.0,
    "predecode_instr": 2.0,
    "bp_dir_lookup": 7.0,
    "bp_tgt_lookup": 5.0,
    "ibuffer_write": 3.0,
    "decode_instr": 12.0,
    "dispatch_iop": 8.0,
    "rename_write": 7.0,
    "issueq_write": 9.0,        # reservation-station style on POWER9
    "issueq_wakeup": 4.0,
    "issue_fx": 14.0,
    "issue_fx_muldiv": 45.0,
    "issue_branch": 8.0,
    "issue_cr": 5.0,
    "issue_fp": 40.0,
    "issue_vsx": 55.0,
    "issue_mma": 0.0,           # no MMA on POWER9
    "mma_acc_access": 0.0,
    "mma_move": 0.0,
    "rf_read": 6.0,
    "rf_write": 9.0,
    "agen": 7.0,
    "l1d_access": 32.0,
    "l1d_miss": 20.0,
    "load_issue": 6.0,
    "store_issue": 6.0,
    "loadq_write": 5.0,
    "storeq_write": 7.0,
    "storeq_merge": 2.0,
    "lmq_alloc": 4.0,
    "erat_lookup": 16.0,        # RA-tagged L1: paid on *every* access
    "erat_miss": 10.0,
    "tlb_lookup": 30.0,
    "tlb_miss": 15.0,
    "tablewalk": 450.0,
    "prefetch_issued": 12.0,
    "l2_access": 110.0,
    "l2_miss": 40.0,
    "l3_access": 260.0,
    "l3_miss": 60.0,
    "mem_access": 900.0,
    "complete_instr": 4.0,
    "flush_instr": 3.0,         # recovery bookkeeping per squashed instr
    "flush_event": 60.0,
}

# POWER10 structural redesign: removal of reservation stations, sliced
# unified register file with 2 write ports per slice, merged branch/rename
# structures, paired decode/completion.  calibrated: 0.74x on the touched
# structures reproduces the reported switching-capacitance reduction.
_P10_STRUCT_SCALE = 0.74
_P10_TOUCHED = ("decode_instr", "dispatch_iop", "rename_write",
                "issueq_write", "issueq_wakeup", "rf_read", "rf_write",
                "issue_branch", "complete_instr", "issue_fx", "agen",
                "l1d_access", "fetch_instr")

_P10_EVENT_PJ: Dict[str, float] = dict(_P9_EVENT_PJ)
for _key in _P10_TOUCHED:
    _P10_EVENT_PJ[_key] = round(_P9_EVENT_PJ[_key] * _P10_STRUCT_SCALE, 2)
_P10_EVENT_PJ.update({
    # doubled predictor resources cost a bit more per lookup
    "bp_dir_lookup": 8.0,
    "bp_tgt_lookup": 6.0,
    # one shared translation pipeline, only exercised on L1 miss
    "erat_lookup": 14.0,
    # the MMA: one 512-bit outer product.  Energy per *FLOP* is far below
    # the VSX pipes because operands stay in the local accumulators.
    "issue_mma": 100.0,
    "mma_acc_access": 14.0,
    "mma_move": 30.0,
    "issue_vsx": 33.0,
})


# calibrated: per-unit latch/clock-tree power (W at 100% clock enable).
_P9_UNIT_CLOCK_W: Dict[str, float] = {
    "ifu": 0.55, "decode": 0.45, "dispatch": 0.30, "issueq": 0.50,
    "fx": 0.40, "fx_muldiv": 0.15, "branch": 0.20, "cr": 0.08,
    "fp": 0.25, "vsu": 0.60, "mma": 0.0, "regfile": 0.55, "lsu": 0.55,
    "l1d": 0.35, "erat_mmu": 0.30, "prefetch": 0.12, "l2": 0.40,
    "l3": 0.30, "completion": 0.25,
}

# POWER10 has ~2x the compute resources, so raw latch counts rise; the
# redesigned structures claw back some clock power per latch.
# calibrated: the redesigned POWER10 structures clock far fewer latches
# per delivered operation (reservation-station removal, 2-write-port
# sliced register file, paired decode) — about 0.6x POWER9 per function
# even with twice the compute resources.
_P10_UNIT_CLOCK_W: Dict[str, float] = {
    "ifu": 0.38, "decode": 0.26, "dispatch": 0.16, "issueq": 0.24,
    "fx": 0.26, "fx_muldiv": 0.09, "branch": 0.10, "cr": 0.05,
    "fp": 0.15, "vsu": 0.58, "mma": 0.26, "regfile": 0.37, "lsu": 0.37,
    "l1d": 0.24, "erat_mmu": 0.13, "prefetch": 0.09, "l2": 0.34,
    "l3": 0.18, "completion": 0.14,
}


def _p9_hierarchy(infinite_l2: bool = False,
                  cache_scale: int = 1) -> HierarchyGeometry:
    return HierarchyGeometry(
        l1i=CacheGeometry(32 * KIB // cache_scale,
                          8 if cache_scale == 1 else 4, latency=3,
                          ea_tagged=False),
        l1d=CacheGeometry(32 * KIB // cache_scale,
                          8 if cache_scale == 1 else 4, latency=4,
                          ea_tagged=False),
        l2=CacheGeometry(512 * KIB // cache_scale, 8, latency=14),
        l3=CacheGeometry(10 * MIB // cache_scale, 20, latency=33),
        memory_latency=240,
        prefetch_streams=8,
        prefetch_depth=4,
        infinite_l2=infinite_l2,
    )


def _p10_hierarchy(infinite_l2: bool = False,
                   cache_scale: int = 1) -> HierarchyGeometry:
    return HierarchyGeometry(
        l1i=CacheGeometry(48 * KIB // cache_scale,
                          6 if cache_scale == 1 else 3, latency=3,
                          ea_tagged=True),
        l1d=CacheGeometry(32 * KIB // cache_scale,
                          8 if cache_scale == 1 else 4, latency=4,
                          ea_tagged=True),
        l2=CacheGeometry(2 * MIB // cache_scale, 8, latency=12),
        l3=CacheGeometry(8 * MIB // cache_scale, 16, latency=28),
        memory_latency=225,
        prefetch_streams=16,
        prefetch_depth=6,
        infinite_l2=infinite_l2,
    )


def power9_config(smt: int = 1, infinite_l2: bool = False,
                  cache_scale: int = 1) -> CoreConfig:
    """The POWER9 baseline core (SMT4-half resources, cf. Fig. 3).

    ``cache_scale`` divides every cache capacity (and the TLB) by the
    given factor for sampled-simulation runs: short traces cannot
    exercise megabyte-scale caches, so suite-level experiments shrink
    caches and workload footprints by the same factor, the standard
    sampled-simulation technique.  Latencies are unchanged.
    """
    return CoreConfig(
        name="POWER9",
        generation="power9",
        smt=smt,
        ea_tagged_l1=False,
        front_end=FrontEndConfig(
            fetch_width=8, decode_width=6, ibuffer_entries=96,
            fusion_enabled=False, branch_kind="power9",
            redirect_penalty=11, wrong_path_fill=0.55),
        issue=IssueConfig(
            window_entries=256, issueq_entries=64, rename_registers=128,
            fx_ports=4, fx_muldiv_ports=1, load_ports=2, store_ports=2,
            vsx_ports=2, branch_ports=1, completion_width=6,
            rf_extra_stage=0, mma_present=False),
        lsu=LSUConfig(
            load_queue_smt=64, load_queue_st=32,
            store_queue_smt=40, store_queue_st=20,
            load_miss_queue=10, store_merge_enabled=False,
            max_access_bytes=16),
        mmu=MMUConfig(erat_entries=64,
                      tlb_entries=max(256, 1024 // cache_scale),
                      tlb_latency=12, walk_latency=70),
        hierarchy=_p9_hierarchy(infinite_l2, cache_scale),
        power=PowerConfig(
            energy=EnergyTable(dict(_P9_EVENT_PJ)),
            unit_clock_w=dict(_P9_UNIT_CLOCK_W),
            gating_floor=0.52,      # calibrated: gate-after discipline
            leakage_w=0.65,
            frequency_ghz=4.0,
            ghost_factor=0.25),
    )


def power10_config(smt: int = 1, infinite_l2: bool = False,
                   cache_scale: int = 1) -> CoreConfig:
    """The POWER10 core (SMT4-half resources, cf. Fig. 3).

    See :func:`power9_config` for the ``cache_scale`` convention.
    """
    return CoreConfig(
        name="POWER10",
        generation="power10",
        smt=smt,
        ea_tagged_l1=True,
        front_end=FrontEndConfig(
            fetch_width=8, decode_width=8, ibuffer_entries=128,
            fusion_enabled=True, branch_kind="power10",
            redirect_penalty=10, wrong_path_fill=0.55),
        issue=IssueConfig(
            window_entries=512, issueq_entries=128, rename_registers=256,
            fx_ports=4, fx_muldiv_ports=2, load_ports=2, store_ports=2,
            vsx_ports=4, branch_ports=2, completion_width=8,
            rf_extra_stage=1, mma_present=True, mma_ops_per_cycle=2),
        lsu=LSUConfig(
            load_queue_smt=128, load_queue_st=64,
            store_queue_smt=80, store_queue_st=40,
            load_miss_queue=12, store_merge_enabled=True,
            max_access_bytes=32),
        mmu=MMUConfig(erat_entries=64,
                      tlb_entries=max(512, 4096 // cache_scale),
                      tlb_latency=10, walk_latency=60),
        hierarchy=_p10_hierarchy(infinite_l2, cache_scale),
        power=PowerConfig(
            energy=EnergyTable(dict(_P10_EVENT_PJ)),
            unit_clock_w=dict(_P10_UNIT_CLOCK_W),
            gating_floor=0.13,      # calibrated: clocks off by default
            leakage_w=0.45,
            frequency_ghz=4.0,
            mma_leakage_w=0.12,
            ghost_factor=0.07),
    )


# --------------------------------------------------------------------------
# Fig. 4 feature ladder: single POWER10 design changes applied to the
# POWER9 baseline.
# --------------------------------------------------------------------------

FEATURE_NAMES = ("branch", "latency_bw", "l2_cache", "decode_vsx", "queues")


def apply_features(base: CoreConfig,
                   features: Iterable[str]) -> CoreConfig:
    """Return a copy of ``base`` with the named POWER10 features applied.

    Feature names (matching the Fig. 4 x-axis):

    * ``branch``      — POWER10 direction/indirect predictors, doubled
      prediction resources, faster redirect.
    * ``latency_bw``  — reduced L2/L3/memory latencies, deeper prefetch,
      32-byte load/store accesses.
    * ``l2_cache``    — 4x larger private L2 (2 MB at full scale).
    * ``decode_vsx``  — 8-wide paired decode, doubled VSX pipes, fusion.
    * ``queues``      — doubled window, issue queue, rename, LQ/SQ/LMQ.
    """
    cfg = base
    for feature in features:
        if feature == "branch":
            cfg = replace(cfg, front_end=replace(
                cfg.front_end, branch_kind="power10", branch_scale=1,
                redirect_penalty=10))
        elif feature == "latency_bw":
            hier = cfg.hierarchy
            cfg = replace(cfg, hierarchy=dataclasses.replace(
                hier,
                l2=replace(hier.l2, latency=12),
                l3=replace(hier.l3, latency=29),
                memory_latency=225,
                prefetch_streams=16, prefetch_depth=6))
            cfg = replace(cfg, lsu=replace(cfg.lsu, max_access_bytes=32))
        elif feature == "l2_cache":
            # quadruple the private L2 capacity (same latency); the L1I
            # and TLB growth ship with the full POWER10 config but are
            # not part of this Fig. 4 category
            hier = cfg.hierarchy
            cfg = replace(cfg, hierarchy=dataclasses.replace(
                hier, l2=CacheGeometry(hier.l2.size_bytes * 4, 8,
                                       latency=hier.l2.latency)))
        elif feature == "decode_vsx":
            cfg = replace(cfg, front_end=replace(
                cfg.front_end, decode_width=8, fusion_enabled=True))
            cfg = replace(cfg, issue=replace(
                cfg.issue, vsx_ports=4, completion_width=8))
        elif feature == "queues":
            cfg = replace(cfg, issue=replace(
                cfg.issue, window_entries=512, issueq_entries=128,
                rename_registers=256))
            cfg = replace(cfg, lsu=replace(
                cfg.lsu, load_queue_smt=128, load_queue_st=64,
                store_queue_smt=80, store_queue_st=40,
                load_miss_queue=12))
        else:
            raise ConfigError(f"unknown feature: {feature!r}")
    return replace(cfg, name=f"{base.name}+{'+'.join(features)}")
