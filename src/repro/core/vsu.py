"""Functional model of the 128-bit VSX vector-scalar unit.

Used by the GEMM kernels to validate the vector code path numerically
(the timing side is in the pipeline model).  A VSR is 128 bits: two fp64
lanes or four fp32 lanes.  POWER9 has two of these pipes per SMT4-half
core; POWER10 doubles that to four ("2x General SIMD", Fig. 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from ..errors import SimulationError

VSR_BITS = 128
FP64_LANES = 2
FP32_LANES = 4


class VSUnit:
    """A register file of 64 VSRs plus vector FMA semantics."""

    def __init__(self):
        self._vsrs = np.zeros((64, FP32_LANES), dtype=np.float64)
        self.instructions_executed = 0

    def _check(self, idx: int) -> None:
        if not 0 <= idx < 64:
            raise SimulationError(f"VSR index out of range: {idx}")

    def load(self, idx: int, values: np.ndarray) -> None:
        """lxv: load a full 128-bit VSR (given as lane values)."""
        self._check(idx)
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size not in (FP64_LANES, FP32_LANES):
            raise SimulationError("lane count must be 2 (fp64) or 4 (fp32)")
        self._vsrs[idx, :] = 0.0
        self._vsrs[idx, :values.size] = values

    def read(self, idx: int, lanes: int = FP32_LANES) -> np.ndarray:
        self._check(idx)
        return self._vsrs[idx, :lanes].copy()

    def splat(self, idx: int, value: float, lanes: int = FP32_LANES) -> None:
        """xxspltw/xxspltd: replicate a scalar across all lanes."""
        self._check(idx)
        self._vsrs[idx, :] = 0.0
        self._vsrs[idx, :lanes] = value

    def fma(self, dst: int, a: int, b: int, lanes: int = FP32_LANES) -> None:
        """xvmaddadp/xvmaddasp: dst += a * b elementwise."""
        for idx in (dst, a, b):
            self._check(idx)
        self._vsrs[dst, :lanes] += (self._vsrs[a, :lanes]
                                    * self._vsrs[b, :lanes])
        self.instructions_executed += 1


def vsu_gemm(a: np.ndarray, b: np.ndarray, lanes: int = FP64_LANES,
             unit: Optional[VSUnit] = None) -> np.ndarray:
    """Compute ``a @ b`` with splat+FMA vector code (BLAS1-style).

    Mirrors the structure of an OpenBLAS vector micro-kernel: for each
    output row-panel, the A element is splatted and multiply-added
    against B row vectors.  The instruction counts this implies are what
    :mod:`repro.workloads.gemm` models for the VSU variant in Fig. 5.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise SimulationError("incompatible GEMM shapes")
    unit = unit or VSUnit()
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n), dtype=np.float64)
    for j0 in range(0, n, lanes):
        width = min(lanes, n - j0)
        for i in range(m):
            unit.load(0, np.zeros(lanes))                 # acc VSR
            for kk in range(k):
                unit.splat(1, a[i, kk], lanes)            # splat A
                bvec = np.zeros(lanes)
                bvec[:width] = b[kk, j0:j0 + width]
                unit.load(2, bvec)                        # load B
                unit.fma(0, 1, 2, lanes)
            out[i, j0:j0 + width] = unit.read(0, lanes)[:width]
    return out


def vector_fma_count_for_gemm(m: int, n: int, k: int,
                              lanes: int = FP32_LANES) -> int:
    """Number of 128-bit FMA instructions an ``m x n x k`` GEMM needs."""
    panels = -(-n // lanes)
    return panels * m * k
