"""Per-unit activity accounting for the core timing model.

The paper's entire power methodology (Einspower reports, Powerminer
switching stats, APEX extraction, counter-based models, the hardware
power proxy, SERMiner derating) consumes *activity*: how often each
structure was clocked, read, written or left idle.  The timing model
emits that activity through :class:`ActivityCounters`, which is the
single interface between the performance substrate and every power tool
in :mod:`repro.power`.

Events are plain string keys.  The canonical event list lives in
``EVENT_NAMES``.  In *strict* mode (``strict=True``, enabled across the
test suite and settable process-wide via :func:`set_strict_default`)
counting an unknown event or unit raises
:class:`~repro.errors.SimulationError`, catching typos in the pipeline
model early; in non-strict mode unknown names are accumulated under the
given key so ad-hoc extensions don't crash, but no power component will
ever charge them — ``repro lint`` rule R001 catches literal typos
statically either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from ..errors import SimulationError

# Canonical activity events.  Each maps to one component in
# repro.power.components; the mapping itself lives there so the timing
# model stays power-agnostic.
EVENT_NAMES = (
    # front end
    "fetch_instr",            # instruction fetched (includes wrong path)
    "icache_access",          # 32B sector read from L1I
    "icache_miss",
    "predecode_instr",
    "bp_dir_lookup",          # direction predictor lookup
    "bp_tgt_lookup",          # target (BTB / indirect) lookup
    "bp_mispredict",
    "ibuffer_write",
    "decode_instr",           # architected instruction decoded
    "fusion_pair",            # two instructions fused into one iop
    "dispatch_iop",
    "rename_write",
    "issueq_write",
    "issueq_wakeup",
    # execution
    "issue_fx",
    "issue_fx_muldiv",
    "issue_branch",
    "issue_cr",
    "issue_fp",
    "issue_vsx",              # one 128-bit VSX op
    "issue_mma",              # one MMA outer-product op (512-bit result)
    "mma_acc_access",         # accumulator read-modify-write
    "mma_move",
    "rf_read",
    "rf_write",
    # load/store and translation
    "agen",
    "l1d_access",
    "l1d_miss",
    "load_issue",
    "store_issue",
    "loadq_write",
    "storeq_write",
    "storeq_merge",           # two store-queue entries merged/gathered
    "lmq_alloc",
    "erat_lookup",            # EA->RA translation performed
    "erat_miss",
    "tlb_lookup",
    "tlb_miss",
    "tablewalk",
    "prefetch_issued",
    "prefetch_useful",
    # second/third level cache
    "l2_access",
    "l2_miss",
    "l3_access",
    "l3_miss",
    "mem_access",
    # back end
    "complete_instr",
    "flush_instr",            # wrong-path instruction discarded
    "flush_event",            # pipeline flush (per mispredict/exception)
)

_EVENT_SET = frozenset(EVENT_NAMES)

# Units whose busy-cycle occupancy is tracked for clock-gating modeling.
UNIT_NAMES = (
    "ifu", "decode", "dispatch", "issueq", "fx", "fx_muldiv", "branch",
    "cr", "fp", "vsu", "mma", "regfile", "lsu", "l1d", "erat_mmu",
    "prefetch", "l2", "l3", "completion",
)

_UNIT_SET = frozenset(UNIT_NAMES)

# Process-wide default for ActivityCounters.strict.  The test suite
# turns this on (tests/conftest.py) so any typo'd event that slips past
# the static R001 check still fails loudly at runtime.
_STRICT_DEFAULT = False


def set_strict_default(value: bool) -> bool:
    """Set the process default for ``ActivityCounters.strict``.

    Returns the previous default so callers can restore it.
    """
    global _STRICT_DEFAULT
    previous = _STRICT_DEFAULT
    _STRICT_DEFAULT = bool(value)
    return previous


@dataclass
class ActivityCounters:
    """Accumulates event counts and per-unit busy cycles for one run."""

    cycles: int = 0
    instructions: int = 0          # completed (architected) instructions
    events: Dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(EVENT_NAMES, 0))
    unit_busy_cycles: Dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(UNIT_NAMES, 0))
    strict: bool = field(default_factory=lambda: _STRICT_DEFAULT)

    def count(self, event: str, n: int = 1) -> None:
        if event not in _EVENT_SET:
            if self.strict:
                raise SimulationError(
                    f"unknown activity event: {event!r} (not in "
                    f"repro.core.activity.EVENT_NAMES)")
            self.events[event] = self.events.get(event, 0) + n
            return
        self.events[event] += n

    def force(self, event: str, value: int) -> None:
        """Overwrite one event count in place (fault-injection hook).

        Unlike :meth:`count` the value *replaces* the accumulated
        count.  The write is validated the way a hardware counter
        validates parity: a non-integer or negative count can never be
        a legal accumulation, so it raises
        :class:`~repro.errors.SimulationError` — which is how a fault
        campaign's corrupted counter becomes a *detected* outcome
        instead of a silent one.
        """
        if event not in _EVENT_SET and self.strict:
            raise SimulationError(
                f"unknown activity event: {event!r} (not in "
                f"repro.core.activity.EVENT_NAMES)")
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            raise SimulationError(
                f"invalid count for event {event!r}: {value!r} "
                f"(counts must be non-negative integers)")
        self.events[event] = value

    def busy(self, unit: str, cycles: int = 1) -> None:
        if unit not in _UNIT_SET:
            if self.strict:
                raise SimulationError(
                    f"unknown unit: {unit!r} (not in "
                    f"repro.core.activity.UNIT_NAMES)")
            self.unit_busy_cycles[unit] = \
                self.unit_busy_cycles.get(unit, 0) + cycles
            return
        self.unit_busy_cycles[unit] += cycles

    def utilization(self, unit: str) -> float:
        """Fraction of run cycles the unit was doing useful work."""
        if unit not in self.unit_busy_cycles:
            if self.strict:
                raise SimulationError(f"unknown unit: {unit!r}")
            return 0.0
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.unit_busy_cycles[unit] / self.cycles)

    def merge(self, other: "ActivityCounters") -> None:
        """Accumulate another run's activity into this one (in place)."""
        self.cycles += other.cycles
        self.instructions += other.instructions
        for key, val in other.events.items():
            self.events[key] = self.events.get(key, 0) + val
        for key, val in other.unit_busy_cycles.items():
            self.unit_busy_cycles[key] = \
                self.unit_busy_cycles.get(key, 0) + val

    def as_vector(self, names: Iterable[str]) -> List[float]:
        """Event counts in a fixed order, for regression model features."""
        return [float(self.events[name]) for name in names]

    def rates(self) -> Mapping[str, float]:
        """Events per cycle — the natural feature space for power models."""
        if self.cycles <= 0:
            return {name: 0.0 for name in EVENT_NAMES}
        return {name: cnt / self.cycles for name, cnt in self.events.items()}

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0
