"""Set-associative cache models and the POWER cache hierarchy.

Two properties matter for the paper's results and are modeled here:

* geometry (size/associativity/latency) per level — POWER10 grows the
  L1I to 48 KB 6-way, the private L2 to 2 MB, and trims latencies;
* the tagging scheme of the L1s — POWER9 L1s are real-address (RA)
  tagged so *every* access pays an ERAT translation, while POWER10 L1s
  are effective-address (EA) tagged so translation is only needed on an
  L1 miss.  The tagging flag lives here; the energy consequence is
  applied by the LSU model.

Caches are LRU, write-allocate, with 64-byte lines.  A simple stream
prefetcher (16 streams on POWER10) can be attached in front of the L2.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from ..errors import ConfigError

LINE_BYTES = 64


@dataclass
class CacheGeometry:
    """Static shape of one cache level."""

    size_bytes: int
    associativity: int
    latency: int                 # load-to-use cycles on hit at this level
    ea_tagged: bool = False      # True: indexed+tagged by effective address
    line_bytes: int = LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigError("cache size must be a whole number of sets")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


class Cache:
    """One LRU set-associative cache level."""

    def __init__(self, geometry: CacheGeometry, name: str = "cache"):
        self.geometry = geometry
        self.name = name
        self._sets: Dict[int, OrderedDict] = {}
        self.accesses = 0
        self.misses = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.geometry.line_bytes
        return line % self.geometry.num_sets, line

    def probe(self, address: int) -> bool:
        """Check presence without updating LRU or counters."""
        set_idx, tag = self._locate(address)
        cache_set = self._sets.get(set_idx)
        return cache_set is not None and tag in cache_set

    def access(self, address: int) -> bool:
        """Access a line; returns True on hit.  Misses allocate."""
        self.accesses += 1
        set_idx, tag = self._locate(address)
        cache_set = self._sets.setdefault(set_idx, OrderedDict())
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return True
        self.misses += 1
        cache_set[tag] = True
        if len(cache_set) > self.geometry.associativity:
            cache_set.popitem(last=False)
        return False

    def fill(self, address: int) -> None:
        """Install a line (prefetch path) without counting an access."""
        set_idx, tag = self._locate(address)
        cache_set = self._sets.setdefault(set_idx, OrderedDict())
        cache_set[tag] = True
        cache_set.move_to_end(tag)
        if len(cache_set) > self.geometry.associativity:
            cache_set.popitem(last=False)

    def invalidate_all(self) -> None:
        self._sets.clear()

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class StreamPrefetcher:
    """Stride-1 stream prefetcher in front of the L2/L3.

    Tracks up to ``max_streams`` ascending-line streams; once a stream is
    confirmed it prefetches ``depth`` lines ahead into the target cache.
    POWER10 supports 16 streams with L3 prefetch extension (48 entries).
    """

    def __init__(self, max_streams: int = 16, depth: int = 4):
        self.max_streams = max_streams
        self.depth = depth
        self._streams: OrderedDict = OrderedDict()   # start line -> next
        self.issued = 0
        self.useful = 0

    def train(self, address: int) -> list:
        """Observe a demand miss; returns line addresses to prefetch."""
        line = address // LINE_BYTES
        for key, expected in list(self._streams.items()):
            if line == expected:
                self._streams[key] = line + 1
                self._streams.move_to_end(key)
                self.issued += self.depth
                return [(line + 1 + i) * LINE_BYTES
                        for i in range(self.depth)]
        self._streams[line] = line + 1
        if len(self._streams) > self.max_streams:
            self._streams.popitem(last=False)
        return []


@dataclass
class AccessResult:
    """Outcome of a hierarchy access: service level and latency."""

    level: str                   # "l1" | "l2" | "l3" | "mem"
    latency: int
    l1_hit: bool
    prefetch_hit: bool = False


@dataclass
class HierarchyGeometry:
    """Cache-hierarchy shape for one core configuration."""

    l1i: CacheGeometry
    l1d: CacheGeometry
    l2: CacheGeometry
    l3: CacheGeometry
    memory_latency: int
    prefetch_streams: int = 8
    prefetch_depth: int = 4
    # Chip-model vs core-model switch (Fig. 10): the core model idealizes
    # everything past the L2 ("infinite L2" in the paper's terms).
    infinite_l2: bool = False


class CacheHierarchy:
    """L1D/L1I + shared-path L2/L3 + memory, with stream prefetch."""

    def __init__(self, geometry: HierarchyGeometry):
        self.geometry = geometry
        self.l1i = Cache(geometry.l1i, "l1i")
        self.l1d = Cache(geometry.l1d, "l1d")
        self.l2 = Cache(geometry.l2, "l2")
        self.l3 = Cache(geometry.l3, "l3")
        self.prefetcher = StreamPrefetcher(geometry.prefetch_streams,
                                           geometry.prefetch_depth)

    def access_instruction(self, address: int) -> AccessResult:
        if self.l1i.access(address):
            return AccessResult("l1", self.geometry.l1i.latency, True)
        return self._lower_levels(address, self.geometry.l1i.latency)

    def access_data(self, address: int) -> AccessResult:
        if self.l1d.access(address):
            return AccessResult("l1", self.geometry.l1d.latency, True)
        return self._lower_levels(address, self.geometry.l1d.latency)

    def _lower_levels(self, address: int, l1_latency: int) -> AccessResult:
        if self.geometry.infinite_l2:
            return AccessResult("l2", self.geometry.l2.latency, False)
        prefetched = self.l2.probe(address)
        if self.l2.access(address):
            if prefetched:
                # keep confirmed streams running ahead of the demand
                for line_addr in self.prefetcher.train(address):
                    self.l2.fill(line_addr)
                    self.prefetcher.useful += 1
            return AccessResult("l2", self.geometry.l2.latency, False,
                                prefetch_hit=prefetched)
        for line_addr in self.prefetcher.train(address):
            self.l2.fill(line_addr)
        if self.l3.access(address):
            return AccessResult("l3", self.geometry.l3.latency, False)
        return AccessResult("mem", self.geometry.memory_latency, False)
