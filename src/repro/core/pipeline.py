"""Trace-driven, cycle-approximate out-of-order core timing model.

This is the stand-in for the paper's RTLSim/M1 performance substrate.
It is a scoreboard-style analytical model: instructions are walked in
program order, and each one's dispatch/issue/finish/retire cycles are
computed from

* front-end bandwidth (fetch/decode groups, I-cache, branch redirects),
* register dependences (per-thread ready times with full bypass),
* structural resources (execution ports, window, issue queue, LQ/SQ/LMQ),
* the cache hierarchy and address translation (EA- vs RA-tagged L1s).

The model's outputs are total cycles plus the per-unit activity stream
(:class:`~repro.core.activity.ActivityCounters`) that drives every power
tool in :mod:`repro.power`.  It is intentionally not latch-accurate —
the reproduction targets the paper's *relative* power/performance
mechanisms, not absolute POWER10 timing.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from ..errors import ConfigError, SimulationError
from ..obs.metrics import get_registry as _obs_registry
from ..obs.tracing import span as _obs_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.sampler import CycleIntervalSampler
from .activity import ActivityCounters
from .branch import BranchUnit, make_branch_unit
from .caches import CacheHierarchy
from .config import CoreConfig
from .fusion import FusionEngine, FusionEffect
from .isa import BASE_LATENCY, Instruction, InstrClass
from .tlb import MMU

_FRONT_DEPTH = 5        # fetch->dispatch stages (constant offset)
_WRONG_PATH_WINDOW = 12  # max cycles of wrong-path fetch per mispredict


class _Ring:
    """Fixed-capacity resource: allocation *i* waits for release *i-N*.

    Models ROB/queue-style structures where an entry allocated now is
    freed by the completion of the entry allocated N slots earlier.
    """

    __slots__ = ("capacity", "_releases", "_head")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        self.capacity = capacity
        self._releases: List[int] = []
        self._head = 0

    def earliest_alloc(self) -> int:
        """Cycle at which the next allocation can proceed."""
        if len(self._releases) - self._head < self.capacity:
            return 0
        return self._releases[self._head]

    def alloc(self, release_cycle: int) -> None:
        if len(self._releases) - self._head >= self.capacity:
            self._head += 1
            if self._head > 4096:       # compact
                del self._releases[:self._head]
                self._head = 0
        self._releases.append(release_cycle)


class _Pool:
    """Fixed-capacity resource with out-of-order release.

    Models structures whose entries free as soon as their occupant
    issues/completes, regardless of allocation order (issue queues, the
    load-miss queue).  When full, the next allocation can proceed at the
    *earliest* release among current occupants.
    """

    __slots__ = ("capacity", "_heap")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        self.capacity = capacity
        self._heap: List[int] = []

    def earliest_alloc(self) -> int:
        if len(self._heap) < self.capacity:
            return 0
        return self._heap[0]

    def alloc(self, release_cycle: int) -> None:
        if len(self._heap) >= self.capacity:
            heapq.heappop(self._heap)
        heapq.heappush(self._heap, release_cycle)


class _Ports:
    """A small pool of pipelined execution ports.

    Issue bandwidth is tracked per cycle (out-of-order backfill: a
    late-ready instruction reserving cycle *t* does not block an
    earlier-ready one from using the port at *t-3*).  An op with
    initiation interval > 1 occupies its port for that many cycles.
    """

    __slots__ = ("count", "interval", "_occ", "_low_water")

    def __init__(self, count: int, initiation_interval: int = 1):
        if count <= 0:
            raise ConfigError("port count must be positive")
        self.count = count
        self.interval = initiation_interval
        self._occ: Dict[int, int] = {}
        self._low_water = 0

    def issue(self, earliest: int) -> int:
        """Reserve a port at the first cycle >= ``earliest`` with a free
        slot; returns the granted issue cycle."""
        cycle = max(earliest, self._low_water)
        occ = self._occ
        count = self.count
        interval = self.interval
        while True:
            if all(occ.get(cycle + k, 0) < count for k in range(interval)):
                for k in range(interval):
                    occ[cycle + k] = occ.get(cycle + k, 0) + 1
                break
            cycle += 1
        if len(occ) > 65536:
            cutoff = cycle - 4096
            self._occ = {c: n for c, n in occ.items() if c >= cutoff}
            self._low_water = max(self._low_water, cutoff)
        return cycle


@dataclass
class SimResult:
    """Outcome of one simulated trace."""

    config_name: str
    cycles: int
    instructions: int
    activity: ActivityCounters
    flushed_instructions: int
    mispredicts: int
    flops: int
    l1d_miss_rate: float
    l2_miss_rate: float
    fusion_rate: float
    branch_mpki: float
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def flops_per_cycle(self) -> float:
        return self.flops / self.cycles if self.cycles else 0.0


def build_ports(issue) -> Dict[InstrClass, _Ports]:
    """The per-class execution-port map for an ``IssueConfig``.

    Shared by :class:`CorePipeline` and the fast replay tier
    (:mod:`repro.fastsim`) so both tiers arbitrate issue bandwidth
    through bit-identical port state machines.
    """
    ports: Dict[InstrClass, _Ports] = {
        InstrClass.FX: _Ports(issue.fx_ports),
        InstrClass.FX_MULDIV: _Ports(issue.fx_muldiv_ports, 4),
        InstrClass.LOAD: _Ports(issue.load_ports),
        InstrClass.VSX_LOAD: _Ports(issue.load_ports),
        InstrClass.STORE: _Ports(issue.store_ports),
        InstrClass.VSX_STORE: _Ports(issue.store_ports),
        InstrClass.BRANCH: _Ports(issue.branch_ports),
        InstrClass.BRANCH_IND: _Ports(issue.branch_ports),
        InstrClass.FP: _Ports(issue.vsx_ports),
        InstrClass.VSX: _Ports(issue.vsx_ports),
        InstrClass.CR: _Ports(max(1, issue.branch_ports)),
        InstrClass.SYSTEM: _Ports(1, 8),
    }
    if issue.mma_present:
        ports[InstrClass.MMA] = _Ports(issue.mma_ops_per_cycle)
        ports[InstrClass.MMA_MOVE] = _Ports(1)
    # Loads and VSX loads share the same physical AGEN ports:
    ports[InstrClass.VSX_LOAD] = ports[InstrClass.LOAD]
    ports[InstrClass.VSX_STORE] = ports[InstrClass.STORE]
    return ports


class CorePipeline:
    """One core instance: predictors, caches, MMU, fusion and ports."""

    def __init__(self, config: CoreConfig):
        self.config = config
        self.branch_unit: BranchUnit = make_branch_unit(
            config.front_end.branch_kind, config.front_end.branch_scale)
        self.hierarchy = CacheHierarchy(config.hierarchy)
        self.mmu = MMU(config.mmu.erat_entries, config.mmu.tlb_entries,
                       config.mmu.tlb_latency, config.mmu.walk_latency)
        self.fusion = FusionEngine(config.front_end.fusion_enabled)
        self._ports: Dict[InstrClass, _Ports] = build_ports(config.issue)

    def latency_of(self, instr: Instruction) -> int:
        # The POWER10 unified register file adds a pipeline stage, but
        # the bypass network forwards dependent results around it, so
        # producer->consumer latency stays at the base value; the stage
        # shows up only as extra front-end depth (handled in simulate).
        return BASE_LATENCY[instr.iclass]


def simulate(config: CoreConfig, trace, *,
             max_instructions: Optional[int] = None,
             warmup_fraction: float = 0.0,
             sampler: Optional["CycleIntervalSampler"] = None) -> SimResult:
    """Run one trace through a fresh core and return timing + activity.

    ``trace`` is a :class:`repro.workloads.trace.Trace` (or any object
    with ``name`` and ``instructions``).  SMT traces are pre-interleaved
    (see :func:`repro.workloads.trace.merge_smt`); the ``thread`` field
    of each instruction selects the dependence/predictor context.

    ``warmup_fraction`` excludes the leading fraction of the trace from
    the reported cycles/activity (caches and predictors stay warm), the
    moral equivalent of the paper's steady-state measurement windows.

    ``sampler`` (a :class:`repro.obs.sampler.CycleIntervalSampler`)
    receives interval snapshots of the activity stream as simulated time
    advances — the OCC-style telemetry tap.  Sampling is observational:
    results are identical with or without it.
    """
    with _obs_span("pipeline.simulate", "core", config=config.name,
                   trace=getattr(trace, "name", "?")) as sp:
        result = _simulate(config, trace, max_instructions=max_instructions,
                           warmup_fraction=warmup_fraction, sampler=sampler)
        sp.set(cycles=result.cycles, instructions=result.instructions,
               ipc=round(result.ipc, 4))
        registry = _obs_registry()
        registry.counter(
            "repro_simulations_total",
            "pipeline.simulate invocations").inc(config=config.name)
        registry.counter(
            "repro_simulated_instructions_total",
            "instructions retired across all simulations").inc(
                result.instructions, config=config.name)
        return result


def _simulate(config: CoreConfig, trace, *,
              max_instructions: Optional[int],
              warmup_fraction: float,
              sampler: Optional["CycleIntervalSampler"]) -> SimResult:
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError("warmup_fraction must be in [0, 1)")
    # Fault-injection hook (lazy import keeps core free of a static
    # dependency on the resilience layer).  With no campaign active the
    # injector is None and every hook below is skipped — results stay
    # bit-identical to a tree without fault injection.
    from ..resilience.injector import get_injector
    injector = get_injector()
    core = CorePipeline(config)
    act = ActivityCounters()
    fe = config.front_end
    issue_cfg = config.issue
    lsu_cfg = config.lsu

    smt = config.smt
    if smt > 1:
        loadq_size = lsu_cfg.load_queue_smt
        storeq_size = lsu_cfg.store_queue_smt
    else:
        loadq_size = lsu_cfg.load_queue_st
        storeq_size = lsu_cfg.store_queue_st

    window = _Ring(issue_cfg.window_entries)        # ROB: in-order release
    issueq = _Pool(issue_cfg.issueq_entries)        # frees at issue
    loadq = _Ring(loadq_size)
    storeq = _Ring(storeq_size)
    lmq = _Pool(lsu_cfg.load_miss_queue)            # frees at fill

    reg_ready: Dict[Tuple[int, int], int] = {}
    instructions = trace.instructions
    if max_instructions is not None:
        instructions = instructions[:max_instructions]
    if not instructions:
        raise SimulationError("cannot simulate an empty trace")
    if injector is not None:
        instructions = injector.begin_sim(instructions)

    front_cycle = 0           # cycle the current decode group occupies
    last_retire_cycle = 0
    retire_in_cycle = 0
    flushed = 0
    mispredicts = 0
    flops = 0
    last_icache_line = -1
    prev_store: Optional[Tuple[int, int, int]] = None  # addr,size,retire

    ea_tagged = config.ea_tagged_l1
    decode_w = fe.decode_width
    total = len(instructions)
    warmup_count = int(total * warmup_fraction)
    snap = None
    idx = 0
    if sampler is not None:
        sampler.begin(config, getattr(trace, "name", "?"))
    while idx < total:
        if snap is None and idx >= warmup_count and warmup_count:
            snap = (dict(act.events), front_cycle, last_retire_cycle,
                    flushed, mispredicts, flops, idx)
        group = instructions[idx:idx + decode_w]
        idx += len(group)

        # ---- fetch: I-cache access per new 32B sector ------------------
        group_stall = 0
        for instr in group:
            line = instr.pc >> 5
            if line != last_icache_line:
                last_icache_line = line
                act.count("icache_access")
                result = core.hierarchy.access_instruction(instr.pc)
                if not ea_tagged:
                    act.count("erat_lookup")
                if not result.l1_hit:
                    act.count("icache_miss")
                    if ea_tagged:
                        act.count("erat_lookup")
                    tr = core.mmu.translate(instr.pc)
                    if not tr.erat_hit:
                        act.count("erat_miss")
                        act.count("tlb_lookup")
                        if not tr.tlb_hit:
                            act.count("tlb_miss")
                            act.count("tablewalk")
                    group_stall += result.latency + tr.extra_latency
        act.count("fetch_instr", len(group))
        act.count("predecode_instr", len(group))
        act.count("ibuffer_write", len(group))
        act.count("decode_instr", len(group))
        front_cycle += 1 + group_stall

        # ---- fusion at decode ------------------------------------------
        effects = core.fusion.apply(group)

        dispatch_base = front_cycle + _FRONT_DEPTH
        prev_issue = 0
        prev_l1d_access_skipped = False
        for pos, instr in enumerate(group):
            effect: Optional[FusionEffect] = effects[pos]
            fused = instr.fused_with_prev and effect is not None

            # ---- dispatch (window/issueq structural limits) ------------
            dispatch = dispatch_base
            dispatch = max(dispatch, window.earliest_alloc())
            if not fused:
                dispatch = max(dispatch, issueq.earliest_alloc())
            if instr.iclass.is_load:
                dispatch = max(dispatch, loadq.earliest_alloc())
            elif instr.iclass.is_store and not (
                    fused and effect.single_storeq_entry):
                dispatch = max(dispatch, storeq.earliest_alloc())
            if dispatch > dispatch_base:
                # structural stall backs up the front end
                front_cycle += dispatch - dispatch_base
                dispatch_base = dispatch
            if not fused:
                act.count("dispatch_iop")
                act.count("issueq_write")
            if instr.dests:
                act.count("rename_write", len(instr.dests))

            # ---- register dependences ----------------------------------
            ready = dispatch + 1
            tid = instr.thread
            for src in instr.srcs:
                src_ready = reg_ready.get((tid, src), 0)
                if src_ready > ready:
                    ready = src_ready
            act.count("rf_read", len(instr.srcs))
            act.count("issueq_wakeup")

            # ---- issue through a port ----------------------------------
            ports = core._ports.get(instr.iclass)
            if ports is None:
                raise SimulationError(
                    f"no execution resource for {instr.iclass} on "
                    f"{config.name}")
            if fused:
                # shared issue-queue entry: issues with its producer,
                # subject to its own port.
                issue_at = ports.issue(max(ready, prev_issue))
            else:
                issue_at = ports.issue(ready)
            prev_issue = issue_at

            latency = core.latency_of(instr)
            if fused:
                latency = max(1, latency + effect.latency_delta)

            # ---- memory access -----------------------------------------
            if instr.iclass.is_memory:
                skip_access = (fused and effect.single_agen
                               and prev_l1d_access_skipped is False
                               and instr.iclass.is_store)
                if not (fused and effect.single_agen):
                    act.count("agen")
                if instr.iclass.is_load:
                    act.count("load_issue")
                    act.count("loadq_write")
                    loadq.alloc(issue_at + latency)
                    act.count("l1d_access")
                    result = core.hierarchy.access_data(instr.address)
                    extra = 0
                    if not ea_tagged:
                        act.count("erat_lookup")
                        tr = core.mmu.translate(instr.address)
                        extra = _translation_events(act, tr)
                    elif not result.l1_hit:
                        act.count("erat_lookup")
                        tr = core.mmu.translate(instr.address)
                        extra = _translation_events(act, tr)
                    if not result.l1_hit:
                        act.count("l1d_miss")
                        lmq_at = max(issue_at, lmq.earliest_alloc())
                        fill = lmq_at + result.latency + extra
                        lmq.alloc(fill)
                        act.count("lmq_alloc")
                        _count_level(act, result.level)
                        latency = max(latency, fill - issue_at)
                    else:
                        latency = max(latency, result.latency + extra)
                else:   # store
                    act.count("store_issue")
                    merged = False
                    if (lsu_cfg.store_merge_enabled and prev_store
                            and prev_store[0] + prev_store[1]
                            == instr.address):
                        act.count("storeq_merge")
                        merged = True
                    if not (fused and effect.single_storeq_entry):
                        act.count("storeq_write")
                        storeq.alloc(issue_at + latency + 4)
                    if not (merged or skip_access):
                        act.count("l1d_access")
                        result = core.hierarchy.access_data(instr.address)
                        if not ea_tagged:
                            act.count("erat_lookup")
                            _translation_events(
                                act, core.mmu.translate(instr.address))
                        elif not result.l1_hit:
                            act.count("erat_lookup")
                            _translation_events(
                                act, core.mmu.translate(instr.address))
                        if not result.l1_hit:
                            act.count("l1d_miss")
                            _count_level(act, result.level)
                    prev_store = (instr.address, instr.size, 0)

            # ---- execute / class-specific events -----------------------
            _count_issue(act, instr)
            if instr.flops:
                flops += instr.flops
            finish = issue_at + latency
            for dest in instr.dests:
                if instr.iclass is InstrClass.MMA and dest >= 256:
                    # accumulate chains forward internally in 1 cycle
                    reg_ready[(tid, dest)] = issue_at + 1
                else:
                    reg_ready[(tid, dest)] = finish
            if instr.dests:
                act.count("rf_write", len(instr.dests))

            # ---- branches: predict, redirect on mispredict -------------
            if instr.iclass.is_branch:
                act.count("bp_dir_lookup")
                act.count("bp_tgt_lookup")
                wrong = core.branch_unit.process(instr)
                if wrong:
                    mispredicts += 1
                    act.count("bp_mispredict")
                    act.count("flush_event")
                    resolve = finish
                    stall = (resolve - front_cycle) + fe.redirect_penalty
                    if smt > 1:
                        # other threads keep the front end busy
                        stall = max(1, stall // smt)
                    # wrong-path fetch is bounded by how far the front
                    # end can run ahead of issue, not by the whole
                    # resolution window
                    ahead = min(max(0, resolve - front_cycle),
                                _WRONG_PATH_WINDOW)
                    wrong_path = int(fe.wrong_path_fill
                                     * fe.fetch_width * ahead)
                    flushed += wrong_path
                    act.count("flush_instr", wrong_path)
                    # wrong-path work still burned front-end energy
                    act.count("fetch_instr", wrong_path)
                    act.count("predecode_instr", wrong_path)
                    act.count("decode_instr", wrong_path // 2)
                    front_cycle += max(0, stall)
                    last_icache_line = -1

            # ---- in-order completion -----------------------------------
            retire = max(finish + 1, last_retire_cycle)
            if retire == last_retire_cycle:
                retire_in_cycle += 1
                if retire_in_cycle >= issue_cfg.completion_width:
                    retire += 1
                    retire_in_cycle = 0
            else:
                retire_in_cycle = 1
            last_retire_cycle = retire
            window.alloc(retire)
            if not fused:
                issueq.alloc(issue_at + 1)
            act.count("complete_instr")

            prev_l1d_access_skipped = fused and effect.single_agen

        if injector is not None:
            # deliver due faults for this window; the poll is also the
            # campaign watchdog (raises HangError past the cycle budget)
            front_cycle += injector.poll(
                idx, act, max(last_retire_cycle, front_cycle))

        if sampler is not None:
            sampler.observe(max(last_retire_cycle, front_cycle), act)

    act.events["prefetch_issued"] = core.hierarchy.prefetcher.issued
    act.events["prefetch_useful"] = core.hierarchy.prefetcher.useful
    cycles = max(last_retire_cycle, front_cycle) + 1
    if sampler is not None:
        # close the trailing partial interval on raw (pre-warmup-
        # subtraction) counts; samples always cover the whole run
        sampler.finalize(cycles, act)
    measured_instructions = len(instructions)
    if snap is not None:
        events0, front0, retire0, flushed0, mispred0, flops0, idx0 = snap
        for key, base in events0.items():
            act.events[key] = max(0, act.events[key] - base)
        cycles = max(1, cycles - (max(retire0, front0) + 1))
        flushed -= flushed0
        mispredicts -= mispred0
        flops -= flops0
        measured_instructions = len(instructions) - idx0
    act.cycles = cycles
    act.instructions = measured_instructions
    derive_busy_cycles(act, config, cycles)

    hier = core.hierarchy
    mpki = 1000.0 * mispredicts / measured_instructions
    return SimResult(
        config_name=config.name,
        cycles=cycles,
        instructions=measured_instructions,
        activity=act,
        flushed_instructions=flushed,
        mispredicts=mispredicts,
        flops=flops,
        l1d_miss_rate=hier.l1d.miss_rate,
        l2_miss_rate=hier.l2.miss_rate,
        fusion_rate=core.fusion.stats.fusion_rate,
        branch_mpki=mpki,
        metadata={"trace": getattr(trace, "name", "?"), "smt": smt,
                  "frequency_ghz": config.power.frequency_ghz},
    )


def _translation_events(act: ActivityCounters, tr) -> int:
    """Record ERAT/TLB events; returns extra latency cycles."""
    if tr.erat_hit:
        return 0
    act.count("erat_miss")
    act.count("tlb_lookup")
    if not tr.tlb_hit:
        act.count("tlb_miss")
        act.count("tablewalk")
    return tr.extra_latency


def _count_level(act: ActivityCounters, level: str) -> None:
    if level in ("l2", "l3", "mem"):
        act.count("l2_access")
    if level in ("l3", "mem"):
        act.count("l2_miss")
        act.count("l3_access")
    if level == "mem":
        act.count("l3_miss")
        act.count("mem_access")


_ISSUE_EVENT = {
    InstrClass.FX: "issue_fx",
    InstrClass.FX_MULDIV: "issue_fx_muldiv",
    InstrClass.BRANCH: "issue_branch",
    InstrClass.BRANCH_IND: "issue_branch",
    InstrClass.CR: "issue_cr",
    InstrClass.FP: "issue_fp",
    InstrClass.VSX: "issue_vsx",
    InstrClass.MMA: "issue_mma",
    InstrClass.MMA_MOVE: "mma_move",
}


def _count_issue(act: ActivityCounters, instr: Instruction) -> None:
    event = _ISSUE_EVENT.get(instr.iclass)
    if event:
        act.count(event)
    if instr.iclass is InstrClass.MMA:
        act.count("mma_acc_access")


def derive_busy_cycles(act: ActivityCounters, cfg: CoreConfig,
                       cycles: int) -> None:
    """Estimate per-unit busy cycles from event counts and port counts.

    Clock-gating modeling needs an occupancy per unit; for a scoreboard
    model the best deterministic estimate is events divided by ports,
    capped at the run length.  Also used by the interval sampler to
    derive per-interval utilizations from event deltas.
    """
    ev = act.events

    def busy(unit: str, count: float, ports: int = 1) -> None:
        act.unit_busy_cycles[unit] = min(cycles, int(count / max(1, ports)))

    busy("ifu", ev["icache_access"] + ev["fetch_instr"]
         / max(1, cfg.front_end.fetch_width))
    busy("decode", ev["decode_instr"], cfg.front_end.decode_width)
    busy("dispatch", ev["dispatch_iop"], cfg.front_end.decode_width)
    busy("issueq", ev["issueq_write"] + ev["issueq_wakeup"], 4)
    busy("fx", ev["issue_fx"], cfg.issue.fx_ports)
    busy("fx_muldiv", ev["issue_fx_muldiv"] * 4, cfg.issue.fx_muldiv_ports)
    busy("branch", ev["issue_branch"], cfg.issue.branch_ports)
    busy("cr", ev["issue_cr"])
    busy("fp", ev["issue_fp"], cfg.issue.vsx_ports)
    busy("vsu", ev["issue_vsx"], cfg.issue.vsx_ports)
    busy("mma", ev["issue_mma"], cfg.issue.mma_ops_per_cycle)
    busy("regfile", ev["rf_read"] + ev["rf_write"], 6)
    busy("lsu", ev["load_issue"] + ev["store_issue"],
         cfg.issue.load_ports + cfg.issue.store_ports)
    busy("l1d", ev["l1d_access"], 2)
    busy("erat_mmu", ev["erat_lookup"], 2)
    busy("prefetch", ev["prefetch_issued"] + ev["l1d_miss"])
    busy("l2", ev["l2_access"] * 4)
    busy("l3", ev["l3_access"] * 8)
    busy("completion", ev["complete_instr"], cfg.issue.completion_width)
