"""Functional model of the Matrix-Multiply Assist (MMA) facility.

Power ISA v3.1 adds eight architected 512-bit accumulators (ACC0..ACC7)
and ``ger`` (general-element-rank) outer-product instructions.  Each
``xvTYPEgerPP`` consumes two 128-bit VSR inputs and accumulates a rank-1
(or rank-k for narrower types) update into a 4x4 (fp32/int) or 4x2 (fp64)
accumulator tile.

This module implements the *numerics* faithfully enough to run real
GEMMs in the examples and tests:

* fp32: 4x4 tile, rank-1 update, 32 FLOPs per instruction
* fp64: 4x2 tile, rank-1 update (two 128-bit VSR pairs for X), 16 FLOPs
* int8: 4x4 int32 tile, rank-4 update (dot of 4-element int8 groups),
  128 int-ops per instruction — the source of the INT8 = 2x FP32
  throughput advantage behind the paper's 21x-vs-10x socket claim.

The *timing/energy* side (issue rate, accumulator locality, power
gating) is handled by the pipeline and power models; workload generators
emit :class:`repro.core.isa.Instruction` records with
``iclass=InstrClass.MMA`` for these operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import SimulationError

NUM_ACCUMULATORS = 8
ACC_BITS = 512


@dataclass
class MMAGeometry:
    """Tile shape of one outer-product instruction per data type."""

    rows: int
    cols: int
    rank: int       # inner-product depth per instruction

    @property
    def macs_per_instruction(self) -> int:
        return self.rows * self.cols * self.rank

    @property
    def flops_per_instruction(self) -> int:
        return 2 * self.macs_per_instruction


GEOMETRY = {
    "fp64": MMAGeometry(rows=4, cols=2, rank=1),
    "fp32": MMAGeometry(rows=4, cols=4, rank=1),
    "bf16": MMAGeometry(rows=4, cols=4, rank=2),
    "int8": MMAGeometry(rows=4, cols=4, rank=4),
}

_DTYPES = {"fp64": np.float64, "fp32": np.float32,
           "bf16": np.float32, "int8": np.int32}


class MMAUnit:
    """Eight 512-bit accumulators plus the ger execution semantics.

    The unit is power-gateable (Section IV-A): ``power_on``/``power_off``
    model the WOF interaction, and executing while gated raises, which is
    how the tests pin down the wake-up protocol.
    """

    def __init__(self):
        self._acc = [np.zeros((4, 4), dtype=np.float64)
                     for _ in range(NUM_ACCUMULATORS)]
        self._powered = True
        self.instructions_executed = 0
        self.wakeups = 0

    # -- power gating -----------------------------------------------------
    @property
    def powered(self) -> bool:
        return self._powered

    def power_off(self) -> None:
        """Gate the unit.  Architected ACC state is not retained; software
        must have moved accumulators to VSRs (xxmfacc) beforehand."""
        self._powered = False
        for i in range(NUM_ACCUMULATORS):
            self._acc[i] = np.zeros((4, 4), dtype=np.float64)

    def power_on(self) -> None:
        if not self._powered:
            self.wakeups += 1
        self._powered = True

    def _check_power(self) -> None:
        if not self._powered:
            raise SimulationError(
                "MMA instruction executed while unit is power-gated; "
                "issue a wake-up hint (power_on) first")

    def _check_acc(self, acc: int) -> None:
        if not 0 <= acc < NUM_ACCUMULATORS:
            raise SimulationError(f"accumulator index out of range: {acc}")

    # -- architected operations -------------------------------------------
    def xxsetaccz(self, acc: int) -> None:
        """Zero an accumulator (prime it for a fresh GEMM panel)."""
        self._check_power()
        self._check_acc(acc)
        self._acc[acc] = np.zeros((4, 4), dtype=np.float64)

    def xxmtacc(self, acc: int, tile: np.ndarray) -> None:
        """Move a 4x4 tile from VSRs into an accumulator."""
        self._check_power()
        self._check_acc(acc)
        if tile.shape != (4, 4):
            raise SimulationError("accumulator tile must be 4x4")
        self._acc[acc] = tile.astype(np.float64, copy=True)

    def xxmfacc(self, acc: int) -> np.ndarray:
        """Move an accumulator back to VSRs (returns a copy)."""
        self._check_power()
        self._check_acc(acc)
        return self._acc[acc].copy()

    def ger(self, acc: int, x: np.ndarray, y: np.ndarray,
            dtype: str = "fp32", negate: bool = False) -> None:
        """Rank-``k`` outer-product accumulate: ACC += x · yᵀ.

        ``x`` has shape (rows, rank) and ``y`` shape (cols, rank) per the
        geometry of ``dtype``; rank-1 inputs may be passed as vectors.
        """
        self._check_power()
        self._check_acc(acc)
        if dtype not in GEOMETRY:
            raise SimulationError(f"unsupported MMA dtype: {dtype!r}")
        geom = GEOMETRY[dtype]
        x = np.atleast_2d(np.asarray(x, dtype=_DTYPES[dtype]))
        y = np.atleast_2d(np.asarray(y, dtype=_DTYPES[dtype]))
        if x.shape == (1, geom.rows) and geom.rank == 1:
            x = x.T
        if y.shape == (1, geom.cols) and geom.rank == 1:
            y = y.T
        if x.shape != (geom.rows, geom.rank):
            raise SimulationError(
                f"x must be {(geom.rows, geom.rank)} for {dtype}, "
                f"got {x.shape}")
        if y.shape != (geom.cols, geom.rank):
            raise SimulationError(
                f"y must be {(geom.cols, geom.rank)} for {dtype}, "
                f"got {y.shape}")
        update = x.astype(np.float64) @ y.astype(np.float64).T
        if negate:
            update = -update
        self._acc[acc][:geom.rows, :geom.cols] += update
        self.instructions_executed += 1


def mma_gemm(a: np.ndarray, b: np.ndarray, dtype: str = "fp32",
             unit: Optional[MMAUnit] = None) -> np.ndarray:
    """Compute ``a @ b`` using only architected MMA operations.

    Matrices are tiled into accumulator-sized panels; each panel is a
    sequence of rank-k ``ger`` updates followed by an ``xxmfacc``.  This
    is the reference kernel used to validate the instruction-count model
    in :mod:`repro.workloads.gemm` against real numerics.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise SimulationError("incompatible GEMM shapes")
    geom = GEOMETRY[dtype]
    unit = unit or MMAUnit()
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n), dtype=np.float64)
    for i0 in range(0, m, geom.rows):
        for j0 in range(0, n, geom.cols):
            rows = min(geom.rows, m - i0)
            cols = min(geom.cols, n - j0)
            unit.xxsetaccz(0)
            for k0 in range(0, k, geom.rank):
                depth = min(geom.rank, k - k0)
                x = np.zeros((geom.rows, geom.rank))
                y = np.zeros((geom.cols, geom.rank))
                x[:rows, :depth] = a[i0:i0 + rows, k0:k0 + depth]
                y[:cols, :depth] = b[k0:k0 + depth, j0:j0 + cols].T
                unit.ger(0, x, y, dtype=dtype)
            tile = unit.xxmfacc(0)
            out[i0:i0 + rows, j0:j0 + cols] = tile[:rows, :cols]
    return out


def ger_instructions_for_gemm(m: int, n: int, k: int,
                              dtype: str = "fp32") -> int:
    """Number of ger instructions a tiled ``m x n x k`` GEMM needs."""
    geom = GEOMETRY[dtype]
    tiles_m = -(-m // geom.rows)
    tiles_n = -(-n // geom.cols)
    steps_k = -(-k // geom.rank)
    return tiles_m * tiles_n * steps_k
