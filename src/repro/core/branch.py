"""Branch direction and target predictors.

POWER9 is modeled with a bimodal + short-history gshare hybrid; POWER10
adds the paper's "new predictors for direction and indirect targets along
with the doubling of selective prediction resources": a TAGE-style tagged
multi-table direction predictor, a loop-exit predictor and a larger
indirect target predictor (ITTAGE-lite).  The accuracy gap between the
two stacks is what produces the ~25% reduction in flushed instructions
reported in Section II-B.

Predictors are trained online during simulation: ``predict`` returns the
guess, ``update`` trains with the resolved outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .isa import Instruction, InstrClass
from ..errors import ConfigError, SimulationError


class DirectionPredictor:
    """Interface for conditional-branch direction predictors."""

    def predict(self, pc: int, thread: int = 0) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool, thread: int = 0) -> None:
        raise NotImplementedError


class BimodalPredictor(DirectionPredictor):
    """Classic 2-bit saturating-counter table indexed by PC."""

    def __init__(self, entries: int = 16384):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("entries must be a positive power of two")
        self._mask = entries - 1
        self._table = [2] * entries     # weakly taken

    def predict(self, pc: int, thread: int = 0) -> bool:
        return self._table[(pc >> 2) & self._mask] >= 2

    def update(self, pc: int, taken: bool, thread: int = 0) -> None:
        idx = (pc >> 2) & self._mask
        ctr = self._table[idx]
        self._table[idx] = min(3, ctr + 1) if taken else max(0, ctr - 1)


class GSharePredictor(DirectionPredictor):
    """Global-history XOR predictor with 2-bit counters."""

    def __init__(self, entries: int = 16384, history_bits: int = 12):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("entries must be a positive power of two")
        self._mask = entries - 1
        self._table = [2] * entries
        self._hist_mask = (1 << history_bits) - 1
        self._history: Dict[int, int] = {}

    def _index(self, pc: int, thread: int) -> int:
        hist = self._history.get(thread, 0)
        return ((pc >> 2) ^ hist) & self._mask

    def predict(self, pc: int, thread: int = 0) -> bool:
        return self._table[self._index(pc, thread)] >= 2

    def update(self, pc: int, taken: bool, thread: int = 0) -> None:
        idx = self._index(pc, thread)
        ctr = self._table[idx]
        self._table[idx] = min(3, ctr + 1) if taken else max(0, ctr - 1)
        hist = self._history.get(thread, 0)
        self._history[thread] = ((hist << 1) | int(taken)) & self._hist_mask


class HybridPredictor(DirectionPredictor):
    """POWER9-style tournament of bimodal and gshare with a chooser."""

    def __init__(self, entries: int = 16384, history_bits: int = 12):
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GSharePredictor(entries, history_bits)
        self._chooser = [2] * entries   # >=2 -> use gshare
        self._mask = entries - 1

    def predict(self, pc: int, thread: int = 0) -> bool:
        if self._chooser[(pc >> 2) & self._mask] >= 2:
            return self.gshare.predict(pc, thread)
        return self.bimodal.predict(pc, thread)

    def update(self, pc: int, taken: bool, thread: int = 0) -> None:
        b_pred = self.bimodal.predict(pc, thread)
        g_pred = self.gshare.predict(pc, thread)
        idx = (pc >> 2) & self._mask
        if b_pred != g_pred:
            ctr = self._chooser[idx]
            if g_pred == taken:
                self._chooser[idx] = min(3, ctr + 1)
            else:
                self._chooser[idx] = max(0, ctr - 1)
        self.bimodal.update(pc, taken, thread)
        self.gshare.update(pc, taken, thread)


class _TageTable:
    def __init__(self, entries: int, history_bits: int, tag_bits: int = 10):
        self._mask = entries - 1
        self._hist_mask = (1 << history_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self.history_bits = history_bits
        self._tags = [0] * entries
        self._ctrs = [0] * entries      # signed -4..3, >=0 -> taken
        self._useful = [0] * entries

    def _index(self, pc: int, history: int) -> int:
        folded = history & self._hist_mask
        folded ^= (history >> self.history_bits) & self._hist_mask
        return ((pc >> 2) ^ folded) & self._mask

    def _tag(self, pc: int, history: int) -> int:
        return ((pc >> 6) ^ (history * 2654435761)) & self._tag_mask

    def lookup(self, pc: int, history: int) -> Optional[bool]:
        idx = self._index(pc, history)
        if self._tags[idx] == self._tag(pc, history):
            return self._ctrs[idx] >= 0
        return None

    def update(self, pc: int, history: int, taken: bool,
               allocate: bool) -> None:
        idx = self._index(pc, history)
        tag = self._tag(pc, history)
        if self._tags[idx] == tag:
            ctr = self._ctrs[idx]
            self._ctrs[idx] = min(3, ctr + 1) if taken else max(-4, ctr - 1)
            self._useful[idx] = min(3, self._useful[idx] + 1)
        elif allocate:
            if self._useful[idx] == 0:
                self._tags[idx] = tag
                self._ctrs[idx] = 0 if taken else -1
            else:
                self._useful[idx] -= 1


class TagePredictor(DirectionPredictor):
    """A compact TAGE: bimodal base plus geometric-history tagged tables.

    This is the POWER10 direction predictor stand-in.  Long-history
    tables catch loop exits and correlated patterns that defeat the
    POWER9 hybrid, which is the mechanism behind the paper's reduction
    in flushed instructions.
    """

    def __init__(self, base_entries: int = 16384,
                 table_entries: int = 2048,
                 histories: tuple = (4, 8, 16, 32)):
        self.base = BimodalPredictor(base_entries)
        self.tables = [_TageTable(table_entries, h) for h in histories]
        self._history: Dict[int, int] = {}

    def _provider(self, pc: int, thread: int):
        hist = self._history.get(thread, 0)
        for table in reversed(self.tables):     # longest history first
            pred = table.lookup(pc, hist)
            if pred is not None:
                return pred, table
        return None, None

    def predict(self, pc: int, thread: int = 0) -> bool:
        pred, _ = self._provider(pc, thread)
        if pred is not None:
            return pred
        return self.base.predict(pc, thread)

    def update(self, pc: int, taken: bool, thread: int = 0) -> None:
        hist = self._history.get(thread, 0)
        pred, provider = self._provider(pc, thread)
        mispredicted = (pred if pred is not None
                        else self.base.predict(pc, thread)) != taken
        if provider is None:
            self.base.update(pc, taken, thread)
            if mispredicted:
                self.tables[0].update(pc, hist, taken, allocate=True)
        else:
            provider.update(pc, hist, taken, allocate=False)
            if mispredicted:
                idx = self.tables.index(provider)
                if idx + 1 < len(self.tables):
                    self.tables[idx + 1].update(pc, hist, taken,
                                                allocate=True)
        self._history[thread] = ((hist << 1) | int(taken)) & ((1 << 64) - 1)


class IndirectPredictor:
    """Indirect branch target predictor.

    POWER9 mode (``use_history=False``) is a plain BTB: last target seen
    at the PC.  POWER10 mode hashes a *per-site* history of recent
    targets into the index — the mechanism of POWER's count-cache-style
    predictors — which learns sites that alternate between a small set
    of targets in a repeating pattern (polymorphic calls, interpreter
    dispatch), the paper's "new predictor for indirect targets".
    """

    def __init__(self, entries: int = 512, use_history: bool = False,
                 history_bits: int = 8):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("entries must be a positive power of two")
        self._mask = entries - 1
        self._targets: List[Optional[int]] = [None] * entries
        self._use_history = use_history
        self._hist_mask = (1 << history_bits) - 1
        self._local_history: Dict[int, int] = {}

    def _index(self, pc: int, thread: int) -> int:
        idx = pc >> 2
        if self._use_history:
            idx ^= self._local_history.get((thread, pc), 0)
        return idx & self._mask

    def predict(self, pc: int, thread: int = 0) -> Optional[int]:
        return self._targets[self._index(pc, thread)]

    def update(self, pc: int, target: int, thread: int = 0) -> None:
        self._targets[self._index(pc, thread)] = target
        if self._use_history:
            key = (thread, pc)
            hist = self._local_history.get(key, 0)
            self._local_history[key] = (
                (hist << 3) ^ (target >> 6)) & self._hist_mask


@dataclass
class BranchStats:
    lookups: int = 0
    mispredicts: int = 0
    indirect_lookups: int = 0
    indirect_mispredicts: int = 0

    @property
    def mispredict_rate(self) -> float:
        total = self.lookups + self.indirect_lookups
        if total == 0:
            return 0.0
        return (self.mispredicts + self.indirect_mispredicts) / total


class BranchUnit:
    """Front-end branch prediction stack: direction + indirect target."""

    def __init__(self, direction: DirectionPredictor,
                 indirect: IndirectPredictor):
        self.direction = direction
        self.indirect = indirect
        self.stats = BranchStats()

    def process(self, instr: Instruction) -> bool:
        """Predict and train on one branch; returns True on mispredict."""
        if not instr.iclass.is_branch:
            raise SimulationError("process() requires a branch instruction")
        if instr.iclass is InstrClass.BRANCH_IND:
            self.stats.indirect_lookups += 1
            predicted = self.indirect.predict(instr.pc, instr.thread)
            self.indirect.update(instr.pc, instr.target or 0, instr.thread)
            wrong = predicted != instr.target
            if wrong:
                self.stats.indirect_mispredicts += 1
            return wrong
        self.stats.lookups += 1
        predicted = self.direction.predict(instr.pc, instr.thread)
        self.direction.update(instr.pc, instr.taken, instr.thread)
        wrong = predicted != instr.taken
        if wrong:
            self.stats.mispredicts += 1
        return wrong


def make_branch_unit(kind: str, scale: int = 1) -> BranchUnit:
    """Build a predictor stack by generation name.

    ``kind`` is ``"power9"`` (hybrid + plain BTB) or ``"power10"``
    (TAGE + history-hashed indirect with doubled resources).  ``scale``
    multiplies table sizes, used by the Fig. 4 feature ladder.
    """
    if kind == "power9":
        return BranchUnit(
            HybridPredictor(entries=16384 * scale, history_bits=12),
            IndirectPredictor(entries=512 * scale, use_history=False))
    if kind == "power10":
        return BranchUnit(
            TagePredictor(base_entries=16384 * scale,
                          table_entries=2048 * scale),
            IndirectPredictor(entries=1024 * scale, use_history=True))
    raise ConfigError(f"unknown branch unit kind: {kind!r}")
