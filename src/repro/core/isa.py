"""A compact model of the Power ISA subset relevant to this reproduction.

The paper's evaluation depends on *classes* of instructions (fixed-point,
load, store, branch, 128-bit VSX vector ops, 512-bit MMA outer products and
accumulator moves) rather than on exact opcode semantics, so instructions
are represented as lightweight records carrying:

* an :class:`InstrClass` deciding which execution resource is used,
* register dependencies (integer source/dest names as small ints),
* an optional effective address and access size for memory operations,
* branch metadata (taken/target) for control-flow instructions,
* FLOP counts so kernels can report FLOPs/cycle the way Fig. 5 does.

``Instruction`` is deliberately a plain mutable dataclass: workload
generators create millions of them and the timing model annotates them
in place (fusion, flush marking).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple
from ..errors import TraceError


class InstrClass(enum.Enum):
    """Execution class of an instruction.

    The classes map one-to-one onto the issue resources of the modeled
    cores (see :mod:`repro.core.config`).
    """

    FX = "fx"              # fixed point ALU (add, logical, rotate...)
    FX_MULDIV = "fxmd"     # long-latency fixed point (mul/div)
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    BRANCH_IND = "branch_ind"   # indirect branch (bclr/bcctr style)
    FP = "fp"              # scalar floating point
    VSX = "vsx"            # 128-bit vector-scalar SIMD op
    VSX_LOAD = "vsx_load"  # vector load (up to 32B on POWER10)
    VSX_STORE = "vsx_store"
    MMA = "mma"            # outer-product op targeting an accumulator
    MMA_MOVE = "mma_move"  # xxmtacc/xxmfacc style accumulator moves
    CR = "cr"              # condition register logic
    SYSTEM = "system"      # sync, isync, mtspr ... rarely modeled

    @property
    def is_memory(self) -> bool:
        return self in _MEMORY_CLASSES

    @property
    def is_load(self) -> bool:
        return self in (InstrClass.LOAD, InstrClass.VSX_LOAD)

    @property
    def is_store(self) -> bool:
        return self in (InstrClass.STORE, InstrClass.VSX_STORE)

    @property
    def is_branch(self) -> bool:
        return self in (InstrClass.BRANCH, InstrClass.BRANCH_IND)

    @property
    def is_vector(self) -> bool:
        return self in (InstrClass.VSX, InstrClass.VSX_LOAD,
                        InstrClass.VSX_STORE)

    @property
    def is_mma(self) -> bool:
        return self in (InstrClass.MMA, InstrClass.MMA_MOVE)


_MEMORY_CLASSES = frozenset({
    InstrClass.LOAD, InstrClass.STORE,
    InstrClass.VSX_LOAD, InstrClass.VSX_STORE,
})


# Register-name spaces.  The unified POWER10 register file holds GPR and
# FPR/VSR data in one sliced structure; we keep distinct name ranges so
# dependence tracking stays simple while the *power* model can still charge
# accesses to the unified structure.
GPR_BASE = 0          # r0..r31        -> names [0, 32)
VSR_BASE = 64         # vs0..vs63      -> names [64, 128)
ACC_BASE = 256        # acc0..acc7     -> names [256, 264)
CR_BASE = 300         # cr fields      -> names [300, 308)
LR_NAME = 320
CTR_NAME = 321

NUM_GPRS = 32
NUM_VSRS = 64
NUM_ACCS = 8


@dataclass
class Instruction:
    """One dynamic instruction in a workload trace.

    Attributes
    ----------
    iclass:
        Execution class (decides the issue resource and base latency).
    dests / srcs:
        Register names written / read.  Names use the bases defined in
        this module (``GPR_BASE``, ``VSR_BASE``, ``ACC_BASE``...).
    address / size:
        Effective address and byte count for memory operations.
    taken / target:
        For branches: resolved direction and target address.
    flops:
        Floating point operations performed (for FLOPs/cycle reporting).
        An MMA ``xvf64ger`` style op on a 4x2 fp64 grid performs
        16 FLOPs (8 MACs); a 128-bit fp64 FMA performs 4.
    pc:
        Instruction address, used for I-cache and branch predictor
        indexing and BBV construction.
    thread:
        Hardware thread id (SMT).
    """

    iclass: InstrClass
    dests: Tuple[int, ...] = ()
    srcs: Tuple[int, ...] = ()
    address: Optional[int] = None
    size: int = 0
    taken: bool = False
    target: Optional[int] = None
    flops: int = 0
    pc: int = 0
    thread: int = 0
    # Filled in by the pipeline: True when this instruction was fetched
    # down a wrong path and flushed (it consumed energy but did no work).
    flushed: bool = field(default=False, compare=False)
    # Set by the fusion engine when this instruction was fused into its
    # predecessor and no longer occupies its own issue slot.
    fused_with_prev: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.iclass.is_memory and self.address is None:
            raise TraceError(
                f"memory instruction {self.iclass} requires an address")
        if self.iclass.is_memory and self.size <= 0:
            raise TraceError("memory instruction requires a positive size")

    @property
    def is_memory(self) -> bool:
        return self.iclass.is_memory


def count_flops(instructions: Sequence[Instruction]) -> int:
    """Total FLOPs across a trace (flushed instructions excluded)."""
    return sum(i.flops for i in instructions if not i.flushed)


# Base execution latencies (cycles), shared by POWER9/POWER10 models.
# POWER10-specific deltas (e.g. reduced L2/L3 latency, extra RF stage)
# live in :mod:`repro.core.config`.
BASE_LATENCY = {
    InstrClass.FX: 1,
    InstrClass.FX_MULDIV: 5,
    InstrClass.LOAD: 4,          # L1 hit load-to-use
    InstrClass.STORE: 1,
    InstrClass.BRANCH: 1,
    InstrClass.BRANCH_IND: 1,
    InstrClass.FP: 6,
    InstrClass.VSX: 6,
    InstrClass.VSX_LOAD: 5,
    InstrClass.VSX_STORE: 1,
    InstrClass.MMA: 4,           # back-to-back capable via accumulators
    InstrClass.MMA_MOVE: 3,
    InstrClass.CR: 1,
    InstrClass.SYSTEM: 10,
}
