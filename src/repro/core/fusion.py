"""Instruction fusion, as expanded dramatically in POWER10.

The paper: "Over 200 different pairs of instruction types are detected in
the instruction cache pre-decode stage and can be fused at decode
resulting in reduced work (one operation instead of two), as well as
reduced or zero latency for dependent operations", with two highlighted
cases: dependent ALU pairs (single op or shared issue-queue entry with
optimized latency) and consecutive-address store pairs (single AGEN, and
a single store-queue entry when each store is <= 8 bytes).

We model fusion as *semantic kinds*.  Each kind carries a predicate over
an adjacent instruction pair plus the effect fusion has on the pipeline
(iop elision, latency reduction, shared queue entry, single AGEN).  A
registry expands each kind into the concrete opcode pairs it covers on
the real machine, which is what the "200 pairs" headline counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .isa import Instruction, InstrClass
from ..errors import ConfigError


class FusionKind(enum.Enum):
    DEP_ALU = "dep_alu"              # producer FX -> dependent consumer FX
    CMP_BRANCH = "cmp_branch"        # compare + conditional branch
    ADDI_LOAD = "addi_load"          # address form + dependent load
    ADDI_STORE = "addi_store"        # address form + dependent store
    STORE_PAIR = "store_pair"        # stores to consecutive addresses
    LOAD_PAIR = "load_pair"          # loads from consecutive addresses
    LOGICAL_PAIR = "logical_pair"    # independent logical ops, shared slot
    OP_CR = "op_cr"                  # record-form op + CR consumer


@dataclass(frozen=True)
class FusionEffect:
    """What a fused pair costs relative to two separate instructions."""

    single_iop: bool          # True: one issue-queue entry & one issue
    latency_delta: int        # change to consumer latency (negative=better)
    single_agen: bool = False
    single_storeq_entry: bool = False


FUSION_EFFECTS = {
    FusionKind.DEP_ALU: FusionEffect(single_iop=True, latency_delta=-1),
    FusionKind.CMP_BRANCH: FusionEffect(single_iop=True, latency_delta=-1),
    FusionKind.ADDI_LOAD: FusionEffect(single_iop=True, latency_delta=-1),
    FusionKind.ADDI_STORE: FusionEffect(single_iop=True, latency_delta=0),
    FusionKind.STORE_PAIR: FusionEffect(single_iop=True, latency_delta=0,
                                        single_agen=True,
                                        single_storeq_entry=True),
    FusionKind.LOAD_PAIR: FusionEffect(single_iop=True, latency_delta=0,
                                       single_agen=True),
    FusionKind.LOGICAL_PAIR: FusionEffect(single_iop=True, latency_delta=0),
    FusionKind.OP_CR: FusionEffect(single_iop=True, latency_delta=-1),
}


def _writes_read_by(first: Instruction, second: Instruction) -> bool:
    return any(dest in second.srcs for dest in first.dests)


def _consecutive_addresses(first: Instruction, second: Instruction) -> bool:
    if first.address is None or second.address is None:
        return False
    return second.address == first.address + first.size


def classify_pair(first: Instruction,
                  second: Instruction) -> Optional[FusionKind]:
    """Return the fusion kind for an adjacent pair, or None."""
    if first.thread != second.thread:
        return None
    a, b = first.iclass, second.iclass
    if a is InstrClass.FX and b is InstrClass.FX:
        # only simple producer->consumer ALU pairs fuse (the hardware
        # recognizes specific opcode pairs, not arbitrary FX sequences)
        if (_writes_read_by(first, second) and len(first.srcs) <= 1
                and len(second.srcs) <= 1):
            return FusionKind.DEP_ALU
        return None
    if a is InstrClass.FX and b is InstrClass.CR:
        return FusionKind.OP_CR
    if a is InstrClass.CR and b.is_branch:
        return FusionKind.CMP_BRANCH
    if a is InstrClass.FX and b.is_branch and _writes_read_by(first, second):
        return FusionKind.CMP_BRANCH
    if a is InstrClass.FX and b is InstrClass.LOAD \
            and _writes_read_by(first, second):
        return FusionKind.ADDI_LOAD
    if a is InstrClass.FX and b is InstrClass.STORE \
            and _writes_read_by(first, second):
        return FusionKind.ADDI_STORE
    if a.is_store and b.is_store and _consecutive_addresses(first, second):
        if first.size <= 16 and second.size <= 16:
            return FusionKind.STORE_PAIR
        return None
    if a is InstrClass.LOAD and b is InstrClass.LOAD \
            and _consecutive_addresses(first, second):
        return FusionKind.LOAD_PAIR
    return None


# --- registry of concrete opcode pairs per kind ---------------------------
#
# The counts below enumerate representative Power ISA mnemonics per slot of
# each fusable pattern; their cross products are the concrete "pairs of
# instruction types" the pre-decode stage recognizes.  The registry is what
# backs the paper's "over 200 pairs" statement and is exercised by tests.

_ALU_PRODUCERS = ("addi", "addis", "add", "subf", "neg", "and", "or", "xor",
                  "andc", "orc", "nand", "nor", "rlwinm", "rldicl", "rldicr",
                  "extsw", "extsh", "extsb")
_ALU_CONSUMERS = ("add", "subf", "and", "or", "xor", "rlwinm", "rldicl",
                  "extsw", "cmpi", "cmpli")
_CMP_OPS = ("cmpi", "cmpli", "cmp", "cmpl", "andi.", "and.", "add.")
_BRANCHES = ("bc", "bc+8", "bclr", "bctar")
_LOADS = ("lbz", "lhz", "lwz", "ld", "lwa", "lxsd", "lxv")
_STORES = ("stb", "sth", "stw", "std", "stxsd", "stxv")
_ADDR_FORMS = ("addi", "addis", "paddi")
_CR_OPS = ("crand", "cror", "crxor", "setbc", "setbcr")


def concrete_pairs(kind: FusionKind) -> List[Tuple[str, str]]:
    """Expand a fusion kind into its concrete opcode pairs."""
    if kind is FusionKind.DEP_ALU:
        return [(p, c) for p in _ALU_PRODUCERS for c in _ALU_CONSUMERS]
    if kind is FusionKind.CMP_BRANCH:
        return [(c, b) for c in _CMP_OPS for b in _BRANCHES]
    if kind is FusionKind.ADDI_LOAD:
        return [(a, l) for a in _ADDR_FORMS for l in _LOADS]
    if kind is FusionKind.ADDI_STORE:
        return [(a, s) for a in _ADDR_FORMS for s in _STORES]
    if kind is FusionKind.STORE_PAIR:
        return [(s, s) for s in _STORES]
    if kind is FusionKind.LOAD_PAIR:
        return [(l, l) for l in _LOADS]
    if kind is FusionKind.LOGICAL_PAIR:
        return [(p, q) for p in _ALU_PRODUCERS[:8] for q in _ALU_PRODUCERS[:8]]
    if kind is FusionKind.OP_CR:
        return [(p, c) for p in _ALU_PRODUCERS[:6] for c in _CR_OPS]
    raise ConfigError(f"unknown kind {kind}")


def registry_size() -> int:
    """Total number of concrete fusable opcode pairs recognized."""
    return sum(len(concrete_pairs(kind)) for kind in FusionKind)


@dataclass
class FusionStats:
    candidates: int = 0
    fused: int = 0
    by_kind: dict = None

    def __post_init__(self):
        if self.by_kind is None:
            self.by_kind = {kind: 0 for kind in FusionKind}

    @property
    def fusion_rate(self) -> float:
        return self.fused / self.candidates if self.candidates else 0.0


class FusionEngine:
    """Marks fusable adjacent pairs in a decode group.

    ``apply`` walks a decode group in order; when a pair fuses, the
    second instruction is marked ``fused_with_prev`` and the effect is
    returned so the pipeline can skip its dispatch/issue costs.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.stats = FusionStats()

    def apply(self, group: Sequence[Instruction]) -> List[FusionEffect]:
        """Annotate fusion in a decode group; returns per-instr effects.

        The returned list is parallel to ``group``; entry *i* is the
        effect applied to instruction *i* when it fused with *i-1*,
        else None.
        """
        effects: List[Optional[FusionEffect]] = [None] * len(group)
        if not self.enabled:
            return effects
        i = 0
        while i + 1 < len(group):
            first, second = group[i], group[i + 1]
            self.stats.candidates += 1
            kind = classify_pair(first, second)
            if kind is not None:
                second.fused_with_prev = True
                effects[i + 1] = FUSION_EFFECTS[kind]
                self.stats.fused += 1
                self.stats.by_kind[kind] += 1
                i += 2          # a fused instruction cannot fuse again
            else:
                i += 1
        return effects
