"""Core micro-architecture models: ISA, POWER9/POWER10 configurations,
branch predictors, caches, MMU, fusion, the MMA/VSU functional units and
the out-of-order timing model."""

from .activity import (ActivityCounters, EVENT_NAMES, UNIT_NAMES,
                       set_strict_default)
from .config import (CoreConfig, FEATURE_NAMES, apply_features,
                     power9_config, power10_config)
from .isa import Instruction, InstrClass
from .mma import MMAUnit, mma_gemm, ger_instructions_for_gemm
from .vsu import VSUnit, vsu_gemm, vector_fma_count_for_gemm
from .pipeline import SimResult, simulate
from .simulator import (RunMeasurement, SuiteResult, compare_configs,
                        simulate_suite, simulate_trace)
from .socket import (POWER9_SOCKET, POWER10_SOCKET, SocketConfig,
                     SocketProjection, precision_speedup, project_socket)

__all__ = [
    "ActivityCounters", "EVENT_NAMES", "UNIT_NAMES",
    "CoreConfig", "FEATURE_NAMES", "apply_features",
    "power9_config", "power10_config",
    "Instruction", "InstrClass",
    "MMAUnit", "mma_gemm", "ger_instructions_for_gemm",
    "VSUnit", "vsu_gemm", "vector_fma_count_for_gemm",
    "SimResult", "simulate",
    "RunMeasurement", "SuiteResult", "compare_configs",
    "simulate_suite", "simulate_trace",
    "POWER9_SOCKET", "POWER10_SOCKET", "SocketConfig",
    "SocketProjection", "precision_speedup", "project_socket",
]
