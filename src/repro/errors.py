"""Exception types shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class TraceError(ReproError):
    """A workload trace is malformed or violates a precondition."""


class ModelError(ReproError):
    """A power/performance model could not be built or evaluated."""


class SimulationError(ReproError):
    """The core simulator entered an inconsistent state."""


class TelemetryError(ReproError):
    """The observability layer was misused (conflicting metric
    registration, malformed sampler state, bad export target)."""


class AnalysisError(ReproError):
    """Analysis/reporting helpers were fed inconsistent data."""


class LintError(ReproError):
    """The static-analysis pass could not run (unreadable source,
    missing contract tables, malformed baseline file)."""


class ExecError(ReproError):
    """The parallel execution engine was misused (unknown task kind,
    invalid cache key, unpicklable payload, failed worker)."""


class ResilienceError(ReproError):
    """The fault-injection layer was misused (malformed fault schedule,
    conflicting active injectors, corrupt campaign checkpoint)."""


class HangError(ResilienceError):
    """A fault-injected simulation exceeded its cycle budget; the
    campaign watchdog converts this into a classified hang."""
