"""Exception types shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class TraceError(ReproError):
    """A workload trace is malformed or violates a precondition."""


class ModelError(ReproError):
    """A power/performance model could not be built or evaluated."""


class SimulationError(ReproError):
    """The core simulator entered an inconsistent state."""


class TelemetryError(ReproError):
    """The observability layer was misused (conflicting metric
    registration, malformed sampler state, bad export target)."""


class AnalysisError(ReproError):
    """Analysis/reporting helpers were fed inconsistent data."""


class LintError(ReproError):
    """The static-analysis pass could not run (unreadable source,
    missing contract tables, malformed baseline file)."""


class LintUsageError(LintError):
    """A lint entry point was called with an invalid argument (unknown
    severity name, unknown fix rule); the CLI adapter converts this
    into an argparse usage error."""


class ExecError(ReproError):
    """The parallel execution engine was misused (unknown task kind,
    invalid cache key, unpicklable payload, failed worker)."""


class ServeError(ReproError):
    """The serving layer was misused or could not honor a request
    (malformed protocol payload, invalid batching/admission setup)."""


class OverloadError(ServeError):
    """The server shed a request it could not degrade: the admission
    queue or rate budget was exhausted and no proxy fast path applied
    (HTTP 503 with a Retry-After hint)."""


class DeadlineError(ServeError):
    """A request's deadline expired before the engine produced the
    full-fidelity answer and no degraded answer was possible."""


class DrainingError(ServeError):
    """The server is shutting down: in-flight work was resolved with a
    well-formed error instead of completing (or hanging)."""


class ClusterError(ServeError):
    """The multi-worker cluster could not route a request (no healthy
    shard, malformed upstream response, worker that never came up) or
    the cluster topology was misconfigured."""


class ResilienceError(ReproError):
    """The fault-injection layer was misused (malformed fault schedule,
    conflicting active injectors, corrupt campaign checkpoint)."""


class HangError(ResilienceError):
    """A fault-injected simulation exceeded its cycle budget; the
    campaign watchdog converts this into a classified hang."""


class ChaosError(ResilienceError):
    """The service-level chaos layer was misused (unknown fault kind,
    malformed token file, invalid campaign configuration)."""
