"""Rolling-window SLO tracking for the simulation service.

The tracker watches the last ``window_s`` seconds of v1-route requests
and answers two questions continuously: *is the p99 under target?* and
*how much error budget is left?* — the serving-layer analog of the
OCC's always-on telemetry loop (the paper's power-management story is
exactly this shape: observe a rolling window, compare against a bound,
react).  ``/healthz`` embeds the snapshot, so one scrape tells both
liveness and health-against-objective.

The clock is injectable for tests; production uses ``time.monotonic``.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ServeError
from ..obs.metrics import get_registry


class SloTracker:
    """Rolling-window latency / error-budget accounting."""

    def __init__(self, *, window_s: float = 60.0,
                 target_p99_s: float = 2.0,
                 target_error_rate: float = 0.05,
                 clock: Optional[Callable[[], float]] = None):
        if window_s <= 0:
            raise ServeError(f"window_s must be positive, got {window_s}")
        if target_p99_s <= 0:
            raise ServeError(
                f"target_p99_s must be positive, got {target_p99_s}")
        if not 0.0 <= target_error_rate <= 1.0:
            raise ServeError(
                f"target_error_rate must be in [0, 1], got "
                f"{target_error_rate}")
        self.window_s = window_s
        self.target_p99_s = target_p99_s
        self.target_error_rate = target_error_rate
        self._clock = clock if clock is not None else time.monotonic
        # (observed_at, latency_s, error, degraded), append-ordered so
        # expiry is a single bisect + slice
        self._events: List[Tuple[float, float, bool, bool]] = []
        self._lock = threading.Lock()

    def _expire(self, now: float) -> None:
        cutoff = now - self.window_s
        idx = bisect.bisect_right(self._events,
                                  (cutoff, float("inf"), True, True))
        if idx:
            del self._events[:idx]

    def observe(self, latency_s: float, *, error: bool = False,
                degraded: bool = False) -> None:
        """Record one finished request."""
        now = self._clock()
        with self._lock:
            self._expire(now)
            self._events.append((now, latency_s, error, degraded))
        if error or latency_s > self.target_p99_s:
            get_registry().counter(
                "repro_serve_slo_breaches_total",
                "requests that individually violated an SLO bound "
                "(error, or latency above the p99 target)").inc(
                    reason="error" if error else "latency")

    @staticmethod
    def _percentile(sorted_values: List[float], q: float) -> float:
        """Nearest-rank percentile (q in [0, 1]) of pre-sorted values."""
        if not sorted_values:
            return 0.0
        rank = max(1, math.ceil(q * len(sorted_values)))
        return sorted_values[min(rank, len(sorted_values)) - 1]

    def snapshot(self) -> Dict[str, object]:
        """Window state: percentiles, rates, budget, overall verdict.

        ``error_budget_remaining`` is the fraction of the window's
        allowed errors not yet spent (1.0 = untouched, 0.0 = exhausted,
        negative = blown).
        """
        now = self._clock()
        with self._lock:
            self._expire(now)
            events = list(self._events)
        n = len(events)
        latencies = sorted(e[1] for e in events)
        n_errors = sum(1 for e in events if e[2])
        n_degraded = sum(1 for e in events if e[3])
        p50 = self._percentile(latencies, 0.50)
        p95 = self._percentile(latencies, 0.95)
        p99 = self._percentile(latencies, 0.99)
        error_rate = n_errors / n if n else 0.0
        allowed = self.target_error_rate * n
        budget = 1.0 - (n_errors / allowed) if allowed > 0 else 1.0
        p99_ok = p99 <= self.target_p99_s
        error_ok = error_rate <= self.target_error_rate
        return {
            "window_s": self.window_s,
            "requests": n,
            "latency_s": {"p50": p50, "p95": p95, "p99": p99},
            "error_rate": error_rate,
            "degraded_rate": (n_degraded / n) if n else 0.0,
            "target_p99_s": self.target_p99_s,
            "target_error_rate": self.target_error_rate,
            "p99_ok": p99_ok,
            "error_budget_remaining": budget,
            "healthy": p99_ok and error_ok,
        }
