"""Deterministic open-loop load generator for ``repro serve``.

The *schedule* — request mix, parameters, and exponential interarrival
gaps — is a pure function of the seed (``numpy.random.default_rng``),
so two runs against equally-warm servers issue byte-identical request
streams.  Dispatch is open-loop: requests fire at their scheduled
offsets regardless of completions (that is what makes overload
observable — a closed loop would just slow down instead of shedding),
from a thread pool sized generously above the concurrency the schedule
can reach.

Every scheduled request carries a deterministic id
(``req-s<seed>-<index>``) sent as ``X-Request-Id``, so the loadgen's
per-request rows, the server's access log, and the Perfetto trace all
correlate on the same key.

The report (``BENCH_serve.json``, schema 2) carries:

* top level: throughput, latency percentiles (p50/p95/p99,
  nearest-rank), outcome counts (ok / degraded / error / malformed);
* ``endpoints``: the same breakdown per route, with a
  ``degraded_rate`` column;
* ``slo``: the run judged against a latency target (default p99 ≤
  ``slo_p99_ms``), plus the server's own rolling-window verdict
  scraped from ``/healthz`` when reachable;
* ``availability``: good/degraded/rejected/failed counts and the
  answered-usefully rate, so ``perfwatch`` can watch availability
  alongside p99 (rejected = structured 503/504 refusals; failed =
  everything else that was not a useful answer);
* ``per_request``: one row per scheduled request (id, route, offset,
  latency, outcome) for trace/access-log correlation;
* ``by_route``: legacy schema-1 request counts (kept for tooling
  compatibility).

``repro loadgen`` writes it next to the other ``BENCH_*.json``
artifacts so ``repro perfwatch`` can track service latency the way it
tracks model numbers.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ServeError
from .client import ServeClient, ServeResponse

# (route, weight) — the mix leans on simulate (the expensive path) with
# enough estimate/compare traffic to exercise every handler.
_MIX: Tuple[Tuple[str, float], ...] = (
    ("/v1/simulate", 0.6),
    ("/v1/estimate", 0.3),
    ("/v1/compare", 0.1),
)

_WORKLOADS = ("daxpy", "dgemm-vsu", "stream-triad", "xz")
_INSTRUCTIONS = (500, 1000, 2000)


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run, fully determined by these fields."""

    seed: int = 0
    requests: int = 50
    rate_per_s: float = 25.0
    host: str = "127.0.0.1"
    port: int = 8419
    timeout_s: float = 60.0
    deadline_ms: Optional[int] = None
    slo_p99_ms: float = 2000.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ServeError(
                f"requests must be >= 1, got {self.requests}")
        if self.rate_per_s <= 0:
            raise ServeError(
                f"rate_per_s must be positive, got {self.rate_per_s}")


def build_schedule(config: LoadgenConfig,
                   ) -> List[Tuple[float, str, Dict[str, object], str]]:
    """``(start_offset_s, route, payload, request_id)`` tuples,
    seed-deterministic (ids included: ``req-s<seed>-<index>``)."""
    rng = np.random.default_rng(config.seed)
    routes = [r for r, _w in _MIX]
    weights = np.array([w for _r, w in _MIX])
    weights = weights / weights.sum()
    gaps = rng.exponential(1.0 / config.rate_per_s,
                           size=config.requests)
    offsets = np.cumsum(gaps)
    schedule: List[Tuple[float, str, Dict[str, object], str]] = []
    for i in range(config.requests):
        route = routes[int(rng.choice(len(routes), p=weights))]
        workload = _WORKLOADS[int(rng.integers(len(_WORKLOADS)))]
        instructions = _INSTRUCTIONS[int(
            rng.integers(len(_INSTRUCTIONS)))]
        payload: Dict[str, object] = {"instructions": instructions}
        if route == "/v1/compare":
            payload["workloads"] = [workload]
        else:
            payload["workload"] = workload
            payload["config"] = ("power10" if rng.random() < 0.7
                                 else "power9")
        if config.deadline_ms is not None \
                and route != "/v1/estimate":
            payload["deadline_ms"] = config.deadline_ms
        rid = f"req-s{config.seed}-{i:05d}"
        schedule.append((float(offsets[i]), route, payload, rid))
    return schedule


def _digest(value: object) -> str:
    """Canonical short digest of a JSON-serializable value."""
    return hashlib.sha256(
        json.dumps(value, sort_keys=True, default=str)
        .encode("utf-8")).hexdigest()[:16]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(np.ceil(q / 100.0 * len(sorted_values))))
    return float(sorted_values[rank - 1])


def run_loadgen(config: LoadgenConfig) -> Dict[str, object]:
    """Fire the schedule at one server; returns the report dict."""
    schedule = build_schedule(config)
    # retries=0: the generator must observe shedding, not paper over
    # it; the jitter seed keeps even the (unused) backoff RNG
    # deterministic end-to-end
    client = ServeClient(host=config.host, port=config.port,
                         timeout_s=config.timeout_s, retries=0,
                         jitter_seed=config.seed)

    def _fire(offset_s: float, route: str,
              payload: Dict[str, object], rid: str, start: float):
        delay = start + offset_s - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        try:
            return client.request(route, payload,
                                  request_id=rid), None
        except ServeError as exc:        # connection failure / bad body
            return None, str(exc)

    outcomes: List[Tuple[Optional[ServeResponse], Optional[str]]] = []
    started = time.monotonic()
    max_workers = min(64, config.requests)
    with concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix="repro-loadgen") as pool:
        futures = [pool.submit(_fire, offset, route, payload, rid,
                               started)
                   for offset, route, payload, rid in schedule]
        for fut in futures:              # plan order, not completion
            outcomes.append(fut.result())
    elapsed_s = time.monotonic() - started

    latencies: List[float] = []
    ok = degraded = errors = malformed = rejected = 0
    per_route: Dict[str, Dict[str, object]] = {}
    per_request: List[Dict[str, object]] = []
    for (offset, route, _payload, rid), (resp, failure) in zip(
            schedule, outcomes):
        stats = per_route.setdefault(
            route, {"count": 0, "ok": 0, "degraded": 0, "errors": 0,
                    "malformed": 0, "latencies": []})
        stats["count"] += 1
        row: Dict[str, object] = {"id": rid, "route": route,
                                  "offset_s": round(offset, 6)}
        if resp is None:
            malformed += 1
            stats["malformed"] += 1
            row["outcome"] = "malformed"
            row["error"] = failure
            per_request.append(row)
            continue
        latencies.append(resp.latency_s)
        stats["latencies"].append(resp.latency_s)
        row["latency_s"] = round(resp.latency_s, 6)
        row["status"] = resp.status
        if resp.shard is not None:      # routed through a cluster
            row["shard"] = resp.shard
        # ordering-sensitive identity for the sanitizer's double-run
        # diff: the same request id must produce the same body bytes
        row["body_sha"] = _digest(resp.body)
        if isinstance(resp.body, dict) and "result" in resp.body:
            row["result_sha"] = _digest(resp.body["result"])
        if resp.ok:
            ok += 1
            stats["ok"] += 1
            if resp.degraded:
                degraded += 1
                stats["degraded"] += 1
                row["outcome"] = "degraded"
            else:
                row["outcome"] = "ok"
        else:
            errors += 1
            stats["errors"] += 1
            row["outcome"] = "error"
            if resp.status in (503, 504):
                # structured refusal (overload/draining/deadline) —
                # predictable degradation, not damage
                rejected += 1
        per_request.append(row)
    latencies.sort()

    def _latency_doc(values: List[float]) -> Dict[str, float]:
        values = sorted(values)
        return {
            "p50": _percentile(values, 50.0),
            "p95": _percentile(values, 95.0),
            "p99": _percentile(values, 99.0),
            "max": values[-1] if values else 0.0,
            "mean": float(np.mean(values)) if values else 0.0,
        }

    endpoints = {}
    for route in sorted(per_route):
        stats = per_route[route]
        n = stats["count"]
        endpoints[route] = {
            "count": n,
            "ok": stats["ok"],
            "degraded": stats["degraded"],
            "errors": stats["errors"],
            "malformed": stats["malformed"],
            "degraded_rate": stats["degraded"] / n if n else 0.0,
            "latency_s": _latency_doc(stats["latencies"]),
        }

    p99 = _percentile(latencies, 99.0)
    answered = len(latencies)
    slo: Dict[str, object] = {
        "target_p99_ms": config.slo_p99_ms,
        "p99_ms": p99 * 1e3,
        "p99_ok": p99 * 1e3 <= config.slo_p99_ms,
        "error_rate": (errors / answered) if answered else 0.0,
        "degraded_rate": (degraded / answered) if answered else 0.0,
    }
    try:       # the server's own rolling-window verdict, best-effort
        slo["server"] = client.healthz().get("slo")
    except ServeError:
        slo["server"] = None

    report = {
        "schema": 2,
        "seed": config.seed,
        "requests": config.requests,
        "offered_rate_per_s": config.rate_per_s,
        "elapsed_s": elapsed_s,
        "throughput_per_s": (answered / elapsed_s
                             if elapsed_s > 0 else 0.0),
        "ok": ok,
        "degraded": degraded,
        "errors": errors,
        "malformed": malformed,
        "availability": {
            "good": ok - degraded,
            "degraded": degraded,
            "rejected": rejected,
            "failed": (errors - rejected) + malformed,
            # answered usefully (full-fidelity or degraded) over issued
            "rate": ok / config.requests,
        },
        "by_route": {r: per_route[r]["count"]
                     for r in sorted(per_route)},
        "endpoints": endpoints,
        "slo": slo,
        "latency_s": _latency_doc(latencies),
        "per_request": per_request,
    }
    return report


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
