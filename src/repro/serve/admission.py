"""Admission control: rate limiting, bounded concurrency, degradation.

The escalation ladder mirrors PR 3's fail-safe philosophy and the
paper's reason for building power proxies at all (§IV-C: a cheap
weighted counter sum beats having no power number): a request the
server cannot run at full fidelity within its queue/rate/deadline
budget is *degraded* to a power-proxy fast-path answer (marked
``"degraded": true``) before the server ever returns 503.  Only
requests with no proxy equivalent (fault injection) are rejected
outright, with a ``Retry-After`` hint.

This module is in the R003 determinism scope like the rest of the
serve layer (the old blanket carve-out was retired in PR 7); the
token bucket takes its clock readings as *arguments* from the named
``WALL_CLOCK_ALLOWANCES`` call sites rather than reading wall clocks
itself.  Determinism lives behind the Engine boundary — degraded
answers are themselves deterministic (seeded tiny calibration runs +
a fitted proxy design), only *which* requests get degraded depends on
load, which is why the sanitizer's double-run diff excuses degraded
rows.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import ServeError
from ..obs.metrics import get_registry

GENERATIONS = ("power9", "power10")

# Workloads characterized to fit each generation's proxy design; small
# fixed suite so the fit sees memory-, compute- and MMA-shaped rates.
# POWER9 has no MMA resource, so its suite drops the MMA kernel.
CALIBRATION_WORKLOADS = ("daxpy", "dgemm-vsu", "dgemm-mma",
                         "stream-triad", "pointer-chase", "stressmark")


def _calibration_suite(generation: str) -> Tuple[str, ...]:
    if generation == "power9":
        return tuple(w for w in CALIBRATION_WORKLOADS
                     if w != "dgemm-mma")
    return CALIBRATION_WORKLOADS


class TokenBucket:
    """Classic token bucket; ``clock`` is injectable for tests."""

    def __init__(self, rate_per_s: float, burst: int, *,
                 clock: Callable[[], float] = time.monotonic):
        if rate_per_s <= 0:
            raise ServeError(f"rate must be positive, got {rate_per_s}")
        if burst < 1:
            raise ServeError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(float(self.burst),
                           self._tokens
                           + (now - self._last) * self.rate_per_s)
        self._last = now

    def try_take(self) -> bool:
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until one token is available."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate_per_s


class CircuitBreaker:
    """Per-route closed/open/half-open breaker; ``clock`` injectable.

    Trips after ``failure_threshold`` *consecutive* execution failures
    and stays open for ``reset_s``, during which the server routes
    degradable requests straight to the proxy fast path (and rejects
    the rest with Retry-After) instead of feeding a sick engine.  After
    ``reset_s`` one probe request is let through (half-open): success
    closes the breaker, failure reopens it for another ``reset_s``.

    The paper's §IV-B fail-safe ladder applied to the serving plane:
    when full-fidelity execution is compromised, fall back to the
    always-available approximation rather than queue behind failures.

    Like :class:`AdmissionController`, all methods are called from the
    server's event loop only, so plain attributes suffice (no locks).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, route: str = "", *, failure_threshold: int = 5,
                 reset_s: float = 10.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ServeError(
                f"failure_threshold must be >= 1, got "
                f"{failure_threshold}")
        if reset_s <= 0:
            raise ServeError(f"reset_s must be positive, got {reset_s}")
        self.route = route
        self.failure_threshold = int(failure_threshold)
        self.reset_s = float(reset_s)
        self._clock = clock
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        return self._state

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        registry = get_registry()
        registry.counter(
            "repro_serve_breaker_transitions_total",
            "circuit-breaker state transitions").inc(
                route=self.route, to=state)
        registry.gauge(
            "repro_serve_breaker_state",
            "breaker state (0 closed, 1 half-open, 2 open)").set(
                {self.CLOSED: 0.0, self.HALF_OPEN: 1.0,
                 self.OPEN: 2.0}[state], route=self.route)

    def allow(self) -> bool:
        """May a request proceed to full-fidelity execution?"""
        if self._state == self.CLOSED:
            return True
        if self._state == self.OPEN:
            if self._clock() - self._opened_at < self.reset_s:
                return False
            self._transition(self.HALF_OPEN)
            self._probing = True
            return True
        # half-open: exactly one probe at a time
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self._failures = 0
        self._probing = False
        self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self._failures += 1
        failed_probe = self._state == self.HALF_OPEN
        self._probing = False
        if failed_probe or self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self._transition(self.OPEN)
            self._failures = 0

    def retry_after_s(self) -> float:
        """Seconds until the next probe is allowed (0 unless open)."""
        if self._state != self.OPEN:
            return 0.0
        return max(0.0,
                   self.reset_s - (self._clock() - self._opened_at))


@dataclass(frozen=True)
class Decision:
    """Outcome of admission: run, degrade to proxy, or reject."""

    action: str                  # "admit" | "degrade" | "reject"
    reason: str = ""
    retry_after_s: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.action == "admit"


class AdmissionController:
    """Bounded in-flight requests plus an optional token bucket.

    ``decide``/``release`` are only called from the server's event
    loop, so plain counters suffice (no locking).
    """

    def __init__(self, *, max_inflight: int = 32,
                 bucket: Optional[TokenBucket] = None):
        if max_inflight < 1:
            raise ServeError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self.bucket = bucket
        self._inflight = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    def decide(self, *, degradable: bool) -> Decision:
        registry = get_registry()
        reason = ""
        if self.bucket is not None and not self.bucket.try_take():
            reason = "rate"
        elif self._inflight >= self.max_inflight:
            reason = "queue"
        if not reason:
            self._inflight += 1
            registry.gauge(
                "repro_serve_inflight",
                "admitted requests currently in flight").set(
                    float(self._inflight))
            return Decision("admit")
        action = "degrade" if degradable else "reject"
        registry.counter(
            "repro_serve_shed_total",
            "requests shed by admission control").inc(
                action=action, reason=reason)
        retry = 1.0
        if reason == "rate" and self.bucket is not None:
            retry = max(retry, self.bucket.retry_after_s())
        return Decision(action, reason, retry_after_s=retry)

    def release(self) -> None:
        if self._inflight <= 0:
            raise ServeError("release() without a matching admit")
        self._inflight -= 1
        get_registry().gauge(
            "repro_serve_inflight",
            "admitted requests currently in flight").set(
                float(self._inflight))


class ProxyFastPath:
    """Degraded answers from the §IV-C power-proxy coefficients.

    One tiny calibration run per ``(generation, workload)`` measures
    steady-state counter rates and IPC; a per-generation
    :class:`~repro.power.proxy.ProxyDesign` fitted over the calibration
    suite turns rates into watts.  After first touch an estimate is a
    dict lookup plus a dot product, so the fast path stays cheap under
    exactly the overload that triggers it.  Everything is seeded and
    pure in its inputs: the same request always gets the same degraded
    answer.
    """

    def __init__(self, *, calibration_instructions: int = 384,
                 num_counters: int = 4):
        if calibration_instructions < 64:
            raise ServeError("calibration_instructions must be >= 64")
        if num_counters < 1:
            raise ServeError("num_counters must be >= 1")
        self.calibration_instructions = calibration_instructions
        self.num_counters = num_counters
        self._lock = threading.Lock()
        self._configs: Dict[str, object] = {}
        self._designs: Dict[str, object] = {}
        # (generation, workload) -> (rates row, ipc, flops_per_cycle)
        self._calib: Dict[Tuple[str, str], Tuple[Dict[str, float],
                                                 float, float]] = {}

    def _config(self, generation: str):
        from ..core import power9_config, power10_config
        config = self._configs.get(generation)
        if config is None:
            if generation not in GENERATIONS:
                raise ServeError(
                    f"unknown generation {generation!r}")
            config = (power9_config() if generation == "power9"
                      else power10_config())
            self._configs[generation] = config
        return config

    def _design(self, generation: str):
        design = self._designs.get(generation)
        if design is not None:
            return design
        with self._lock:
            design = self._designs.get(generation)
            if design is not None:
                return design
            from ..power.proxy import PowerProxyDesigner
            from ..workloads.resolve import resolve_workload
            designer = PowerProxyDesigner(self._config(generation))
            traces = [resolve_workload(w, self.calibration_instructions)
                      for w in _calibration_suite(generation)]
            features, active_w, total_w = designer.characterize(traces)
            design = designer.select(
                features, active_w, total_w,
                num_counters=self.num_counters, nonnegative=True)
            self._designs[generation] = design
            return design

    def _calibration(self, generation: str, workload: str):
        key = (generation, workload)
        entry = self._calib.get(key)
        if entry is not None:
            return entry
        with self._lock:
            entry = self._calib.get(key)
            if entry is not None:
                return entry
            from ..core.pipeline import simulate
            from ..workloads.resolve import resolve_workload
            trace = resolve_workload(workload,
                                     self.calibration_instructions)
            result = simulate(self._config(generation), trace,
                              warmup_fraction=0.3)
            entry = (dict(result.activity.rates()), result.ipc,
                     result.flops_per_cycle)
            self._calib[key] = entry
            return entry

    def warm(self, generations=GENERATIONS,
             workloads=("daxpy",)) -> None:
        """Pre-build designs and calibrations before taking traffic."""
        for generation in generations:
            self._design(generation)
            for workload in workloads:
                self._calibration(generation, workload)

    def estimate(self, generation: str, workload: str,
                 instructions: int) -> Dict[str, object]:
        """A cheap (proxy-coefficient) answer shaped like /v1/simulate."""
        from ..power.proxy import _feature_matrix
        design = self._design(generation)
        rates, ipc, flops_per_cycle = self._calibration(generation,
                                                        workload)
        power_w = float(design.predict_total_w(
            _feature_matrix([rates]))[0])
        cycles = max(1, int(round(instructions / max(ipc, 1e-9))))
        get_registry().counter(
            "repro_serve_proxy_estimates_total",
            "fast-path answers served from proxy coefficients").inc(
                generation=generation)
        return {"config": generation,
                "workload": workload,
                "instructions": instructions,
                "cycles": cycles,
                "ipc": ipc,
                "power_w": power_w,
                "flops_per_cycle": flops_per_cycle,
                "proxy_counters": list(design.counters)}
