"""Shared asyncio HTTP/1.1 plumbing for the serve and cluster layers.

One wire implementation, two consumers: :class:`~repro.serve.server.
ReproServer` parses inbound requests and renders responses with it,
and the cluster router (:mod:`repro.cluster.router`) additionally uses
the request *encoder* and response *parser* to proxy bodies upstream
over ``asyncio.open_connection`` — the stdlib blocking client
(``http.client``) is banned inside async code by R007, and a proxy
must forward body bytes verbatim anyway, which a parsing client would
not guarantee.

Everything here is pure byte-shuffling: no clocks, no RNGs, no
engine imports — the module stays trivially inside the R003
determinism scope.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from ..errors import ServeError

MAX_BODY_BYTES = 1 << 20
MAX_HEADERS = 100

REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
           405: "Method Not Allowed", 413: "Payload Too Large",
           500: "Internal Server Error", 503: "Service Unavailable",
           504: "Gateway Timeout"}


async def _read_headers(reader) -> Dict[str, str]:
    """Read header lines up to the blank separator (names lowercased)."""
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        try:
            raw = await reader.readline()
        except ValueError as exc:
            raise ServeError(f"header too long: {exc}") from exc
        if raw in (b"\r\n", b"\n", b""):
            return headers
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ServeError(f"malformed header: {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    raise ServeError(f"more than {MAX_HEADERS} headers")


def _body_length(headers: Dict[str, str]) -> int:
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as exc:
        raise ServeError("bad Content-Length") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise ServeError(
            f"body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit")
    return length


async def read_request(reader,
                       ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One HTTP/1.1 request; None on clean EOF.

    Returns ``(method, path, headers, body)`` or raises
    :class:`ServeError` on a malformed request.
    """
    try:
        line = await reader.readline()
    except ValueError as exc:           # request line over the limit
        raise ServeError(f"request line too long: {exc}") from exc
    if not line:
        return None
    parts = line.split()
    if len(parts) != 3:
        raise ServeError(f"malformed request line: {line[:80]!r}")
    method = parts[0].decode("latin-1").upper()
    path = parts[1].decode("latin-1").split("?", 1)[0]
    headers = await _read_headers(reader)
    length = _body_length(headers)
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


async def read_response(reader) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP/1.1 response: ``(status, headers, raw body bytes)``.

    The body is returned verbatim (never decoded or re-serialized) so
    a proxy built on this parser preserves bit-identity by
    construction.  Raises :class:`ServeError` on a malformed status
    line and lets ``asyncio.IncompleteReadError`` surface for torn
    bodies — a proxy must treat those as transport failures, not
    answers.
    """
    try:
        line = await reader.readline()
    except ValueError as exc:
        raise ServeError(f"status line too long: {exc}") from exc
    if not line:
        raise ServeError("empty response (connection closed)")
    parts = line.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
        raise ServeError(f"malformed status line: {line[:80]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise ServeError(f"malformed status: {line[:80]!r}") from exc
    headers = await _read_headers(reader)
    length = _body_length(headers)
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def encode_request(method: str, path: str, body: bytes,
                   headers: Dict[str, str]) -> bytes:
    """Render one request head + body (Content-Length supplied here)."""
    lines = [f"{method} {path} HTTP/1.1",
             f"Content-Length: {len(body)}"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def encode_response(status: int, doc, extra: Dict[str, str],
                    keep_alive: bool) -> bytes:
    """Render one response: dict -> canonical JSON, str -> UTF-8 text
    (pre-rendered Prometheus exposition), bytes -> verbatim passthrough
    (the proxy path — upstream body bytes must never be re-encoded)."""
    if isinstance(doc, bytes):
        payload = doc
    elif isinstance(doc, str):
        payload = doc.encode("utf-8")
    else:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
    extra = dict(extra)
    ctype = extra.pop("Content-Type", "application/json")
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
             f"Content-Type: {ctype}",
             f"Content-Length: {len(payload)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in sorted(extra.items()):
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload


async def write_response(writer, status: int, doc,
                         extra: Dict[str, str],
                         keep_alive: bool) -> None:
    writer.write(encode_response(status, doc, extra, keep_alive))
    await writer.drain()


async def fetch(host: str, port: int, method: str, path: str, *,
                body: bytes = b"", headers: Optional[Dict[str, str]] = None,
                timeout_s: float = 60.0,
                ) -> Tuple[int, Dict[str, str], bytes]:
    """One asyncio HTTP exchange on a fresh connection.

    The cluster router's upstream transport: opens a connection, sends
    one ``Connection: close`` request, and returns the parsed status /
    headers plus the *raw* body bytes.  Transport failures surface as
    ``OSError`` / ``asyncio.TimeoutError`` / ``asyncio.
    IncompleteReadError`` so the caller can fail the shard over.
    """
    hdrs = {"Connection": "close"}
    if headers:
        hdrs.update(headers)
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout_s)
    try:
        writer.write(encode_request(method, path, body, hdrs))
        await writer.drain()
        return await asyncio.wait_for(read_response(reader),
                                      timeout=timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
