"""``repro serve``: the simulation service front door.

A hand-rolled JSON-over-HTTP/1.1 server on ``asyncio.start_server``
(stdlib only — no aiohttp, no http.server).  Routes:

* ``POST /v1/simulate`` — one full-fidelity timing-model run;
* ``POST /v1/compare``  — P9 vs P10 over a workload list;
* ``POST /v1/estimate`` — the explicit power-proxy fast path;
* ``POST /v1/inject``   — one seeded fault-injection run;
* ``GET /healthz``      — liveness + drain state;
* ``GET /metrics``      — the obs metrics-registry dump.

Request flow: admission control (token bucket + bounded in-flight)
→ micro-batcher (single-flight dedupe into one Engine plan) → the
PR 4 execution engine with its content-addressed cache.  A request
that cannot be admitted or misses its deadline degrades to the
power-proxy fast path (``"degraded": true``) when a proxy answer
exists, and is rejected with 503 + ``Retry-After`` only when it does
not.  Shutdown drains: the listener closes, in-flight work gets
``drain_timeout_s`` to finish, and whatever remains is answered with a
well-formed ``shutting_down`` error body — never a hang.

Responses produced through the batcher are bit-identical to direct
serial :class:`~repro.exec.executor.Engine` runs (test-guarded):
batching only changes *when* a task runs, never what it computes, and
power is recomputed in this process from exact cached activity.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..errors import (DeadlineError, DrainingError, OverloadError,
                      ReproError, ServeError)
from ..exec.cache import sim_result_from_json
from ..exec.executor import Engine, campaign_task, sim_task
from ..obs.context import (RequestContext, activate, clean_request_id,
                           current_request_id, deactivate,
                           new_request_id)
from ..obs.metrics import get_registry
from ..obs.prometheus import CONTENT_TYPE as _PROMETHEUS_CONTENT_TYPE
from ..obs.prometheus import render_prometheus
from ..obs.requestlog import open_access_log
from ..obs.tracing import get_tracer
from ..obs.tracing import span as _obs_span
from . import protocol
from .admission import (AdmissionController, CircuitBreaker,
                        ProxyFastPath, TokenBucket)
from .batcher import MicroBatcher
from .http import (MAX_BODY_BYTES, MAX_HEADERS, read_request,
                   write_response)
from .slo import SloTracker

__all__ = ["MAX_BODY_BYTES", "MAX_HEADERS", "ServeConfig",
           "ReproServer", "ServerHandle", "run_server",
           "start_in_thread"]


def _publish_port(port_file: str, port: int) -> None:
    """Atomically write the bound port: a reader polling for the file
    must never observe a torn entry."""
    tmp = Path(f"{port_file}.tmp{os.getpid()}")
    tmp.write_text(str(port))
    os.replace(tmp, port_file)


def _task_tags() -> Tuple[str, ...]:
    """The active request's id as an engine-task tag (or nothing), so
    spans the task produces — wherever it executes — carry the id."""
    rid = current_request_id()
    return (rid,) if rid is not None else ()


@dataclass(frozen=True)
class ServeConfig:
    """Everything that shapes one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral (reported after start)
    port_file: Optional[str] = None    # write the bound port here (the
    #                                    cluster supervisor reads it to
    #                                    learn a subprocess's ephemeral
    #                                    port)
    workers: Optional[int] = None      # None = $REPRO_WORKERS or 1
    cache_dir: Optional[str] = None    # None = $REPRO_CACHE_DIR or off
    window_ms: float = 2.0
    max_batch: int = 64
    max_inflight: int = 32
    rate_per_s: Optional[float] = None   # None = no rate limit
    burst: int = 16
    default_deadline_ms: int = 30_000
    drain_timeout_s: float = 5.0
    breaker_threshold: int = 5         # consecutive failures to trip
    breaker_reset_s: float = 10.0      # open -> half-open probe delay
    max_pool_restarts: int = 2         # engine pool rebuilds per batch
    calibration_instructions: int = 384
    warm_fast_path: bool = False
    access_log: Optional[str] = None     # JSON-lines path; None = off
    slo_window_s: float = 60.0
    slo_target_p99_ms: float = 2000.0
    slo_target_error_rate: float = 0.05


class ReproServer:
    """One service instance; create, ``await start()``, ``await stop()``."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config if config is not None else ServeConfig()
        self.engine: Optional[Engine] = None
        self.batcher: Optional[MicroBatcher] = None
        self.admission: Optional[AdmissionController] = None
        self.fastpath: Optional[ProxyFastPath] = None
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.port: Optional[int] = None
        self.slo = SloTracker(
            window_s=self.config.slo_window_s,
            target_p99_s=self.config.slo_target_p99_ms / 1000.0,
            target_error_rate=self.config.slo_target_error_rate)
        self._access_log = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._conn_tasks: set = set()
        self._configs: Dict[str, object] = {}
        self._traces: Dict[Tuple[str, int], object] = {}
        self._trace_lock = threading.Lock()
        self._handlers = {
            protocol.SimulateRequest.ROUTE: self._handle_simulate,
            protocol.CompareRequest.ROUTE: self._handle_compare,
            protocol.EstimateRequest.ROUTE: self._handle_estimate,
            protocol.InjectRequest.ROUTE: self._handle_inject,
        }

    # ---- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        from ..core import power9_config, power10_config
        cfg = self.config
        self._configs = {"power9": power9_config(),
                         "power10": power10_config()}
        self.engine = Engine(workers=cfg.workers, cache=cfg.cache_dir,
                             max_restarts=cfg.max_pool_restarts)
        self.batcher = MicroBatcher(self.engine,
                                    window_s=cfg.window_ms / 1000.0,
                                    max_batch=cfg.max_batch)
        bucket = (TokenBucket(cfg.rate_per_s, cfg.burst)
                  if cfg.rate_per_s is not None else None)
        self.admission = AdmissionController(
            max_inflight=cfg.max_inflight, bucket=bucket)
        # one breaker per engine-backed route (/v1/estimate never
        # touches the engine, so it needs none)
        self.breakers = {
            route: CircuitBreaker(
                route, failure_threshold=cfg.breaker_threshold,
                reset_s=cfg.breaker_reset_s)
            for route in (protocol.SimulateRequest.ROUTE,
                          protocol.CompareRequest.ROUTE,
                          protocol.InjectRequest.ROUTE)}
        self.fastpath = ProxyFastPath(
            calibration_instructions=cfg.calibration_instructions)
        if cfg.warm_fast_path:
            await asyncio.to_thread(self.fastpath.warm)
        self._access_log = open_access_log(cfg.access_log)
        await self.batcher.start()
        # when the concurrency sanitizer is active, route loop-level
        # failures (never-retrieved futures, destroyed pending tasks)
        # through its classifier (lazy import: lint is optional here)
        from ..lint.sanitizer import get_sanitizer
        sanitizer = get_sanitizer()
        if sanitizer is not None:
            asyncio.get_running_loop().set_exception_handler(
                sanitizer.loop_exception_handler)
        self._server = await asyncio.start_server(
            self._handle_conn, cfg.host, cfg.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if cfg.port_file:
            await asyncio.to_thread(_publish_port, cfg.port_file,
                                    self.port)

    async def stop(self) -> bool:
        """Graceful drain; returns True when everything finished in
        budget (False = remaining work was answered with errors)."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        clean = True
        if self.batcher is not None:
            clean = await self.batcher.drain(self.config.drain_timeout_s)
        # let connection handlers flush their (possibly error) responses
        tasks = [t for t in self._conn_tasks if not t.done()]
        if tasks:
            await asyncio.wait(tasks, timeout=2.0)
            for task in tasks:
                if not task.done():
                    task.cancel()
        if self.engine is not None:
            self.engine.close(wait=clean)
        if self._access_log is not None:
            self._access_log.close()
        return clean

    async def abort(self) -> None:
        """Abrupt death (failover drills, ``ServerHandle.kill``): close
        the listener and cancel in-flight connections without flushing
        responses.  Clients see transport errors — never torn bodies —
        which is exactly what a router's shard-failover path must
        handle; a graceful drain would instead answer everything with
        well-formed ``shutting_down`` errors.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = [t for t in self._conn_tasks if not t.done()]
        for task in pending:
            task.cancel()
        if pending:
            done, _ = await asyncio.wait(pending, timeout=2.0)
            for task in done:
                # retrieve expected abort-path errors so the event
                # loop never logs "exception was never retrieved"
                if not task.cancelled():
                    task.exception()
        if self.batcher is not None:
            # zero budget: settle leftover futures immediately so no
            # waiter (there should be none — their conns are dead)
            # hangs on an abandoned batch
            await self.batcher.drain(0.0)
        if self.engine is not None:
            self.engine.close(wait=False)
        if self._access_log is not None:
            self._access_log.close()

    # ---- shared helpers ----------------------------------------------

    def _build_trace(self, workload: str, instructions: int):
        """Resolve-and-memoize a workload trace (bounded in-memory)."""
        from ..workloads.resolve import resolve_workload
        key = (workload, instructions)
        with self._trace_lock:
            trace = self._traces.get(key)
            if trace is None:
                if len(self._traces) >= 128:
                    self._traces.clear()
                trace = resolve_workload(workload, instructions)
                self._traces[key] = trace
        return trace

    def _deadline_s(self, deadline_ms: Optional[int]) -> float:
        return (deadline_ms if deadline_ms is not None
                else self.config.default_deadline_ms) / 1000.0

    async def _proxy_answer(self, generation: str, workload: str,
                            instructions: int, *, degraded: bool,
                            reason: str = "") -> Dict[str, object]:
        est = await asyncio.to_thread(
            self.fastpath.estimate, generation, workload, instructions)
        body = protocol.ok_body(est, degraded=degraded, source="proxy")
        if reason:
            body["shed_reason"] = reason
        return body

    @staticmethod
    def _reject(decision) -> Tuple[int, Dict, Dict[str, str]]:
        exc = OverloadError(
            f"server overloaded ({decision.reason}); retry after "
            f"{decision.retry_after_s:.1f}s")
        retry = str(max(1, int(round(decision.retry_after_s))))
        return 503, protocol.error_body(exc), {"Retry-After": retry}

    def _measure(self, generation: str, payload: Dict) -> Dict[str, object]:
        """Decode an engine sim payload into response fields; power is
        recomputed here from exact activity, like every engine caller."""
        from ..core.simulator import measurement_from_result
        result = sim_result_from_json(payload)
        m = measurement_from_result(self._configs[generation], result)
        return {"config": generation,
                "workload": result.metadata.get("trace", ""),
                "instructions": result.instructions,
                "cycles": result.cycles,
                "ipc": m.ipc,
                "power_w": m.power_w,
                "flops_per_cycle": m.flops_per_cycle}

    # ---- route handlers ----------------------------------------------

    async def _handle_simulate(self, req: protocol.SimulateRequest):
        breaker = self.breakers[protocol.SimulateRequest.ROUTE]
        if not breaker.allow():
            body = await self._proxy_answer(
                req.config, req.workload, req.instructions,
                degraded=True, reason="breaker")
            return 200, body, {}
        decision = self.admission.decide(degradable=True)
        if not decision.admitted:
            body = await self._proxy_answer(
                req.config, req.workload, req.instructions,
                degraded=True, reason=decision.reason)
            return 200, body, {}
        try:
            deadline_s = self._deadline_s(req.deadline_ms)
            trace = await asyncio.to_thread(
                self._build_trace, req.workload, req.instructions)
            task = sim_task(self._configs[req.config], trace,
                            warmup_fraction=req.warmup_fraction,
                            tags=_task_tags())
            try:
                payload = await asyncio.wait_for(
                    self.batcher.submit(task, deadline_s=deadline_s),
                    timeout=deadline_s)
            except (asyncio.TimeoutError, DeadlineError):
                breaker.record_failure()
                body = await self._proxy_answer(
                    req.config, req.workload, req.instructions,
                    degraded=True, reason="deadline")
                return 200, body, {}
            except DrainingError:
                raise                   # shutdown, not engine health
            except ReproError:
                breaker.record_failure()
                raise
            fields = self._measure(req.config, payload)
            fields["workload"] = req.workload
            breaker.record_success()
            return 200, protocol.ok_body(fields), {}
        finally:
            self.admission.release()

    async def _handle_compare(self, req: protocol.CompareRequest):
        breaker = self.breakers[protocol.CompareRequest.ROUTE]
        if not breaker.allow():
            body = await self._degraded_compare(req, "breaker")
            return 200, body, {}
        decision = self.admission.decide(degradable=True)
        if not decision.admitted:
            body = await self._degraded_compare(req, decision.reason)
            return 200, body, {}
        try:
            deadline_s = self._deadline_s(req.deadline_ms)
            traces = [await asyncio.to_thread(self._build_trace, w,
                                              req.instructions)
                      for w in req.workloads]
            generations = ("power9", "power10")
            tasks = [sim_task(self._configs[g], t, tags=_task_tags())
                     for g in generations for t in traces]
            try:
                payloads = await asyncio.wait_for(
                    asyncio.gather(*[
                        self.batcher.submit(t, deadline_s=deadline_s)
                        for t in tasks]),
                    timeout=deadline_s)
            except (asyncio.TimeoutError, DeadlineError):
                breaker.record_failure()
                body = await self._degraded_compare(req, "deadline")
                return 200, body, {}
            except DrainingError:
                raise
            except ReproError:
                breaker.record_failure()
                raise
            n = len(traces)
            rows = []
            perf = power = wsum = 0.0
            for i, trace in enumerate(traces):
                m9 = self._measure("power9", payloads[i])
                m10 = self._measure("power10", payloads[n + i])
                weight = float(getattr(trace, "weight", 1.0))
                wsum += weight
                perf += weight * m10["ipc"] / m9["ipc"]
                power += weight * m10["power_w"] / m9["power_w"]
                rows.append({
                    "workload": req.workloads[i], "weight": weight,
                    "p9_ipc": m9["ipc"], "p10_ipc": m10["ipc"],
                    "p9_power_w": m9["power_w"],
                    "p10_power_w": m10["power_w"],
                    "perf_ratio": m10["ipc"] / m9["ipc"],
                    "power_ratio": m10["power_w"] / m9["power_w"]})
            result = {"workloads": rows,
                      "aggregate": {
                          "perf_ratio": perf / wsum,
                          "power_ratio": power / wsum,
                          "perf_per_watt_ratio": perf / power}}
            breaker.record_success()
            return 200, protocol.ok_body(result), {}
        finally:
            self.admission.release()

    async def _degraded_compare(self, req: protocol.CompareRequest,
                                reason: str) -> Dict[str, object]:
        rows = []
        perf = power = wsum = 0.0
        for name in req.workloads:
            e9 = await asyncio.to_thread(
                self.fastpath.estimate, "power9", name,
                req.instructions)
            e10 = await asyncio.to_thread(
                self.fastpath.estimate, "power10", name,
                req.instructions)
            wsum += 1.0
            perf += e10["ipc"] / e9["ipc"]
            power += e10["power_w"] / e9["power_w"]
            rows.append({
                "workload": name, "weight": 1.0,
                "p9_ipc": e9["ipc"], "p10_ipc": e10["ipc"],
                "p9_power_w": e9["power_w"],
                "p10_power_w": e10["power_w"],
                "perf_ratio": e10["ipc"] / e9["ipc"],
                "power_ratio": e10["power_w"] / e9["power_w"]})
        result = {"workloads": rows,
                  "aggregate": {
                      "perf_ratio": perf / wsum,
                      "power_ratio": power / wsum,
                      "perf_per_watt_ratio": perf / power}}
        body = protocol.ok_body(result, degraded=True, source="proxy")
        body["shed_reason"] = reason
        return body

    async def _handle_estimate(self, req: protocol.EstimateRequest):
        # the explicit fast path: never batched, never sheds further
        body = await self._proxy_answer(req.config, req.workload,
                                        req.instructions, degraded=False)
        return 200, body, {}

    async def _handle_inject(self, req: protocol.InjectRequest):
        from ..resilience.campaign import CampaignConfig
        breaker = self.breakers[protocol.InjectRequest.ROUTE]
        if not breaker.allow():
            # no proxy equivalent exists: reject with the breaker's
            # own retry hint instead of feeding a sick engine
            exc = OverloadError(
                f"circuit breaker open for {req.ROUTE}; retry after "
                f"{breaker.retry_after_s():.1f}s")
            retry = str(max(1, int(round(breaker.retry_after_s()))))
            return 503, protocol.error_body(exc), {"Retry-After": retry}
        decision = self.admission.decide(degradable=False)
        if not decision.admitted:
            return self._reject(decision)
        try:
            deadline_s = self._deadline_s(req.deadline_ms)
            cconfig = CampaignConfig(
                seed=req.seed, runs=1, workload=req.workload,
                instructions=req.instructions,
                faults_per_run=req.faults, generation=req.config)
            task = campaign_task(cconfig, 0, tags=_task_tags())
            try:
                payload = await asyncio.wait_for(
                    self.batcher.submit(task, deadline_s=deadline_s),
                    timeout=deadline_s)
            except (asyncio.TimeoutError, DeadlineError):
                breaker.record_failure()
                raise DeadlineError(
                    "fault-injection run missed its deadline (no "
                    "proxy fast path exists for /v1/inject)") from None
            except DrainingError:
                raise
            except ReproError:
                breaker.record_failure()
                raise
            breaker.record_success()
            return 200, protocol.ok_body({"run": payload}), {}
        finally:
            self.admission.release()

    # ---- HTTP plumbing ------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        req_headers: Dict[str, str], body: bytes,
                        ) -> Tuple[int, Dict, Dict[str, str]]:
        registry = get_registry()
        rid = clean_request_id(req_headers.get("x-request-id")) \
            or new_request_id()
        ctx = RequestContext(rid, route=path, method=method)
        token = activate(ctx)
        out_headers: Dict[str, str] = {}
        try:
            with _obs_span("serve.request", "serve", route=path,
                           method=method) as sp:
                try:
                    if path == "/healthz":
                        status, doc = self._healthz(method)
                    elif path == "/metrics":
                        status, doc = self._metrics(method,
                                                    req_headers,
                                                    out_headers)
                    else:
                        cls = protocol.REQUEST_TYPES.get(path)
                        if cls is None:
                            status, doc = 404, {
                                "ok": False,
                                "error": {"code": "not_found",
                                          "type": "ServeError",
                                          "message": f"no route {path}"}}
                        elif method != "POST":
                            raise ServeError(f"use POST for {path}")
                        elif self._draining:
                            raise DrainingError("server is draining")
                        else:
                            data = protocol.decode_json(body)
                            deadline_hdr = req_headers.get(
                                protocol.DEADLINE_HEADER)
                            if deadline_hdr is not None:
                                data = protocol.apply_deadline_header(
                                    cls, data, deadline_hdr)
                            req = cls.from_json(data)
                            status, doc, out_headers = \
                                await self._handlers[path](req)
                except Exception as exc:  # every error -> structured body
                    code, status = protocol.error_status(exc)
                    doc = protocol.error_body(exc)
                    if status == 503 \
                            and "Retry-After" not in out_headers:
                        out_headers["Retry-After"] = "1"
                sp.set(status=status)
        finally:
            deactivate(token)
        end_ns = time.perf_counter_ns()
        self._observe_request(ctx, path, status, doc, end_ns)
        # correlation lives in the header, never the body: single-flight
        # joiners of one batch entry must still see byte-identical
        # bodies, and v1 response payloads stay bit-identical
        out_headers.setdefault("X-Request-Id", rid)
        return status, doc, out_headers

    def _metrics(self, method: str, req_headers: Dict[str, str],
                 out_headers: Dict[str, str]) -> Tuple[int, object]:
        if method != "GET":
            raise ServeError("use GET for /metrics")
        accept = req_headers.get("accept", "")
        if "text/plain" in accept.lower():
            out_headers["Content-Type"] = _PROMETHEUS_CONTENT_TYPE
            return 200, render_prometheus(get_registry())
        return 200, get_registry().collect()

    def _observe_request(self, ctx: RequestContext, path: str,
                         status: int, doc, end_ns: int) -> None:
        """Post-response bookkeeping: metrics, SLO window, per-request
        trace segments, access-log line."""
        registry = get_registry()
        total_s = max(0, end_ns - ctx.started_ns) / 1e9
        degraded = bool(isinstance(doc, dict) and doc.get("degraded"))
        registry.counter(
            "repro_serve_requests_total",
            "requests served, by route and status").inc(
                route=path, status=status)
        registry.histogram(
            "repro_serve_request_seconds",
            "request handling latency").observe(total_s, route=path)
        segs = ctx.segments_ns(end_ns)
        stage_hist = registry.histogram(
            "repro_serve_request_stage_seconds",
            "per-request latency breakdown, by stage")
        for stage in ("queue", "batch", "exec", "finalize"):
            stage_hist.observe(segs[stage] / 1e9, route=path,
                               stage=stage)
        if path in protocol.REQUEST_TYPES:
            self.slo.observe(total_s, error=status >= 500,
                             degraded=degraded)
        tracer = get_tracer()
        if tracer.enabled:
            for name, seg_start, dur in ctx.segment_spans(end_ns):
                tracer.record_complete(
                    f"serve.{name}", "serve", start_ns=seg_start,
                    dur_ns=dur,
                    args={"request_id": ctx.request_id},
                    track=f"req:{ctx.request_id}", depth=1)
        if self._access_log is not None:
            if status >= 400:
                outcome = "error"
            elif degraded:
                outcome = "degraded"
            else:
                outcome = "ok"
            source = (doc.get("source")
                      if isinstance(doc, dict) else None)
            self._access_log.write({
                "id": ctx.request_id,
                "route": path,
                "method": ctx.method,
                "status": status,
                "ok": status < 400,
                "outcome": outcome,
                "degraded": degraded,
                "source": source,
                "cache_hit": ctx.cache_hit,
                "queue_ms": round(segs["queue"] / 1e6, 3),
                "batch_ms": round(segs["batch"] / 1e6, 3),
                "exec_ms": round(segs["exec"] / 1e6, 3),
                "finalize_ms": round(segs["finalize"] / 1e6, 3),
                "total_ms": round(total_s * 1e3, 3),
            })

    def _healthz(self, method: str) -> Tuple[int, Dict]:
        if method != "GET":
            raise ServeError("use GET for /healthz")
        from .. import __version__
        cache = self.engine.cache if self.engine is not None else None
        return 200, {"status": "draining" if self._draining else "ok",
                     "version": __version__,
                     "workers": self.engine.workers,
                     "inflight": self.batcher.inflight,
                     "admitted": self.admission.inflight,
                     "breakers": {route: b.state
                                  for route, b in self.breakers.items()},
                     "cache": (cache.stats() if cache is not None
                               else None),
                     "slo": self.slo.snapshot()}

    async def _handle_conn(self, reader, writer) -> None:
        # wire parsing/rendering lives in serve.http (shared with the
        # cluster router's proxy path)
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ServeError as exc:
                    await write_response(
                        writer, 400, protocol.error_body(exc), {},
                        keep_alive=False)
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                method, path, headers, body = request
                if path in protocol.REQUEST_TYPES \
                        and os.environ.get("REPRO_CHAOS_DIR"):
                    # resilience.chaos.ENV_CHAOS_DIR; gating on API
                    # routes keeps health/metrics scrapes from
                    # consuming a conn_drop token
                    from ..resilience.chaos import chaos_point
                    if chaos_point("conn") is not None:
                        break           # abrupt drop: no response
                status, doc, extra = await self._dispatch(
                    method, path, headers, body)
                keep = (headers.get("connection", "").lower() != "close"
                        and not self._draining)
                await write_response(writer, status, doc, extra,
                                     keep_alive=keep)
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # drain cancelled an idle keep-alive connection; suppress so
            # the stream protocol's done-callback doesn't log the stack
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                # a cancelled task re-raises at any await; the socket
                # is closed either way
                pass


# ---- entry points --------------------------------------------------------

async def _serve_main(config: ServeConfig) -> None:
    server = ReproServer(config)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    print(f"repro serve listening on http://{config.host}:{server.port} "
          f"(workers={server.engine.workers}, "
          f"cache={'on' if server.engine.cache is not None else 'off'})",
          flush=True)
    await stop.wait()
    print("draining ...", flush=True)
    clean = await server.stop()
    label = ("clean" if clean else
             "forced (in-flight work answered with shutting_down errors)")
    print(f"shutdown {label}", flush=True)


def run_server(config: ServeConfig) -> int:
    """Blocking entry point behind ``repro serve``."""
    try:
        asyncio.run(_serve_main(config))
    except KeyboardInterrupt:
        pass
    return 0


class ServerHandle:
    """A server running on its own thread (tests, ``--self-serve``).

    The handle owns its whole lifecycle: :meth:`start` spins up the
    thread and event loop and only ever writes the handle's *own*
    state (the old module-level ``start_in_thread`` stamped private
    attributes onto a foreign handle — the shape R009 now rejects).
    """

    def __init__(self) -> None:
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None
        self.clean: Optional[bool] = None
        self._loop = None
        self._stop_event = None
        self._abort = False
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self, config: ServeConfig, timeout_s: float = 60.0) -> None:
        """Start the server thread; returns once it is listening."""
        started = threading.Event()

        async def _main() -> None:
            server = ReproServer(config)
            try:
                await server.start()
            except BaseException as exc:  # noqa: BLE001 - to caller
                self.error = exc
                started.set()
                return
            self.port = server.port
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            started.set()
            await self._stop_event.wait()
            if self._abort:             # kill(): no drain, no flush
                self.clean = False
                await server.abort()
            else:
                self.clean = await server.stop()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_main()),
            name="repro-serve", daemon=True)
        self._thread.start()
        if not started.wait(timeout=timeout_s):
            raise ServeError(
                f"server did not start within {timeout_s:.0f}s")
        if self.error is not None:
            raise self.error

    def stop(self, timeout_s: float = 30.0) -> bool:
        """Request drain and join the server thread."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass                    # loop already closed
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():
            raise ServeError("server thread did not stop in time")
        return bool(self.clean)

    def kill(self, timeout_s: float = 10.0) -> None:
        """Abrupt death for failover drills: in-flight connections are
        cancelled (clients see transport errors), nothing drains.

        The closest a thread-hosted worker can get to SIGKILL; the
        cluster's worker-down chaos class and kill-a-shard tests use it
        to prove the router re-routes without losing requests.
        """
        self._abort = True
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass                    # loop already closed
        self._thread.join(timeout=timeout_s)
        if self._thread.is_alive():
            raise ServeError("server thread did not die in time")


def start_in_thread(config: Optional[ServeConfig] = None) -> ServerHandle:
    """Start a server on a background thread; returns once it listens."""
    handle = ServerHandle()
    handle.start(config if config is not None else ServeConfig())
    return handle
