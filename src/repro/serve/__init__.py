"""The serving layer: a long-lived JSON-over-HTTP simulation service.

Request flow: :mod:`protocol` (validation + envelopes) →
:mod:`admission` (rate limit / bounded queue / degrade-to-proxy) →
:mod:`batcher` (micro-batching + single-flight) → the PR 4 execution
engine.  :mod:`server` owns the asyncio HTTP front end and lifecycle,
:mod:`client` is the sync client, :mod:`loadgen` the deterministic
open-loop load generator behind ``repro loadgen``.

Since PR 7 this package is *inside* the R003 determinism scope: only
the named functions in ``WALL_CLOCK_ALLOWANCES`` (see
``repro/lint/rules.py``) may touch wall clocks or jitter RNGs, each
with a one-line justification — everything else here must be
deterministic.  The concurrency tier (R007-R011 in
``repro/lint/concurrency.py``) proves the async/multiprocess safety
contracts statically, and the runtime sanitizer (``repro serve
--sanitize`` / ``REPRO_SANITIZE=1``) watches the dynamic residue:
loop blocking, lost futures, and cross-run response divergence.
Determinism lives behind the Engine boundary, and the batcher's
bit-identity guarantee (batched == direct serial runs) is what keeps
the service honest about it.
"""

from .admission import AdmissionController, CircuitBreaker, Decision, \
    ProxyFastPath, TokenBucket
from .batcher import MicroBatcher
from .client import ServeClient, ServeResponse
from .loadgen import LoadgenConfig, build_schedule, run_loadgen, \
    write_report
from .protocol import (CompareRequest, EstimateRequest, InjectRequest,
                       SimulateRequest, error_body, error_status,
                       ok_body)
from .server import (ReproServer, ServeConfig, ServerHandle,
                     run_server, start_in_thread)
from .slo import SloTracker

__all__ = [
    "AdmissionController", "CircuitBreaker", "Decision",
    "ProxyFastPath", "TokenBucket",
    "MicroBatcher",
    "ServeClient", "ServeResponse",
    "LoadgenConfig", "build_schedule", "run_loadgen", "write_report",
    "CompareRequest", "EstimateRequest", "InjectRequest",
    "SimulateRequest", "error_body", "error_status", "ok_body",
    "ReproServer", "ServeConfig", "ServerHandle", "run_server",
    "start_in_thread", "SloTracker",
]
