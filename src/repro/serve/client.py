"""Synchronous client for the simulation service.

Stdlib-only (``http.client``), with retry + capped exponential backoff
+ deterministic jitter.  Retries honor the server's ``Retry-After``
hint when it exceeds the computed backoff, and only fire for
retryable outcomes: connection failures and 503 (overloaded /
shutting_down / cluster_unavailable).  400-class errors and 504
(deadline) are the caller's problem and surface immediately as
:class:`~repro.errors.ServeError` subclasses mapped back from the
structured error body.

The client can target one host (``host``/``port``, the default) or a
base-URL list (``targets=["127.0.0.1:8419", ...]``): each retryable
failure rotates to the next target before the backoff sleep, so a
caller pointed at several workers (or routers) rides out a dead one
with the same retry/backoff/jitter machinery the single-host path
uses.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import (ClusterError, ConfigError, DeadlineError,
                      DrainingError, OverloadError, ReproError,
                      ServeError)

_RETRYABLE_STATUSES = (503,)

# error-body code -> exception type raised client-side
_CODE_TO_ERROR = {
    "shutting_down": DrainingError,
    "overloaded": OverloadError,
    "cluster_unavailable": ClusterError,
    "deadline_exceeded": DeadlineError,
    "bad_request": ConfigError,
    "model_error": ReproError,
    "internal": ServeError,
    "not_found": ServeError,
}


def parse_target(spec: str) -> Tuple[str, int]:
    """``host:port`` (an optional ``http://`` prefix is stripped)."""
    spec = spec.strip()
    if spec.startswith("http://"):
        spec = spec[len("http://"):]
    host, sep, port = spec.rstrip("/").rpartition(":")
    if not sep or not host:
        raise ServeError(f"target {spec!r} must be host:port")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ServeError(f"target {spec!r} has a non-numeric "
                         f"port") from exc


@dataclass(frozen=True)
class ServeResponse:
    """One decoded server response."""

    status: int
    body: Dict[str, object]
    latency_s: float
    attempts: int = 1
    #: the server-confirmed request id (``X-Request-Id`` echo); kept
    #: out of ``body`` so identical requests stay byte-identical
    request_id: Optional[str] = None
    #: which cluster shard answered (``X-Shard`` header, router-added);
    #: None when talking to a single server — header-only like the
    #: request id, so bodies stay byte-identical across topologies
    shard: Optional[str] = None

    @property
    def ok(self) -> bool:
        return bool(self.body.get("ok"))

    @property
    def degraded(self) -> bool:
        return bool(self.body.get("degraded"))

    @property
    def result(self) -> Dict[str, object]:
        return self.body.get("result", {})


@dataclass
class ServeClient:
    """Talks to one server (or a target list); safe to share across
    threads (each request opens its own connection — the load
    generator depends on that)."""

    host: str = "127.0.0.1"
    port: int = 8419
    timeout_s: float = 60.0
    retries: int = 2
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 2.0
    jitter_seed: Optional[int] = None
    #: a caller-owned RNG for retry jitter; wins over ``jitter_seed``
    #: so a chaos campaign or load generator can thread one seeded
    #: stream through every client it builds
    rng: Optional[random.Random] = None
    #: base-URL list (``"host:port"`` / ``"http://host:port"``); when
    #: given it wins over ``host``/``port`` and retryable failures
    #: rotate through it round-robin
    targets: Optional[Sequence[str]] = None
    _rng: random.Random = field(init=False, repr=False)
    _targets: List[Tuple[str, int]] = field(init=False, repr=False)
    _target_idx: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ServeError(f"retries must be >= 0, got {self.retries}")
        self._rng = (self.rng if self.rng is not None
                     else random.Random(self.jitter_seed))
        if self.targets:
            self._targets = [parse_target(t) for t in self.targets]
        else:
            self._targets = [(self.host, self.port)]

    @property
    def target(self) -> Tuple[str, int]:
        """The host/port the next request will try first."""
        return self._targets[self._target_idx]

    def _rotate_target(self) -> None:
        if len(self._targets) > 1:
            self._target_idx = (self._target_idx + 1) \
                % len(self._targets)

    # ---- transport ---------------------------------------------------

    def _once(self, method: str, path: str, payload: Optional[Dict],
              request_id: Optional[str] = None,
              deadline_ms: Optional[int] = None) -> ServeResponse:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else b"")
        headers = {"Content-Type": "application/json",
                   "Connection": "close"}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        host, port = self.target
        conn = http.client.HTTPConnection(
            host, port, timeout=self.timeout_s)
        started = time.monotonic()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
            rid_echo = response.getheader("X-Request-Id")
            shard = response.getheader("X-Shard")
            ctype = response.getheader("Content-Type") or ""
        finally:
            conn.close()
        latency = time.monotonic() - started
        if ctype.startswith("text/plain"):
            # Prometheus exposition: wrap the text so callers get a
            # uniform ServeResponse
            doc: Dict[str, object] = {"text": raw.decode("utf-8")}
        else:
            try:
                doc = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError(
                    f"malformed response body (status {status}): "
                    f"{raw[:120]!r}") from exc
        if retry_after is not None:
            doc = dict(doc)
            doc["_retry_after_s"] = float(retry_after)
        return ServeResponse(status=status, body=doc, latency_s=latency,
                             request_id=rid_echo, shard=shard)

    def _backoff_s(self, attempt: int, hint: Optional[float]) -> float:
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** attempt))
        delay = base * (0.5 + self._rng.random())   # 0.5x..1.5x jitter
        if hint is not None:
            delay = max(delay, hint)
        return delay

    def request(self, path: str, payload: Optional[Dict] = None, *,
                method: str = "POST",
                request_id: Optional[str] = None,
                deadline_ms: Optional[int] = None) -> ServeResponse:
        """One logical request, with retries on 503/connection errors.

        ``request_id`` is sent as ``X-Request-Id`` so client-side logs
        correlate with the server's trace and access log; every retry
        reuses the same id (it names the logical request).
        ``deadline_ms`` travels as ``X-Deadline-Ms``; the server folds
        it into routes that accept a deadline when the body carries
        none (the body field wins).

        With a multi-target client every retryable failure (transport
        error, torn response, or 503) rotates to the next target, so
        the retry budget doubles as per-host failover.
        """
        last_exc: Optional[Exception] = None
        last_resp: Optional[ServeResponse] = None
        for attempt in range(self.retries + 1):
            hint = None
            try:
                resp = self._once(method, path, payload, request_id,
                                  deadline_ms)
            except (ConnectionError, socket.timeout,
                    http.client.HTTPException, OSError) as exc:
                last_exc, last_resp = exc, None
                self._rotate_target()
            else:
                if resp.status not in _RETRYABLE_STATUSES:
                    return ServeResponse(resp.status, resp.body,
                                         resp.latency_s,
                                         attempts=attempt + 1,
                                         request_id=resp.request_id,
                                         shard=resp.shard)
                last_exc, last_resp = None, resp
                hint = resp.body.get("_retry_after_s")
                self._rotate_target()
            if attempt < self.retries:
                time.sleep(self._backoff_s(attempt, hint))
        if last_resp is not None:
            return ServeResponse(last_resp.status, last_resp.body,
                                 last_resp.latency_s,
                                 attempts=self.retries + 1,
                                 request_id=last_resp.request_id,
                                 shard=last_resp.shard)
        raise ServeError(
            f"request to {path} failed after {self.retries + 1} "
            f"attempts across {len(self._targets)} target(s): "
            f"{last_exc}") from last_exc

    @staticmethod
    def raise_for_body(resp: ServeResponse) -> ServeResponse:
        """Map a structured error body to the client-side exception."""
        if resp.ok:
            return resp
        err = resp.body.get("error", {})
        cls = _CODE_TO_ERROR.get(str(err.get("code")), ServeError)
        raise cls(f"server error [{err.get('code')}]: "
                  f"{err.get('message')}")

    # ---- typed helpers -----------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self.request("/healthz", method="GET").body

    def metrics(self) -> Dict[str, object]:
        return self.request("/metrics", method="GET").body

    def simulate(self, **fields) -> ServeResponse:
        return self.raise_for_body(
            self.request("/v1/simulate", fields))

    def compare(self, workloads: Sequence[str], **fields) -> ServeResponse:
        payload = dict(fields)
        payload["workloads"] = list(workloads)
        return self.raise_for_body(
            self.request("/v1/compare", payload))

    def estimate(self, **fields) -> ServeResponse:
        return self.raise_for_body(
            self.request("/v1/estimate", fields))

    def inject(self, **fields) -> ServeResponse:
        return self.raise_for_body(
            self.request("/v1/inject", fields))
