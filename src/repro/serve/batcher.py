"""Micro-batching with single-flight dedupe over the execution engine.

Requests that arrive within one batching window are coalesced into a
single :class:`~repro.exec.executor.ExecPlan`, so the engine's in-plan
dedupe plus the content-addressed cache make N identical concurrent
requests cost exactly one simulation.  A request whose key is already
executing joins the in-flight future instead of resubmitting
(single-flight), whatever window it arrives in — the service-layer
analog of the paper's "never measure the same thing twice" methodology
(§III-C motivates APEX the same way).

Batched results are bit-identical to direct serial Engine runs: the
batcher only *groups* tasks, and every task is a pure function of its
payload (test-guarded in ``tests/test_serve.py``).

One engine batch runs at a time, on a dedicated single worker thread;
``drain()`` resolves whatever cannot finish in time with
:class:`~repro.errors.DrainingError` so shutdown produces well-formed
errors instead of hangs.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import os
import time
from dataclasses import replace
from typing import Dict, List, Optional

from ..errors import DrainingError, ServeError
from ..exec.executor import Engine, ExecPlan, ExecTask
from ..obs.context import current_request
from ..obs.metrics import get_registry


#: the one attribute :func:`detach_future` stamps on a waiter future
_DETACH_ATTR = "_repro_meta"


def detach_future(fut: "asyncio.Future", batch_start_ns: int,
                  source: Optional[str] = None) -> None:
    """Stamp batch metadata on a future the batcher is about to settle.

    This is the *single* sanctioned place where serve code writes a
    private attribute on a future it did not create: the batch runner
    hands ``(batch_start_ns, source)`` to every waiter (including
    single-flight joiners) so their request contexts can split
    queue-wait from service time.  R009 allowlists exactly this
    helper by name — ad-hoc ``fut._repro_meta = ...`` stamps anywhere
    else are lint errors.
    """
    fut._repro_meta = (batch_start_ns, source)


def future_meta(fut: "asyncio.Future"):
    """The ``(batch_start_ns, source)`` stamp, or ``(None, None)``."""
    return getattr(fut, _DETACH_ATTR, (None, None))


def _mark_retrieved(fut: "asyncio.Future") -> None:
    # A waiter that timed out (deadline) abandons its shielded future;
    # touching the exception here keeps asyncio from logging
    # "exception was never retrieved" for a result nobody consumed.
    if not fut.cancelled():
        fut.exception()


class MicroBatcher:
    """Coalesces concurrent requests into single engine plans."""

    def __init__(self, engine: Engine, *, window_s: float = 0.002,
                 max_batch: int = 64):
        if window_s < 0:
            raise ServeError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.window_s = window_s
        self.max_batch = max_batch
        self._pending: List[ExecTask] = []
        self._inflight: Dict[str, asyncio.Future] = {}
        # key -> loosest deadline budget among its waiters (None =
        # some waiter is unbounded); stamped onto tasks at batch time
        self._deadlines: Dict[str, Optional[float]] = {}
        self._wakeup: Optional[asyncio.Event] = None
        self._runner: Optional[asyncio.Task] = None
        self._thread: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._closed = False

    @property
    def inflight(self) -> int:
        """Distinct keys currently queued or executing."""
        return len(self._inflight)

    async def start(self) -> None:
        if self._runner is not None:
            raise ServeError("batcher already started")
        self._wakeup = asyncio.Event()
        self._thread = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch")
        self._runner = asyncio.get_running_loop().create_task(
            self._run_loop())

    async def submit(self, task: ExecTask, *,
                     deadline_s: Optional[float] = None,
                     ) -> Dict[str, object]:
        """Enqueue one task; resolves with its JSON result payload.

        Identical keys share one future (and one engine task): the
        caller that arrives first enqueues, everyone else joins.

        ``deadline_s`` is this waiter's execution budget.  Joiners
        merge budgets loosest-wins (an unbounded waiter makes the
        shared task unbounded): the deadline must never change *what*
        is computed, only how long the engine may spend on it, and the
        most patient waiter still wants the full-fidelity answer.
        """
        if self._closed or self._runner is None:
            raise DrainingError(
                "server is draining; no new work accepted")
        fut = self._inflight.get(task.key)
        if fut is None:
            fut = asyncio.get_running_loop().create_future()
            fut.add_done_callback(_mark_retrieved)
            self._inflight[task.key] = fut
            self._deadlines[task.key] = deadline_s
            self._pending.append(task)
            self._wakeup.set()
        else:
            if task.key in self._deadlines:
                prev = self._deadlines[task.key]
                self._deadlines[task.key] = (
                    None if prev is None or deadline_s is None
                    else max(prev, deadline_s))
            get_registry().counter(
                "repro_serve_singleflight_joins_total",
                "requests served by joining an identical in-flight "
                "computation").inc(kind=task.kind)
        submit_ns = time.perf_counter_ns()
        try:
            # shield: one waiter hitting its deadline must not cancel
            # the computation other waiters (or the cache) still want
            return await asyncio.shield(fut)
        finally:
            ctx = current_request()
            if ctx is not None:
                # _run_batch stamps (batch_start_ns, source) via
                # detach_future before it settles; joiners read the
                # same stamp
                batch_start_ns, source = future_meta(fut)
                ctx.note_result(submit_ns, batch_start_ns,
                                time.perf_counter_ns(), source)

    async def _run_loop(self) -> None:
        while True:
            await self._wakeup.wait()
            if self.window_s:
                await asyncio.sleep(self.window_s)   # collect the window
            batch = self._pending[:self.max_batch]
            del self._pending[:len(batch)]
            if not self._pending:
                self._wakeup.clear()
            if batch:
                await self._run_batch(batch)

    async def _run_batch(self, batch: List[ExecTask]) -> None:
        registry = get_registry()
        registry.counter(
            "repro_serve_batches_total",
            "engine batches executed by the micro-batcher").inc()
        registry.histogram(
            "repro_serve_batch_size",
            "tasks per micro-batch (after single-flight dedupe)",
            ).observe(float(len(batch)))
        loop = asyncio.get_running_loop()
        batch_start_ns = time.perf_counter_ns()
        sources: Dict[str, str] = {}
        # stamp each task with the loosest budget its waiters merged
        # (joiners may have loosened it since the task was enqueued)
        batch = [replace(task,
                         deadline_s=self._deadlines.pop(task.key,
                                                        task.deadline_s))
                 for task in batch]
        try:
            results = await loop.run_in_executor(
                self._thread,
                functools.partial(self._engine_call,
                                  ExecPlan(list(batch)), sources))
        except asyncio.CancelledError:
            # drain cancelled the runner mid-batch: leave the waiter
            # futures pending — drain() settles them with DrainingError
            # (absorbing the cancellation here would leak it into every
            # waiter and leave this task alive)
            raise
        except BaseException as exc:   # noqa: BLE001 - routed to waiters
            # the engine fails a plan atomically (deterministic
            # min-index propagation), so every waiter of this batch
            # sees the same error
            for task in batch:
                fut = self._inflight.pop(task.key, None)
                if fut is not None and not fut.done():
                    detach_future(fut, batch_start_ns)
                    fut.set_exception(exc)
        else:
            for task, result in zip(batch, results):
                fut = self._inflight.pop(task.key, None)
                if fut is not None and not fut.done():
                    detach_future(fut, batch_start_ns,
                                  sources.get(task.key))
                    fut.set_result(result)

    def _engine_call(self, plan: ExecPlan, sources: Dict[str, str],
                     ) -> List[Dict[str, object]]:
        """The engine call, on the batch thread (sync) — also the
        service-chaos slow-batch injection point, which must sleep on
        this thread, never the event loop."""
        if os.environ.get("REPRO_CHAOS_DIR"):  # resilience.chaos.ENV_CHAOS_DIR
            from ..resilience.chaos import chaos_point
            chaos_point("batch")
        return self.engine.run(plan, sources)

    async def drain(self, timeout_s: float = 5.0) -> bool:
        """Stop accepting work and settle every in-flight future.

        Waits up to ``timeout_s`` for running work to finish; whatever
        remains is resolved with :class:`DrainingError` (well-formed
        errors, never hangs).  Returns True when everything completed
        within the budget.
        """
        self._closed = True
        waiting = [f for f in self._inflight.values() if not f.done()]
        clean = True
        if waiting:
            done, still_pending = await asyncio.wait(
                waiting, timeout=timeout_s)
            clean = not still_pending
        if self._runner is not None:
            self._runner.cancel()
            try:
                await self._runner
            except asyncio.CancelledError:
                pass
            self._runner = None
        for fut in self._inflight.values():
            if not fut.done():
                fut.set_exception(DrainingError(
                    "server shut down before this request completed"))
        self._inflight.clear()
        self._pending.clear()
        self._deadlines.clear()
        if self._thread is not None:
            # an abandoned batch keeps its thread until the engine call
            # returns; wait only when nothing was abandoned
            self._thread.shutdown(wait=clean)
            self._thread = None
        return clean
