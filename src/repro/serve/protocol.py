"""Wire protocol for the simulation service (``repro serve``).

Every request body is a JSON object decoded into a frozen dataclass;
validation happens here, through the :mod:`repro.errors` taxonomy, so a
bad payload fails *before* it reaches the batcher and maps to a
structured error body with a stable machine-readable code::

    {"ok": false,
     "error": {"code": "bad_request",
               "type": "ConfigError",
               "message": "unknown workload 'xs' (choices: ...)"}}

Successful responses share one envelope::

    {"ok": true, "degraded": false, "source": "engine", "result": {...}}

``source`` is ``"engine"`` for full-fidelity answers and ``"proxy"``
for power-proxy fast-path answers; ``degraded`` is true only when the
server substituted the proxy for a request that *asked* for the engine
(load shedding or a missed deadline), mirroring the paper's
proxy-instead-of-measurement philosophy.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Tuple, Type

from ..errors import (ClusterError, ConfigError, DeadlineError,
                      DrainingError, OverloadError, ReproError,
                      ResilienceError, ServeError, TraceError)

GENERATIONS = ("power9", "power10")

# Per-request ceilings: the service is interactive, so one request may
# not monopolize the engine the way a batch CLI invocation legitimately
# can.
MAX_INSTRUCTIONS = 2_000_000
MAX_COMPARE_WORKLOADS = 16
MAX_FAULTS = 64


def decode_json(body: bytes) -> Dict[str, object]:
    """Parse a request body; empty bodies mean ``{}`` (all defaults)."""
    if not body:
        return {}
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigError(f"malformed JSON request body: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigError("request body must be a JSON object")
    return data


def _reject_unknown(data: Dict[str, object], allowed: Tuple[str, ...],
                    route: str) -> None:
    # Unknown keys are typos until proven otherwise: silently ignoring
    # them answers a different question than the caller asked (e.g.
    # {"generation": "power9"} falling back to the default config).
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigError(
            f"unknown field(s) for {route}: {', '.join(unknown)} "
            f"(accepted: {', '.join(allowed)})")


def _field(data: Dict[str, object], key: str, kind, default):
    value = data.get(key, default)
    if value is None:
        return None
    try:
        return kind(value)
    except (TypeError, ValueError) as exc:
        raise ConfigError(
            f"field {key!r} must be {kind.__name__}: {value!r}") from exc


def _check_generation(name: str) -> str:
    if name not in GENERATIONS:
        raise ConfigError(
            f"unknown config {name!r} (choices: {', '.join(GENERATIONS)})")
    return name


def _check_workload(name: str) -> str:
    from ..workloads.resolve import workload_names
    if name not in workload_names():
        choices = ", ".join(workload_names())
        raise ConfigError(f"unknown workload {name!r} (choices: {choices})")
    return name


def _check_instructions(n: int) -> int:
    if not 0 < n <= MAX_INSTRUCTIONS:
        raise ConfigError(
            f"instructions must be in [1, {MAX_INSTRUCTIONS}], got {n}")
    return n


def _check_deadline(ms: Optional[int]) -> Optional[int]:
    if ms is not None and ms <= 0:
        raise ConfigError(f"deadline_ms must be positive, got {ms}")
    return ms


@dataclass(frozen=True)
class SimulateRequest:
    """``POST /v1/simulate`` — one full-fidelity timing-model run."""

    config: str = "power10"
    workload: str = "xz"
    instructions: int = 2000
    warmup_fraction: float = 0.0
    deadline_ms: Optional[int] = None

    ROUTE = "/v1/simulate"

    def __post_init__(self) -> None:
        _check_generation(self.config)
        _check_workload(self.workload)
        _check_instructions(self.instructions)
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigError(
                f"warmup_fraction must be in [0, 1), got "
                f"{self.warmup_fraction}")
        _check_deadline(self.deadline_ms)

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "SimulateRequest":
        _reject_unknown(data, ("config", "workload", "instructions",
                               "warmup_fraction", "deadline_ms"),
                        cls.ROUTE)
        return cls(
            config=_field(data, "config", str, "power10"),
            workload=_field(data, "workload", str, "xz"),
            instructions=_field(data, "instructions", int, 2000),
            warmup_fraction=_field(data, "warmup_fraction", float, 0.0),
            deadline_ms=_field(data, "deadline_ms", int, None))

    def to_json(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class CompareRequest:
    """``POST /v1/compare`` — P9 vs P10 across a workload list."""

    workloads: Tuple[str, ...] = ("daxpy",)
    instructions: int = 2000
    deadline_ms: Optional[int] = None

    ROUTE = "/v1/compare"

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ConfigError("compare needs at least one workload")
        if len(self.workloads) > MAX_COMPARE_WORKLOADS:
            raise ConfigError(
                f"compare accepts at most {MAX_COMPARE_WORKLOADS} "
                f"workloads, got {len(self.workloads)}")
        for name in self.workloads:
            _check_workload(name)
        _check_instructions(self.instructions)
        _check_deadline(self.deadline_ms)

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "CompareRequest":
        _reject_unknown(data, ("workloads", "instructions",
                               "deadline_ms"), cls.ROUTE)
        raw = data.get("workloads", ["daxpy"])
        if isinstance(raw, str) or not isinstance(raw, (list, tuple)):
            raise ConfigError("field 'workloads' must be a list of names")
        return cls(
            workloads=tuple(str(w) for w in raw),
            instructions=_field(data, "instructions", int, 2000),
            deadline_ms=_field(data, "deadline_ms", int, None))

    def to_json(self) -> Dict[str, object]:
        doc = asdict(self)
        doc["workloads"] = list(self.workloads)
        return doc


@dataclass(frozen=True)
class EstimateRequest:
    """``POST /v1/estimate`` — the explicit power-proxy fast path."""

    config: str = "power10"
    workload: str = "xz"
    instructions: int = 2000

    ROUTE = "/v1/estimate"

    def __post_init__(self) -> None:
        _check_generation(self.config)
        _check_workload(self.workload)
        _check_instructions(self.instructions)

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "EstimateRequest":
        _reject_unknown(data, ("config", "workload", "instructions"),
                        cls.ROUTE)
        return cls(
            config=_field(data, "config", str, "power10"),
            workload=_field(data, "workload", str, "xz"),
            instructions=_field(data, "instructions", int, 2000))

    def to_json(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class InjectRequest:
    """``POST /v1/inject`` — one seeded fault-injection run."""

    seed: int = 0
    config: str = "power10"
    workload: str = "xz"
    instructions: int = 2000
    faults: int = 3
    deadline_ms: Optional[int] = None

    ROUTE = "/v1/inject"

    def __post_init__(self) -> None:
        _check_generation(self.config)
        _check_workload(self.workload)
        _check_instructions(self.instructions)
        if not 0 < self.faults <= MAX_FAULTS:
            raise ConfigError(
                f"faults must be in [1, {MAX_FAULTS}], got {self.faults}")
        _check_deadline(self.deadline_ms)

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "InjectRequest":
        _reject_unknown(data, ("seed", "config", "workload",
                               "instructions", "faults", "deadline_ms"),
                        cls.ROUTE)
        return cls(
            seed=_field(data, "seed", int, 0),
            config=_field(data, "config", str, "power10"),
            workload=_field(data, "workload", str, "xz"),
            instructions=_field(data, "instructions", int, 2000),
            faults=_field(data, "faults", int, 3),
            deadline_ms=_field(data, "deadline_ms", int, None))

    def to_json(self) -> Dict[str, object]:
        return asdict(self)


REQUEST_TYPES: Dict[str, Type] = {
    SimulateRequest.ROUTE: SimulateRequest,
    CompareRequest.ROUTE: CompareRequest,
    EstimateRequest.ROUTE: EstimateRequest,
    InjectRequest.ROUTE: InjectRequest,
}

#: header that carries a request deadline when the body has none
DEADLINE_HEADER = "x-deadline-ms"


def apply_deadline_header(cls: Type, data: Dict[str, object],
                          header: str) -> Dict[str, object]:
    """Fold an ``X-Deadline-Ms`` header into a decoded request body.

    An explicit ``deadline_ms`` in the body wins over the header, and
    routes whose request type has no ``deadline_ms`` field (estimate —
    the fast path needs no budget) ignore the header entirely rather
    than reject it, so one client-side default header works across
    every route.
    """
    names = {f.name for f in fields(cls)}
    if "deadline_ms" not in names or "deadline_ms" in data:
        return data
    try:
        ms = int(str(header).strip())
    except ValueError as exc:
        raise ConfigError(
            f"X-Deadline-Ms must be an integer number of "
            f"milliseconds, got {header!r}") from exc
    out = dict(data)
    out["deadline_ms"] = ms
    return out


# ---- response envelopes --------------------------------------------------

def ok_body(result: Dict[str, object], *, degraded: bool = False,
            source: str = "engine") -> Dict[str, object]:
    return {"ok": True, "degraded": degraded, "source": source,
            "result": result}


# Exception -> (stable code, HTTP status).  Order matters: subclasses
# must precede their bases so e.g. DrainingError does not fall through
# to the generic ServeError mapping.
_ERROR_TABLE: Tuple[Tuple[type, str, int], ...] = (
    (DrainingError, "shutting_down", 503),
    (OverloadError, "overloaded", 503),
    (ClusterError, "cluster_unavailable", 503),
    (DeadlineError, "deadline_exceeded", 504),
    (ConfigError, "bad_request", 400),
    (TraceError, "bad_request", 400),
    (ResilienceError, "bad_request", 400),
    (ServeError, "bad_request", 400),
    (ReproError, "model_error", 500),
)


def error_status(exc: BaseException) -> Tuple[str, int]:
    """The stable error code and HTTP status for an exception."""
    for etype, code, status in _ERROR_TABLE:
        if isinstance(exc, etype):
            return code, status
    return "internal", 500


def error_body(exc: BaseException) -> Dict[str, object]:
    code, _status = error_status(exc)
    return {"ok": False,
            "error": {"code": code,
                      "type": type(exc).__name__,
                      "message": str(exc)}}
