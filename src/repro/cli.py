"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compare``  — POWER9 vs POWER10 on the SPECint proxy suite (the
  Table I headline numbers);
* ``gemm``     — the Fig. 5 DGEMM kernel comparison;
* ``ai``       — the Fig. 6 end-to-end AI projections;
* ``depth``    — the Fig. 2 pipeline-depth study;
* ``derating`` — the Fig. 13/14 SERMiner analysis;
* ``wof``      — power-proxy design + WOF boost decisions;
* ``yield``    — PFLY/CLY offering sweep;
* ``trace``    — one fully-telemetered run (spans + interval samples);
* ``inject``   — one seeded fault-injection run with the full
  injection log (see :mod:`repro.resilience`);
* ``campaign`` — a resumable N-run fault-injection campaign with the
  AVF/SERMiner cross-check report;
* ``lint``     — static analysis proving the event/energy/determinism
  contracts (rules R001–R006, see :mod:`repro.lint`);
* ``serve``    — the long-lived JSON-over-HTTP simulation service
  (micro-batching, admission control, power-proxy fast path, request
  tracing, JSON-lines access log, Prometheus ``/metrics``);
* ``loadgen``  — deterministic open-loop load generation against a
  server (or ``--self-serve``); writes ``BENCH_serve.json``;
* ``perfwatch`` — diff ``BENCH_*.json`` artifacts against the
  committed performance baseline; exit 1 on regression;
* ``chaos``    — the seeded service-level chaos campaign: replay one
  loadgen schedule against an in-process server under each service
  fault class (worker kill/stall, cache corruption/permission loss,
  slow batches, connection drops) and write the availability report
  (``BENCH_chaos.json``); exit 1 on any silent data corruption or
  hang.

Every command accepts ``--telemetry-dir DIR``: the run then executes
inside a :class:`repro.obs.export.TelemetrySession` and leaves
``manifest.json``, ``metrics.json``, ``trace.json`` (Chrome/Perfetto
trace) and ``samples.csv`` (cycle-interval telemetry) in DIR.
``compare`` and ``gemm`` also take ``--json`` for machine-readable
results on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _session_sampler(args: argparse.Namespace, config, trace):
    """The session's shared sampler (with the run registered in the
    manifest), or None when telemetry is off."""
    session = getattr(args, "session", None)
    if session is None:
        return None
    session.record_run(config, getattr(trace, "name", "?"))
    return session.sampler


def _compare_results(args: argparse.Namespace, p9, p10, proxies):
    """Per-proxy (r9, r10) SimResults for ``compare``.

    With telemetry on, runs serially in-process so the session sampler
    observes every run.  Otherwise goes through the execution engine:
    ``--workers`` fans out across a process pool and ``--cache-dir``
    replays content-addressed results (bit-identical either way).
    """
    if getattr(args, "session", None) is not None:
        from .core.pipeline import simulate
        out = []
        for trace in proxies:
            r9 = simulate(p9, trace, warmup_fraction=0.3,
                          sampler=_session_sampler(args, p9, trace))
            r10 = simulate(p10, trace, warmup_fraction=0.3,
                           sampler=_session_sampler(args, p10, trace))
            out.append((r9, r10))
        return out
    from .exec.executor import Engine, run_sim_plan, sim_task
    tasks = [sim_task(cfg, trace, warmup_fraction=0.3)
             for trace in proxies for cfg in (p9, p10)]
    with Engine(workers=args.workers, cache=args.cache_dir) as engine:
        results = run_sim_plan(engine, tasks)
    return [(results[2 * i], results[2 * i + 1])
            for i in range(len(proxies))]


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .core import power9_config, power10_config
    from .power import EinspowerModel
    from .workloads import specint_proxies

    proxies = specint_proxies(instructions=args.instructions)
    p9, p10 = power9_config(), power10_config()
    rows = []
    proxies_out = []
    wsum = perf = power = 0.0
    for trace, (r9, r10) in zip(proxies,
                                _compare_results(args, p9, p10, proxies)):
        w9 = EinspowerModel(p9).report(r9.activity).total_w
        w10 = EinspowerModel(p10).report(r10.activity).total_w
        wsum += trace.weight
        perf += trace.weight * r10.ipc / r9.ipc
        power += trace.weight * w10 / w9
        proxies_out.append({
            "proxy": trace.name, "weight": trace.weight,
            "p9_ipc": r9.ipc, "p10_ipc": r10.ipc,
            "p9_power_w": w9, "p10_power_w": w10,
            "perf_ratio": r10.ipc / r9.ipc,
            "power_ratio": w10 / w9})
        if args.verbose:
            rows.append([trace.name, f"{r9.ipc:.2f}", f"{r10.ipc:.2f}",
                         f"{r10.ipc / r9.ipc:.2f}x",
                         f"{w10 / w9:.2f}x"])
    perf /= wsum
    power /= wsum
    if args.json:
        print(json.dumps({
            "command": "compare",
            "instructions": args.instructions,
            "proxies": proxies_out,
            "aggregate": {"perf_ratio": perf, "power_ratio": power,
                          "perf_per_watt_ratio": perf / power},
            "paper": {"perf_ratio": 1.3, "power_ratio": 0.5,
                      "perf_per_watt_ratio": 2.6},
        }, indent=2))
        return 0
    if rows:
        print(format_table("per-proxy results",
                           ["proxy", "P9 IPC", "P10 IPC", "perf",
                            "power"], rows))
    print(f"POWER10 vs POWER9 (weighted over {len(proxies)} proxies): "
          f"{perf:.2f}x perf @ {power:.2f}x power -> "
          f"{perf / power:.2f}x perf/watt (paper: 1.3x @ 0.5x -> 2.6x)")
    return 0


def _cmd_gemm(args: argparse.Namespace) -> int:
    from .core import power9_config, power10_config
    from .core.pipeline import simulate
    from .power import EinspowerModel
    from .workloads import dgemm_mma_trace, dgemm_vsu_trace

    p9, p10 = power9_config(), power10_config()
    runs = [("POWER9 VSU", p9, dgemm_vsu_trace(args.k)),
            ("POWER10 VSU", p10, dgemm_vsu_trace(args.k)),
            ("POWER10 MMA", p10, dgemm_mma_trace(args.k))]
    base = None
    kernels = []
    for name, config, trace in runs:
        result = simulate(config, trace, warmup_fraction=0.25,
                          sampler=_session_sampler(args, config, trace))
        watts = EinspowerModel(config).report(result.activity).total_w
        if base is None:
            base = (result.flops_per_cycle, watts)
        kernels.append({
            "kernel": name,
            "flops_per_cycle": result.flops_per_cycle,
            "flops_ratio": result.flops_per_cycle / base[0],
            "power_w": watts,
            "power_ratio": watts / base[1]})
        if not args.json:
            print(f"{name:12s} {result.flops_per_cycle:6.2f} FLOPs/cyc "
                  f"({result.flops_per_cycle / base[0]:.2f}x)  "
                  f"{watts:.2f} W ({watts / base[1] - 1:+.1%})")
    if args.json:
        print(json.dumps({"command": "gemm", "k": args.k,
                          "kernels": kernels}, indent=2))
    return 0


def _cmd_ai(args: argparse.Namespace) -> int:
    from .workloads.ai import (bert_large_profile, figure6_rows,
                               resnet50_profile, socket_ai_speedup)
    for profile in (resnet50_profile(), bert_large_profile()):
        print(f"{profile.name}:")
        for label, row in figure6_rows(profile).items():
            print(f"  {label:18s} speedup {row['speedup']:.2f}x")
        print(f"  socket FP32 {socket_ai_speedup(profile):.1f}x, "
              f"INT8 {socket_ai_speedup(profile, dtype='int8'):.1f}x")
    return 0


def _cmd_depth(args: argparse.Namespace) -> int:
    from .power import depth_study, optimal_fo4
    curves = depth_study()
    for budget, points in sorted(curves.items()):
        print(f"power budget {budget:.2f}x -> optimal "
              f"{optimal_fo4(points)} FO4")
    return 0


def _cmd_derating(args: argparse.Namespace) -> int:
    from .core import power9_config, power10_config
    from .reliability import compare_generations
    from .workloads import derating_suites, specint_proxies
    suites = derating_suites(smt_levels=(1, 2), instructions=1500)
    suites += specint_proxies(instructions=2500,
                              names=["xz", "x264", "leela"])
    results = compare_generations(power9_config(), power10_config(),
                                  suites, vt_values=(10, 50, 90))
    for name, r in results.items():
        runtime = {vt: round(v, 1)
                   for vt, v in r.runtime_derating_pct.items()}
        print(f"{name}: static {r.static_derating_pct:.1f}%  "
              f"runtime {runtime}")
    return 0


def _cmd_wof(args: argparse.Namespace) -> int:
    from .core import power10_config, simulate_trace
    from .pm import WofDesignPoint, WofGovernor
    from .workloads import max_power_stressmark, specint_proxies
    config = power10_config()
    stressmark = max_power_stressmark(3000)
    stress = simulate_trace(
        config, stressmark,
        sampler=_session_sampler(args, config, stressmark))
    governor = WofGovernor(config, WofDesignPoint(
        tdp_core_w=stress.power_w, rdp_core_w=stress.power_w * 1.1))
    for trace in specint_proxies(instructions=4000,
                                 names=["xz", "exchange2"]):
        run = simulate_trace(
            config, trace,
            sampler=_session_sampler(args, config, trace))
        decision = governor.decide(trace.name, run.power_w,
                                   mma_idle=True)
        print(f"{trace.name:16s} {run.power_w:.2f} W -> "
              f"{decision.boost_ghz:.2f} GHz "
              f"(+{(decision.boost_ratio - 1) * 100:.0f}%)")
    return 0


def _cmd_yield(args: argparse.Namespace) -> int:
    from .pm import (Offering, ProcessVariation, YieldAnalyzer,
                     sample_dies)
    dies = sample_dies(ProcessVariation(), args.dies)
    analyzer = YieldAnalyzer(core_dynamic_w=2.0, core_leakage_w=0.5)
    for freq in (3.6, 3.9, 4.2, 4.5):
        offering = Offering(f"12c@{freq}", frequency_ghz=freq,
                            good_cores=12,
                            socket_power_budget_w=args.budget)
        result = analyzer.evaluate(offering, dies)
        print(f"{offering.name:10s} yield "
              f"{result.yield_fraction * 100:5.1f}%  "
              f"losses {({k: round(v, 3) for k, v in result.limited_by.items()})}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core import power9_config, power10_config, simulate_trace
    from .workloads import resolve_workload

    config = power9_config() if args.config == "power9" \
        else power10_config()
    trace = resolve_workload(args.workload, args.instructions)
    run = simulate_trace(config, trace,
                         sampler=_session_sampler(args, config, trace))
    print(f"{trace.name} on {config.name}: IPC {run.ipc:.2f}, "
          f"{run.power_w:.2f} W, {run.result.cycles} cycles")
    session = getattr(args, "session", None)
    if session is not None:
        print(f"{len(session.sampler.samples)} interval samples "
              f"({session.sampler.interval_cycles}-cycle target)")
    return 0


def _campaign_config(args: argparse.Namespace, runs: int):
    from .resilience import CampaignConfig
    return CampaignConfig(
        seed=args.seed, runs=runs, workload=args.workload,
        instructions=args.instructions,
        faults_per_run=args.faults, generation=args.config,
        interval_cycles=args.interval,
        cycle_budget_factor=args.budget_factor)


def _cmd_inject(args: argparse.Namespace) -> int:
    from .resilience import CampaignRunner

    runner = CampaignRunner(_campaign_config(args, 1))
    record = runner.run_one(0)
    golden = runner.golden()
    if args.json:
        print(json.dumps({"command": "inject",
                          "golden_cycles": golden["cycles"],
                          "run": record.to_json()}, indent=2))
        return 0
    print(f"{args.workload} on {args.config}: golden "
          f"{golden['cycles']} cycles, injected run "
          f"{record.cycles if record.cycles >= 0 else 'fail-stopped'}"
          f" -> {record.outcome} ({record.detail})")
    for inj in record.injections:
        fault = inj["fault"]
        print(f"  {fault['kind']:10s} at={fault['at']:<6d} "
              f"{inj['effect']:20s} {inj['detail']}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .resilience import CampaignRunner, build_report

    runner = CampaignRunner(_campaign_config(args, args.runs),
                            checkpoint=args.checkpoint)
    result = runner.run(workers=args.workers, cache=args.cache_dir)
    report = build_report(result, runner.population,
                          runner.golden()["activity"], vt=args.vt)
    if args.report:
        from pathlib import Path
        Path(args.report).write_text(
            json.dumps(report.to_json(), indent=2, sort_keys=True))
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
        if args.report:
            print(f"report written to {args.report}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience.chaos import (ChaosCampaignConfig,
                                   SERVICE_FAULT_KINDS,
                                   run_chaos_campaign,
                                   write_chaos_report)

    classes = tuple(SERVICE_FAULT_KINDS)
    if args.classes:
        classes = tuple(c.strip() for c in args.classes.split(",")
                        if c.strip())
    if args.quick:
        config = ChaosCampaignConfig.quick(seed=args.seed)
        if args.classes:
            from dataclasses import replace
            config = replace(config, fault_classes=classes)
    else:
        config = ChaosCampaignConfig(
            seed=args.seed, requests=args.requests,
            rate_per_s=args.rate, workers=args.workers,
            deadline_ms=args.deadline_ms, timeout_s=args.timeout,
            fault_classes=classes,
            faults_per_class=args.faults_per_class)
    report = run_chaos_campaign(config)
    if args.out:
        write_chaos_report(report, args.out)
        print(f"report written to {args.out}", file=sys.stderr)
    for phase in report["phases"]:
        counts = phase["counts"]
        print(f"{phase['fault_class']:14s} good {counts['good']:3d}  "
              f"degraded {counts['degraded']:3d}  "
              f"rejected {counts['rejected']:3d}  "
              f"failed {counts['failed']:3d}  "
              f"availability {phase['availability']:.2f}  "
              f"sdc {len(phase['sdc'])}  hangs {phase['hangs']}  "
              f"drain {'clean' if phase['clean_drain'] else 'FORCED'}")
    verdict = "ok" if report["ok"] else "FAIL"
    print(f"chaos campaign seed {report['seed']}: "
          f"{len(report['phases'])} phases, "
          f"sdc {report['sdc_total']}, hangs {report['hangs_total']} "
          f"-> {verdict}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["ok"] else 1


def _severity_arg(text: str):
    """argparse adapter: taxonomy error -> usage error (exit 2)."""
    from .errors import LintUsageError
    from .lint import Severity
    try:
        return Severity.parse(text)
    except LintUsageError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .errors import LintError
    from .lint import (Baseline, DEFAULT_BASELINE_NAME, LintEngine,
                       apply_fixes, render_json, render_text)

    engine = LintEngine()
    threshold = args.min_severity        # parsed by _severity_arg
    source_root = engine.package_root.parent      # parent of repro/

    def run_lint():
        paths = [Path(p) for p in args.paths] if args.paths else None
        return engine.run(paths)

    result = run_lint()

    # --- baseline resolution -------------------------------------------
    baseline = None
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is None and not args.no_baseline:
        for candidate in (Path.cwd() / DEFAULT_BASELINE_NAME,
                          source_root.parent / DEFAULT_BASELINE_NAME):
            if candidate.is_file():
                baseline_path = candidate
                break
    if args.write_baseline:
        target = baseline_path or Path.cwd() / DEFAULT_BASELINE_NAME
        Baseline.from_findings(
            result.findings,
            justification="TODO: justify or fix").save(target)
        print(f"wrote {len(result.findings)} finding(s) to {target}")
        return 0
    if baseline_path is not None and not args.no_baseline:
        if not baseline_path.is_file():
            raise LintError(f"baseline not found: {baseline_path}")
        baseline = Baseline.load(baseline_path)

    # --- safe autofixes ------------------------------------------------
    fix_rules = args.fix_rule or None    # None = DEFAULT_FIX_RULES
    if args.fix or fix_rules:
        fixed = apply_fixes(result.findings, source_root,
                            rules=fix_rules)
        if fixed:
            print(f"fixed {len(fixed)} finding(s) in place",
                  file=sys.stderr)
            result = run_lint()      # re-lint the rewritten tree

    if baseline is not None:
        result.findings, result.baselined = \
            baseline.split(result.findings)

    if args.format == "json":
        print(render_json(result, threshold=threshold))
    else:
        print(render_text(result, verbose=args.verbose))
    return 1 if result.count_at_least(threshold) else 0


def _sanitized_call(fn) -> int:
    """Run ``fn`` under a fresh active sanitizer; exit 1 on reports."""
    from .lint.sanitizer import sanitized

    with sanitized() as sanitizer:
        rc = fn()
    summary = sanitizer.summary()
    reports = summary["reports"]
    print(f"sanitizer: {len(reports)} report(s), "
          f"{summary['suppressed']} suppressed", file=sys.stderr)
    for report in reports[:20]:
        print(f"  [{report['kind']}] {report['detail']}",
              file=sys.stderr)
    return rc if rc != 0 else (1 if reports else 0)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .exec.benchrun import main as bench_main
    from .lint.sanitizer import sanitize_enabled

    argv = list(args.scenarios)
    if args.list:
        argv.append("--list")
    if args.quick:
        argv.append("--quick")
    argv += ["--scale", str(args.scale), "--out", args.out,
             "--tier", args.tier]
    if args.no_sweep:
        argv.append("--no-sweep")
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    if sanitize_enabled(getattr(args, "sanitize", False)):
        return _sanitized_call(lambda: bench_main(argv))
    return bench_main(argv)


def _serve_config(args: argparse.Namespace, *, port: int):
    from .serve import ServeConfig
    access_log = args.access_log
    tdir = getattr(args, "telemetry_dir", None)
    if access_log is None and tdir:
        # telemetry on: the access log is a session artifact by default
        from pathlib import Path
        access_log = str(Path(tdir) / "access.jsonl")
    return ServeConfig(
        host=args.host, port=port,
        port_file=getattr(args, "port_file", None),
        workers=args.workers,
        cache_dir=args.cache_dir, window_ms=args.window_ms,
        max_inflight=args.max_inflight, rate_per_s=args.rate_limit,
        drain_timeout_s=args.drain_timeout,
        warm_fast_path=args.warm,
        access_log=access_log or None,
        slo_target_p99_ms=args.slo_p99_ms)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .lint.sanitizer import sanitize_enabled
    from .serve import run_server

    config = _serve_config(args, port=args.port)
    if sanitize_enabled(getattr(args, "sanitize", False)):
        return _sanitized_call(lambda: run_server(config))
    return run_server(config)


def _cmd_cluster(args: argparse.Namespace) -> int:
    import threading

    from .cluster import Cluster, ClusterConfig

    config = ClusterConfig(
        shards=args.shards, worker_mode=args.worker_mode,
        host=args.host, port=args.port, engine_workers=args.workers,
        cache_dir=args.cache_dir, window_ms=args.window_ms,
        max_inflight=args.max_inflight, rate_per_s=args.rate_limit,
        drain_timeout_s=args.drain_timeout,
        warm_fast_path=args.warm,
        restart_dead=not args.no_restart)
    cluster = Cluster(config)
    cluster.start()
    print(f"cluster: {config.shards} {config.worker_mode} worker(s) "
          f"behind {cluster.url}", file=sys.stderr)
    print(f"cluster: shared cache tier at {cluster.cache_dir}",
          file=sys.stderr)
    try:
        threading.Event().wait()        # until SIGINT
    except KeyboardInterrupt:
        print("cluster: draining", file=sys.stderr)
    finally:
        clean = cluster.stop()
    print(f"cluster: stopped "
          f"({'clean' if clean else 'forced'})", file=sys.stderr)
    return 0 if clean else 1


def _cmd_loadgen_cluster(args: argparse.Namespace) -> int:
    from .cluster import ClusterBenchConfig, run_cluster_bench
    from .serve import write_report

    # untouched single-server defaults scale to the cluster shape
    requests = 240 if args.requests == 50 else args.requests
    rate = 250.0 if args.rate == 25.0 else args.rate
    report = run_cluster_bench(ClusterBenchConfig(
        seed=args.seed, requests=requests, rate_per_s=rate,
        shards=args.shards, engine_workers=args.workers,
        window_ms=args.window_ms, deadline_ms=args.deadline_ms,
        timeout_s=args.timeout, slo_p99_ms=args.slo_p99_ms,
        chaos=not args.no_kill_shard))
    out = args.out
    if out == "BENCH_serve.json":       # the single-server default
        out = "BENCH_cluster.json"
    if out:
        write_report(report, out)
        print(f"report written to {out}", file=sys.stderr)
    lat = report["latency_s"]
    print(f"{report['requests']} requests @ "
          f"{report['offered_rate_per_s']:.0f}/s offered across "
          f"{report['shards']} shard(s) -> "
          f"{report['throughput_per_s']:.1f}/s served; "
          f"availability {report['availability']['rate']:.1%}")
    print(f"latency p50 {lat['p50'] * 1000:.1f} ms, "
          f"p95 {lat['p95'] * 1000:.1f} ms, "
          f"p99 {lat['p99'] * 1000:.1f} ms")
    for shard, entry in sorted(report["per_shard"].items()):
        print(f"  shard {shard}: {entry['count']} requests, "
              f"p99 {entry['latency_s']['p99'] * 1000:.1f} ms")
    cache = report.get("cache") or {}
    dedupe = report.get("dedupe") or {}
    print(f"cache tier: hit rate {cache.get('hit_rate', 0.0):.1%} "
          f"({cache.get('hits', 0)} hits, {cache.get('misses', 0)} "
          f"misses, {cache.get('corrupt', 0)} corrupt); "
          f"dedupe joins {dedupe.get('joins', 0)}, "
          f"failovers {dedupe.get('failovers', 0)}")
    chaos = report.get("chaos")
    if chaos:
        print(f"worker_down phase: availability "
              f"{chaos['availability_rate']:.1%}, "
              f"sdc {len(chaos['sdc'])}, "
              f"faults fired {chaos['faults_fired']}, "
              f"healthy shards after {chaos['healthy_shards_after']}")
    verdict = "ok" if report["ok"] else "FAIL"
    print(f"cluster bench seed {report['seed']}: "
          f"sdc {report['sdc_total']} -> {verdict}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["ok"] else 1


def _cmd_perfwatch(args: argparse.Namespace) -> int:
    from .exec.perfwatch import run_perfwatch
    return run_perfwatch(args.bench_dir, args.baseline,
                         tolerance=args.tolerance,
                         update_baseline=args.update_baseline)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .errors import ServeError
    from .lint.sanitizer import double_run_serve, sanitize_enabled, \
        sanitized
    from .serve import (LoadgenConfig, run_loadgen, start_in_thread,
                        write_report)

    sanitizing = sanitize_enabled(getattr(args, "sanitize", False))
    if args.cluster:
        if sanitizing:
            raise ServeError(
                "--sanitize and --cluster are mutually exclusive "
                "(the sanitizer double-runs a single in-process "
                "server)")
        return _cmd_loadgen_cluster(args)
    sanitizer_rc = 0
    if sanitizing:
        if not args.self_serve:
            raise ServeError(
                "--sanitize requires --self-serve: the sanitizer "
                "double-runs an in-process server and diffs the "
                "responses")
        lg_config = LoadgenConfig(
            seed=args.seed, requests=args.requests,
            rate_per_s=args.rate, timeout_s=args.timeout,
            deadline_ms=args.deadline_ms, slo_p99_ms=args.slo_p99_ms)
        with sanitized() as sanitizer:
            reports, diff = double_run_serve(
                _serve_config(args, port=0), lg_config, sanitizer)
        report = reports[0]
        summary = sanitizer.summary()
        summary["double_run"] = diff
        print(f"sanitizer: {len(summary['reports'])} report(s), "
              f"{diff['compared']} full-fidelity pairs bit-identical"
              f"-checked, {diff['excused']} excused, "
              f"{len(diff['divergences'])} divergence(s)",
              file=sys.stderr)
        for entry in summary["reports"][:20]:
            print(f"  [{entry['kind']}] {entry['detail']}",
                  file=sys.stderr)
        if args.sanitize_out:
            with open(args.sanitize_out, "w", encoding="utf-8") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"sanitizer report written to {args.sanitize_out}",
                  file=sys.stderr)
        sanitizer_rc = 1 if summary["reports"] else 0
    else:
        handle = None
        host, port = args.host, args.port
        if args.self_serve:
            handle = start_in_thread(_serve_config(args, port=0))
            host, port = "127.0.0.1", handle.port
            print(f"self-serve: started on {handle.url}",
                  file=sys.stderr)
        try:
            report = run_loadgen(LoadgenConfig(
                seed=args.seed, requests=args.requests,
                rate_per_s=args.rate, host=host, port=port,
                timeout_s=args.timeout, deadline_ms=args.deadline_ms,
                slo_p99_ms=args.slo_p99_ms))
        finally:
            if handle is not None:
                clean = handle.stop()
                print(f"self-serve: drained "
                      f"({'clean' if clean else 'forced'})",
                      file=sys.stderr)
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}", file=sys.stderr)
    lat = report["latency_s"]
    print(f"{report['requests']} requests @ "
          f"{report['offered_rate_per_s']:.0f}/s offered -> "
          f"{report['throughput_per_s']:.1f}/s served; "
          f"ok {report['ok']} (degraded {report['degraded']}), "
          f"errors {report['errors']}, malformed {report['malformed']}")
    print(f"latency p50 {lat['p50'] * 1000:.1f} ms, "
          f"p95 {lat['p95'] * 1000:.1f} ms, "
          f"p99 {lat['p99'] * 1000:.1f} ms")
    slo = report.get("slo") or {}
    if slo:
        verdict = "met" if slo.get("p99_ok") else "MISSED"
        print(f"slo: p99 target {slo['target_p99_ms']:.0f} ms "
              f"{verdict} (error rate {slo['error_rate']:.1%}, "
              f"degraded rate {slo['degraded_rate']:.1%})")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    return sanitizer_rc


def build_parser() -> argparse.ArgumentParser:
    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="capture telemetry (manifest, metrics, Chrome trace, "
             "interval samples) into DIR")
    telemetry.add_argument(
        "--sample-interval", type=int, default=5000, metavar="CYCLES",
        help="cycle-interval sampler granularity (default 5000)")

    # shared engine knobs: CLI flags win, env vars stay as fallbacks
    engine_opts = argparse.ArgumentParser(add_help=False)
    engine_opts.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width (default: $REPRO_WORKERS or 1)")
    engine_opts.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache (default: "
             "$REPRO_CACHE_DIR or off)")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="POWER10 energy-efficiency paper reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", parents=[telemetry, engine_opts],
                       help="P9 vs P10 on SPECint proxies")
    p.add_argument("--instructions", type=int, default=8000)
    p.add_argument("--verbose", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="machine-readable results on stdout")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("gemm", parents=[telemetry],
                       help="Fig. 5 DGEMM kernels")
    p.add_argument("--k", type=int, default=1500,
                   help="k-loop iterations")
    p.add_argument("--json", action="store_true",
                   help="machine-readable results on stdout")
    p.set_defaults(func=_cmd_gemm)

    p = sub.add_parser("ai", parents=[telemetry],
                       help="Fig. 6 AI projections")
    p.set_defaults(func=_cmd_ai)

    p = sub.add_parser("depth", parents=[telemetry],
                       help="Fig. 2 pipeline depth study")
    p.set_defaults(func=_cmd_depth)

    p = sub.add_parser("derating", parents=[telemetry],
                       help="Fig. 13/14 SERMiner")
    p.set_defaults(func=_cmd_derating)

    p = sub.add_parser("wof", parents=[telemetry],
                       help="power proxy + WOF decisions")
    p.set_defaults(func=_cmd_wof)

    p = sub.add_parser("yield", parents=[telemetry],
                       help="PFLY/CLY offering sweep")
    p.add_argument("--dies", type=int, default=2000)
    p.add_argument("--budget", type=float, default=130.0)
    p.set_defaults(func=_cmd_yield)

    # 'trace' declares its own telemetry options (not the shared parent:
    # set_defaults on a parented option would mutate the shared action's
    # default and turn telemetry on for every other command too) so it
    # can default to capturing.
    p = sub.add_parser("trace", help="one fully-telemetered run")
    p.add_argument("--telemetry-dir", default="telemetry-out",
                   metavar="DIR",
                   help="output directory (default telemetry-out/)")
    p.add_argument("--sample-interval", type=int, default=5000,
                   metavar="CYCLES")
    p.add_argument("--workload", default="xz",
                   help="SPECint proxy name, or daxpy / dgemm-vsu / "
                        "dgemm-mma")
    p.add_argument("--config", choices=["power9", "power10"],
                   default="power10")
    p.add_argument("--instructions", type=int, default=8000)
    p.set_defaults(func=_cmd_trace)

    fault = argparse.ArgumentParser(add_help=False)
    fault.add_argument("--seed", type=int, default=0,
                       help="campaign seed (default 0)")
    fault.add_argument("--workload", default="xz",
                       help="SPECint proxy name, or daxpy / dgemm-vsu "
                            "/ dgemm-mma")
    fault.add_argument("--config", choices=["power9", "power10"],
                       default="power10")
    fault.add_argument("--instructions", type=int, default=2000)
    fault.add_argument("--faults", type=int, default=3, metavar="N",
                       help="faults drawn per run (default 3)")
    fault.add_argument("--interval", type=int, default=500,
                       metavar="CYCLES",
                       help="campaign sampler interval (default 500)")
    fault.add_argument("--budget-factor", type=float, default=8.0,
                       metavar="X",
                       help="hang watchdog: budget = X * golden cycles "
                            "(default 8.0)")
    fault.add_argument("--json", action="store_true",
                       help="machine-readable results on stdout")

    p = sub.add_parser("inject", parents=[telemetry, fault],
                       help="one seeded fault-injection run")
    p.set_defaults(func=_cmd_inject)

    p = sub.add_parser("campaign", parents=[telemetry, fault,
                                            engine_opts],
                       help="resumable N-run fault-injection campaign")
    p.add_argument("--runs", type=int, default=8)
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="JSON checkpoint written after every run; an "
                        "existing file resumes the campaign")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="write the AVF/SERMiner cross-check report "
                        "to FILE as JSON")
    p.add_argument("--vt", type=int, default=50,
                   help="SERMiner vulnerability threshold %% for the "
                        "cross-check (default 50)")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "bench",
        help="run the paper-figure benchmarks through the parallel "
             "cached execution engine; writes BENCH_*.json")
    p.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                   help="scenario names (default: all; --list shows "
                        "them)")
    p.add_argument("--list", action="store_true",
                   help="list scenario names and exit")
    p.add_argument("--quick", action="store_true",
                   help="run every scenario at its reduced "
                        "golden-harness scale")
    p.add_argument("--tier", choices=("detailed", "fast"),
                   default="detailed",
                   help="simulator tier; 'fast' runs the differential "
                        "fidelity harness and writes "
                        "BENCH_fastsim.json")
    p.add_argument("--scale", type=float, default=1.0,
                   help="instruction-budget scale factor (default 1.0)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool width (default: $REPRO_WORKERS "
                        "or 1)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed result cache (default: "
                        "$REPRO_CACHE_DIR or off)")
    p.add_argument("--out", default=".", metavar="DIR",
                   help="directory for BENCH_*.json artifacts "
                        "(default .)")
    p.add_argument("--no-sweep", action="store_true",
                   help="skip the serial/parallel/cached timing sweep")
    p.add_argument("--sanitize", action="store_true",
                   help="run under the concurrency sanitizer "
                        "(also REPRO_SANITIZE=1); exit 1 on any report")
    p.set_defaults(func=_cmd_bench)

    serve_opts = argparse.ArgumentParser(add_help=False,
                                         parents=[engine_opts])
    serve_opts.add_argument("--host", default="127.0.0.1")
    serve_opts.add_argument("--window-ms", type=float, default=2.0,
                            help="micro-batching window (default 2 ms)")
    serve_opts.add_argument("--max-inflight", type=int, default=32,
                            help="admitted-request bound (default 32)")
    serve_opts.add_argument("--rate-limit", type=float, default=None,
                            metavar="REQ_PER_S",
                            help="token-bucket rate limit "
                                 "(default: unlimited)")
    serve_opts.add_argument("--drain-timeout", type=float, default=5.0,
                            metavar="SECONDS",
                            help="graceful-drain budget (default 5)")
    serve_opts.add_argument("--warm", action="store_true",
                            help="fit the power-proxy fast path before "
                                 "accepting traffic")
    serve_opts.add_argument("--access-log", default=None,
                            metavar="FILE",
                            help="JSON-lines access log (default: "
                                 "<telemetry-dir>/access.jsonl when "
                                 "telemetry is on, else off; '' "
                                 "disables)")
    serve_opts.add_argument("--slo-p99-ms", type=float, default=2000.0,
                            metavar="MS",
                            help="p99 latency SLO target "
                                 "(default 2000 ms)")
    serve_opts.add_argument("--sanitize", action="store_true",
                            help="run under the runtime concurrency "
                                 "sanitizer (also REPRO_SANITIZE=1); "
                                 "exit 1 on any report")

    p = sub.add_parser(
        "serve", parents=[telemetry, serve_opts],
        help="long-lived JSON-over-HTTP simulation service")
    p.add_argument("--port", type=int, default=8419,
                   help="listen port; 0 = ephemeral (default 8419)")
    p.add_argument("--port-file", default=None, metavar="FILE",
                   help="write the bound port to FILE once listening "
                        "(how the cluster supervisor learns a child "
                        "worker's ephemeral port)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "cluster", parents=[serve_opts],
        help="sharded multi-worker serving cluster behind one "
             "failover router with a shared result-cache tier")
    p.add_argument("--port", type=int, default=8420,
                   help="router port; 0 = ephemeral (default 8420)")
    p.add_argument("--shards", type=int, default=2,
                   help="serve-worker count (default 2)")
    p.add_argument("--worker-mode", choices=("thread", "process"),
                   default="process",
                   help="host workers as child processes (default) "
                        "or in-process threads")
    p.add_argument("--no-restart", action="store_true",
                   help="do not revive dead workers")
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser(
        "loadgen", parents=[telemetry, serve_opts],
        help="deterministic open-loop load generator; writes "
             "BENCH_serve.json")
    p.add_argument("--port", type=int, default=8419,
                   help="target server port (default 8419)")
    p.add_argument("--self-serve", action="store_true",
                   help="start an in-process server on an ephemeral "
                        "port for the duration of the run")
    p.add_argument("--seed", type=int, default=0,
                   help="schedule seed (default 0)")
    p.add_argument("--requests", type=int, default=50)
    p.add_argument("--rate", type=float, default=25.0,
                   metavar="REQ_PER_S",
                   help="offered open-loop rate (default 25/s)")
    p.add_argument("--deadline-ms", type=int, default=None,
                   help="per-request deadline forwarded to the server")
    p.add_argument("--timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="client socket timeout (default 60)")
    p.add_argument("--out", default="BENCH_serve.json", metavar="FILE",
                   help="report artifact (default BENCH_serve.json; "
                        "'' disables)")
    p.add_argument("--json", action="store_true",
                   help="also print the full report to stdout")
    p.add_argument("--sanitize-out", default="SANITIZE_serve.json",
                   metavar="FILE",
                   help="sanitizer report artifact for --sanitize "
                        "runs (default SANITIZE_serve.json; '' "
                        "disables)")
    p.add_argument("--cluster", action="store_true",
                   help="drive a self-managed sharded cluster instead "
                        "of a single server and write "
                        "BENCH_cluster.json (untouched --requests/"
                        "--rate defaults scale to 240 @ 250/s)")
    p.add_argument("--shards", type=int, default=2,
                   help="cluster worker count for --cluster "
                        "(default 2)")
    p.add_argument("--no-kill-shard", action="store_true",
                   help="skip the worker_down chaos phase of "
                        "--cluster")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "perfwatch",
        help="diff BENCH_*.json artifacts against the committed "
             "performance baseline; exit 1 on regression")
    p.add_argument("--bench-dir", default=".", metavar="DIR",
                   help="directory holding BENCH_*.json (default .)")
    p.add_argument("--baseline",
                   default="benchmarks/perf-baseline.json",
                   metavar="FILE",
                   help="baseline file (default "
                        "benchmarks/perf-baseline.json)")
    p.add_argument("--tolerance", type=float, default=None,
                   metavar="FRAC",
                   help="override every tolerance with this "
                        "fractional slowdown budget (e.g. 0.25)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from the current "
                        "artifacts instead of comparing")
    p.set_defaults(func=_cmd_perfwatch)

    p = sub.add_parser(
        "chaos",
        help="seeded service-level chaos campaign; writes "
             "BENCH_chaos.json, exit 1 on any SDC or hang")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--requests", type=int, default=24,
                   help="requests per phase (default 24)")
    p.add_argument("--rate", type=float, default=30.0,
                   metavar="REQ_PER_S",
                   help="offered open-loop rate (default 30/s)")
    p.add_argument("--workers", type=int, default=2,
                   help="process-pool width (default 2; must be >= 2 "
                        "so worker faults fire in forked workers)")
    p.add_argument("--classes", default=None, metavar="KIND,KIND",
                   help="comma-separated fault classes "
                        "(default: the full taxonomy)")
    p.add_argument("--faults-per-class", type=int, default=2,
                   metavar="N",
                   help="faults armed per class phase (default 2)")
    p.add_argument("--deadline-ms", type=int, default=6000,
                   help="per-request deadline (default 6000)")
    p.add_argument("--timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="client hang bound per request (default 30)")
    p.add_argument("--quick", action="store_true",
                   help="the CI smoke shape: fewer requests, tighter "
                        "deadlines, one fault per class")
    p.add_argument("--out", default="BENCH_chaos.json", metavar="FILE",
                   help="report artifact (default BENCH_chaos.json; "
                        "'' disables)")
    p.add_argument("--json", action="store_true",
                   help="also print the full report to stdout")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "lint",
        help="static analysis: prove the event/energy/determinism "
             "and concurrency contracts (R001-R011)")
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files/directories to lint "
                        "(default: the repro package)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline file of grandfathered findings "
                        "(default: lint-baseline.json if present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--write-baseline", action="store_true",
                   help="write current findings to the baseline file "
                        "and exit 0")
    p.add_argument("--fix", action="store_true",
                   help="apply the default safe autofixes "
                        "(bare except: -> except Exception:)")
    p.add_argument("--fix-rule", action="append", metavar="RULE",
                   help="fix one rule's findings (repeatable; R004, "
                        "R005, R007); implies --fix for those rules "
                        "only")
    p.add_argument("--min-severity", default="warning",
                   type=_severity_arg, metavar="LEVEL",
                   help="lowest severity that fails the run: info, "
                        "warning, or error (default warning)")
    p.add_argument("--verbose", action="store_true",
                   help="also list baselined findings")
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .errors import ReproError

    args = build_parser().parse_args(argv)
    outdir = getattr(args, "telemetry_dir", None)
    try:
        if not outdir:
            args.session = None
            return args.func(args)

        from .obs.export import TelemetrySession
        session = TelemetrySession(
            outdir, interval_cycles=args.sample_interval,
            argv=list(argv) if argv is not None else None)
        with session:
            args.session = session
            with session.tracer.span(f"cli.{args.command}", "cli"):
                rc = args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if rc == 0:
        print(f"telemetry written to {session.outdir}/: "
              "manifest.json, metrics.json, trace.json, samples.csv",
              file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main())
