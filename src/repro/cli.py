"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compare``  — POWER9 vs POWER10 on the SPECint proxy suite (the
  Table I headline numbers);
* ``gemm``     — the Fig. 5 DGEMM kernel comparison;
* ``ai``       — the Fig. 6 end-to-end AI projections;
* ``depth``    — the Fig. 2 pipeline-depth study;
* ``derating`` — the Fig. 13/14 SERMiner analysis;
* ``wof``      — power-proxy design + WOF boost decisions;
* ``yield``    — PFLY/CLY offering sweep.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .core import power9_config, power10_config
    from .core.pipeline import simulate
    from .power import EinspowerModel
    from .workloads import specint_proxies

    proxies = specint_proxies(instructions=args.instructions)
    p9, p10 = power9_config(), power10_config()
    rows = []
    wsum = perf = power = 0.0
    for trace in proxies:
        r9 = simulate(p9, trace, warmup_fraction=0.3)
        r10 = simulate(p10, trace, warmup_fraction=0.3)
        w9 = EinspowerModel(p9).report(r9.activity).total_w
        w10 = EinspowerModel(p10).report(r10.activity).total_w
        wsum += trace.weight
        perf += trace.weight * r10.ipc / r9.ipc
        power += trace.weight * w10 / w9
        if args.verbose:
            rows.append([trace.name, f"{r9.ipc:.2f}", f"{r10.ipc:.2f}",
                         f"{r10.ipc / r9.ipc:.2f}x",
                         f"{w10 / w9:.2f}x"])
    if rows:
        print(format_table("per-proxy results",
                           ["proxy", "P9 IPC", "P10 IPC", "perf",
                            "power"], rows))
    perf /= wsum
    power /= wsum
    print(f"POWER10 vs POWER9 (weighted over {len(proxies)} proxies): "
          f"{perf:.2f}x perf @ {power:.2f}x power -> "
          f"{perf / power:.2f}x perf/watt (paper: 1.3x @ 0.5x -> 2.6x)")
    return 0


def _cmd_gemm(args: argparse.Namespace) -> int:
    from .core import power9_config, power10_config
    from .core.pipeline import simulate
    from .power import EinspowerModel
    from .workloads import dgemm_mma_trace, dgemm_vsu_trace

    p9, p10 = power9_config(), power10_config()
    runs = [("POWER9 VSU", p9, dgemm_vsu_trace(args.k)),
            ("POWER10 VSU", p10, dgemm_vsu_trace(args.k)),
            ("POWER10 MMA", p10, dgemm_mma_trace(args.k))]
    base = None
    for name, config, trace in runs:
        result = simulate(config, trace, warmup_fraction=0.25)
        watts = EinspowerModel(config).report(result.activity).total_w
        if base is None:
            base = (result.flops_per_cycle, watts)
        print(f"{name:12s} {result.flops_per_cycle:6.2f} FLOPs/cyc "
              f"({result.flops_per_cycle / base[0]:.2f}x)  "
              f"{watts:.2f} W ({watts / base[1] - 1:+.1%})")
    return 0


def _cmd_ai(args: argparse.Namespace) -> int:
    from .workloads.ai import (bert_large_profile, figure6_rows,
                               resnet50_profile, socket_ai_speedup)
    for profile in (resnet50_profile(), bert_large_profile()):
        print(f"{profile.name}:")
        for label, row in figure6_rows(profile).items():
            print(f"  {label:18s} speedup {row['speedup']:.2f}x")
        print(f"  socket FP32 {socket_ai_speedup(profile):.1f}x, "
              f"INT8 {socket_ai_speedup(profile, dtype='int8'):.1f}x")
    return 0


def _cmd_depth(args: argparse.Namespace) -> int:
    from .power import depth_study, optimal_fo4
    curves = depth_study()
    for budget, points in sorted(curves.items()):
        print(f"power budget {budget:.2f}x -> optimal "
              f"{optimal_fo4(points)} FO4")
    return 0


def _cmd_derating(args: argparse.Namespace) -> int:
    from .core import power9_config, power10_config
    from .reliability import compare_generations
    from .workloads import derating_suites, specint_proxies
    suites = derating_suites(smt_levels=(1, 2), instructions=1500)
    suites += specint_proxies(instructions=2500,
                              names=["xz", "x264", "leela"])
    results = compare_generations(power9_config(), power10_config(),
                                  suites, vt_values=(10, 50, 90))
    for name, r in results.items():
        runtime = {vt: round(v, 1)
                   for vt, v in r.runtime_derating_pct.items()}
        print(f"{name}: static {r.static_derating_pct:.1f}%  "
              f"runtime {runtime}")
    return 0


def _cmd_wof(args: argparse.Namespace) -> int:
    from .core import power10_config, simulate_trace
    from .pm import WofDesignPoint, WofGovernor
    from .workloads import max_power_stressmark, specint_proxies
    config = power10_config()
    stress = simulate_trace(config, max_power_stressmark(3000))
    governor = WofGovernor(config, WofDesignPoint(
        tdp_core_w=stress.power_w, rdp_core_w=stress.power_w * 1.1))
    for trace in specint_proxies(instructions=4000,
                                 names=["xz", "exchange2"]):
        run = simulate_trace(config, trace)
        decision = governor.decide(trace.name, run.power_w,
                                   mma_idle=True)
        print(f"{trace.name:16s} {run.power_w:.2f} W -> "
              f"{decision.boost_ghz:.2f} GHz "
              f"(+{(decision.boost_ratio - 1) * 100:.0f}%)")
    return 0


def _cmd_yield(args: argparse.Namespace) -> int:
    from .pm import (Offering, ProcessVariation, YieldAnalyzer,
                     sample_dies)
    dies = sample_dies(ProcessVariation(), args.dies)
    analyzer = YieldAnalyzer(core_dynamic_w=2.0, core_leakage_w=0.5)
    for freq in (3.6, 3.9, 4.2, 4.5):
        offering = Offering(f"12c@{freq}", frequency_ghz=freq,
                            good_cores=12,
                            socket_power_budget_w=args.budget)
        result = analyzer.evaluate(offering, dies)
        print(f"{offering.name:10s} yield "
              f"{result.yield_fraction * 100:5.1f}%  "
              f"losses {({k: round(v, 3) for k, v in result.limited_by.items()})}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="POWER10 energy-efficiency paper reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="P9 vs P10 on SPECint proxies")
    p.add_argument("--instructions", type=int, default=8000)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("gemm", help="Fig. 5 DGEMM kernels")
    p.add_argument("--k", type=int, default=1500,
                   help="k-loop iterations")
    p.set_defaults(func=_cmd_gemm)

    p = sub.add_parser("ai", help="Fig. 6 AI projections")
    p.set_defaults(func=_cmd_ai)

    p = sub.add_parser("depth", help="Fig. 2 pipeline depth study")
    p.set_defaults(func=_cmd_depth)

    p = sub.add_parser("derating", help="Fig. 13/14 SERMiner")
    p.set_defaults(func=_cmd_derating)

    p = sub.add_parser("wof", help="power proxy + WOF decisions")
    p.set_defaults(func=_cmd_wof)

    p = sub.add_parser("yield", help="PFLY/CLY offering sweep")
    p.add_argument("--dies", type=int, default=2000)
    p.add_argument("--budget", type=float, default=130.0)
    p.set_defaults(func=_cmd_yield)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
