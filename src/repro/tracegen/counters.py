"""Epoch-level hardware performance-counter collection.

Tracepoints (Section III-A) replaces simulation-generated BBVs with
"hardware performance counter data ... collected at an epoch-level
granularity of a few ms".  Here the "hardware" is the timing model: a
workload is run in epoch-sized windows and each epoch reports the
counter set the methodology bins on (CPI, cache misses, branch
mispredictions, and Integer/FPU/Vector/GEMM operation counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.config import CoreConfig
from ..core.isa import InstrClass
from ..errors import TraceError
from ..workloads.trace import Trace

COUNTER_NAMES = (
    "cpi", "l1d_misses", "llc_misses", "branch_mispredicts",
    "int_ops", "fp_ops", "vector_ops", "mma_ops", "blas_calls",
)


@dataclass
class Epoch:
    """One measurement epoch."""

    index: int
    instructions: int
    cycles: int
    counters: Dict[str, float]
    trace: Trace = field(repr=False, default=None)

    @property
    def cpi(self) -> float:
        return self.counters["cpi"]


def collect_epochs(config: CoreConfig, trace: Trace, *,
                   epoch_instructions: int = 2000,
                   tier: str = "detailed") -> List[Epoch]:
    """Run a workload epoch by epoch and collect counter snapshots."""
    from ..fastsim.dispatch import simulate_tiered
    if epoch_instructions <= 0:
        raise TraceError("epoch size must be positive")
    epochs: List[Epoch] = []
    for i, window in enumerate(trace.windows(epoch_instructions)):
        result = simulate_tiered(config, window, tier=tier)
        ev = result.activity.events
        blas_calls = float(window.metadata.get("blas_calls", 0))
        counters = {
            "cpi": result.cpi,
            "l1d_misses": float(ev["l1d_miss"]),
            "llc_misses": float(ev["l3_miss"]),
            "branch_mispredicts": float(ev["bp_mispredict"]),
            "int_ops": float(ev["issue_fx"] + ev["issue_fx_muldiv"]),
            "fp_ops": float(ev["issue_fp"]),
            "vector_ops": float(ev["issue_vsx"]),
            "mma_ops": float(ev["issue_mma"]),
            "blas_calls": blas_calls,
        }
        epochs.append(Epoch(index=i, instructions=result.instructions,
                            cycles=result.cycles, counters=counters,
                            trace=window))
    if not epochs:
        raise TraceError("workload produced no epochs")
    return epochs


def aggregate_counters(epochs: List[Epoch]) -> Dict[str, float]:
    """Instruction-weighted aggregate over a run's epochs."""
    total_instr = sum(e.instructions for e in epochs)
    out: Dict[str, float] = {}
    for name in COUNTER_NAMES:
        if name == "cpi":
            total_cycles = sum(e.cycles for e in epochs)
            out[name] = total_cycles / total_instr
        else:
            out[name] = sum(e.counters[name] for e in epochs)
    return out
