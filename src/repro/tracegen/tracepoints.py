"""Tracepoints: counter-histogram trace selection (Section III-A).

The paper's replacement for SimPoint: "Performance counter information
is collected at an epoch-level granularity ... and these epochs are
assigned to different histogram bins based on their CPI and/or other
performance metrics ... Individual epochs are picked from histogram
bins, so as to match the aggregate performance of the actual
application, and concatenated to form a trace."

For AI workloads the selection is additionally **MMA-aware**: the
generated trace must match the application's BLAS/GEMM call profile so
MMA utilization projects correctly onto POWER10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import CoreConfig
from ..errors import TraceError
from ..workloads.trace import Trace
from .counters import Epoch, aggregate_counters, collect_epochs


@dataclass
class TracepointResult:
    """A Tracepoints-selected representative trace."""

    trace: Trace
    selected_epochs: List[int]
    target_cpi: float
    achieved_cpi: float
    bin_metrics: Tuple[str, ...]

    @property
    def cpi_error_pct(self) -> float:
        return abs(self.achieved_cpi - self.target_cpi) \
            / self.target_cpi * 100.0


def _bin_index(value: float, edges: np.ndarray) -> int:
    return int(np.clip(np.searchsorted(edges, value) - 1,
                       0, len(edges) - 2))


def build_tracepoint(config: CoreConfig, trace: Trace, *,
                     epoch_instructions: int = 2000,
                     bins: int = 6,
                     epochs_to_select: int = 8,
                     metrics: Sequence[str] = ("cpi", "llc_misses"),
                     mma_aware: bool = False,
                     tier: str = "detailed") -> TracepointResult:
    """Build a representative trace from epoch histograms.

    Epochs are histogrammed on the requested metrics; the selection
    draws epochs from bins proportionally to bin population (so the
    concatenated trace matches the application's aggregate behaviour),
    preferring within each bin the epoch closest to the bin's mean CPI.
    With ``mma_aware=True`` the per-bin draw also matches the epoch
    population's BLAS-call mass, the paper's fix for GEMM-heavy AI
    workloads.
    """
    if epochs_to_select <= 0:
        raise TraceError("must select at least one epoch")
    epochs = collect_epochs(config, trace,
                            epoch_instructions=epoch_instructions,
                            tier=tier)
    if len(epochs) < epochs_to_select:
        epochs_to_select = len(epochs)
    aggregate = aggregate_counters(epochs)
    target_cpi = aggregate["cpi"]

    # multi-metric histogram: the bin key is the tuple of per-metric bins
    edges = {}
    for metric in metrics:
        values = np.array([e.counters[metric] for e in epochs])
        lo, hi = values.min(), values.max() + 1e-9
        edges[metric] = np.linspace(lo, hi, bins + 1)
    bin_members: Dict[Tuple[int, ...], List[Epoch]] = {}
    for epoch in epochs:
        key = tuple(_bin_index(epoch.counters[m], edges[m])
                    for m in metrics)
        bin_members.setdefault(key, []).append(epoch)

    # allocate selections to bins proportionally to population
    total = len(epochs)
    allocations: List[Tuple[Tuple[int, ...], int]] = []
    remaining = epochs_to_select
    for key, members in sorted(bin_members.items(),
                               key=lambda kv: -len(kv[1])):
        share = max(1 if remaining else 0,
                    round(epochs_to_select * len(members) / total))
        share = min(share, remaining, len(members))
        if share:
            allocations.append((key, share))
            remaining -= share
        if remaining == 0:
            break

    selected: List[Epoch] = []
    for key, share in allocations:
        members = bin_members[key]
        mean_cpi = float(np.mean([e.cpi for e in members]))
        if mma_aware:
            mean_blas = float(np.mean(
                [e.counters["blas_calls"] for e in members]))
            scored = sorted(members, key=lambda e: (
                abs(e.counters["blas_calls"] - mean_blas),
                abs(e.cpi - mean_cpi)))
        else:
            scored = sorted(members, key=lambda e: abs(e.cpi - mean_cpi))
        selected.extend(scored[:share])

    selected.sort(key=lambda e: e.index)
    body = []
    for epoch in selected:
        body.extend(epoch.trace.instructions)
    achieved_cpi = float(np.average(
        [e.cpi for e in selected],
        weights=[e.instructions for e in selected]))
    rep = Trace(name=f"{trace.name}.tracepoint",
                instructions=body, suite=f"{trace.suite}-tracepoint",
                metadata={"source": trace.name,
                          "epochs": [e.index for e in selected],
                          "blas_calls": sum(
                              e.counters["blas_calls"]
                              for e in selected)})
    return TracepointResult(
        trace=rep,
        selected_epochs=[e.index for e in selected],
        target_cpi=target_cpi,
        achieved_cpi=achieved_cpi,
        bin_metrics=tuple(metrics))


def validate_against_reference(config: CoreConfig, original: Trace,
                               representative: Trace, *,
                               tier: str = "detailed") -> Dict[str, float]:
    """Validate a representative trace against the full run (the paper
    validates Tracepoints against real POWER9 hardware)."""
    from ..fastsim.dispatch import simulate_tiered
    full = simulate_tiered(config, original, tier=tier,
                           warmup_fraction=0.2)
    rep = simulate_tiered(config, representative, tier=tier,
                          warmup_fraction=0.2)
    return {
        "full_cpi": full.cpi,
        "representative_cpi": rep.cpi,
        "cpi_error_pct": abs(rep.cpi - full.cpi) / full.cpi * 100.0,
        "full_mpki": full.branch_mpki,
        "representative_mpki": rep.branch_mpki,
    }
