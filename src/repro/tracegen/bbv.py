"""Basic Block Vectors — the SimPoint feature space (Section III-A).

A BBV counts, per fixed-size execution interval, how many instructions
were executed in each static basic block.  Blocks are delimited by
branch instructions (a branch ends a block; its target starts one).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import TraceError


def split_intervals(trace, interval: int) -> List[List]:
    if interval <= 0:
        raise TraceError("interval must be positive")
    instrs = trace.instructions
    return [instrs[i:i + interval]
            for i in range(0, len(instrs), interval)
            if len(instrs[i:i + interval]) >= interval // 2]


def basic_block_vectors(trace, *, interval: int = 1000,
                        ) -> Tuple[np.ndarray, List[List]]:
    """Compute normalized BBVs; returns (matrix, intervals).

    Block identity is the PC of the block's leader (the instruction
    after the previous branch).
    """
    intervals = split_intervals(trace, interval)
    if not intervals:
        raise TraceError("trace too short for the chosen interval")
    block_ids: Dict[int, int] = {}
    rows: List[Dict[int, int]] = []
    for chunk in intervals:
        counts: Dict[int, int] = {}
        leader = chunk[0].pc
        block_len = 0
        for instr in chunk:
            block_len += 1
            if instr.iclass.is_branch:
                bid = block_ids.setdefault(leader, len(block_ids))
                counts[bid] = counts.get(bid, 0) + block_len
                leader = instr.target if instr.taken else instr.pc + 4
                block_len = 0
        if block_len:
            bid = block_ids.setdefault(leader, len(block_ids))
            counts[bid] = counts.get(bid, 0) + block_len
        rows.append(counts)
    matrix = np.zeros((len(rows), len(block_ids)))
    for i, counts in enumerate(rows):
        for bid, count in counts.items():
            matrix[i, bid] = count
        total = matrix[i].sum()
        if total > 0:
            matrix[i] /= total
    return matrix, intervals


def project_bbvs(matrix: np.ndarray, dimensions: int = 15,
                 seed: int = 42) -> np.ndarray:
    """Random projection to a low dimension (the SimPoint recipe)."""
    if matrix.shape[1] <= dimensions:
        return matrix.copy()
    rng = np.random.default_rng(seed)
    projection = rng.standard_normal((matrix.shape[1], dimensions))
    projection /= np.sqrt(dimensions)
    return matrix @ projection
