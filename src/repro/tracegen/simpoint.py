"""SimPoint: representative-interval selection via BBV clustering.

The baseline methodology the paper's Tracepoints improves on
(Section III-A).  Pipeline: BBVs per interval -> random projection ->
k-means -> pick the interval closest to each centroid, weighted by
cluster population.  Fig. 10 runs "160 simpoints" of SPECint through
the APEX core and chip models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import TraceError
from ..workloads.trace import Trace
from .bbv import basic_block_vectors, project_bbvs


def kmeans(points: np.ndarray, k: int, *, iterations: int = 50,
           seed: int = 7) -> np.ndarray:
    """Plain Lloyd's k-means; returns per-point cluster labels."""
    if k <= 0:
        raise TraceError("k must be positive")
    n = points.shape[0]
    k = min(k, n)
    rng = np.random.default_rng(seed)
    centers = points[rng.choice(n, size=k, replace=False)].copy()
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        dists = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(k):
            members = points[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
            else:   # re-seed empty cluster at the farthest point
                centers[c] = points[dists.min(axis=1).argmax()]
    return labels


@dataclass
class Simpoint:
    """One representative interval."""

    trace: Trace
    cluster: int
    weight: float
    interval_index: int


@dataclass
class SimpointResult:
    simpoints: List[Simpoint]
    labels: np.ndarray = field(repr=False)

    @property
    def total_weight(self) -> float:
        return sum(s.weight for s in self.simpoints)


def pick_simpoints(trace: Trace, *, interval: int = 1000,
                   max_clusters: int = 8, seed: int = 7,
                   dimensions: int = 15) -> SimpointResult:
    """Select representative intervals of a workload."""
    matrix, intervals = basic_block_vectors(trace, interval=interval)
    projected = project_bbvs(matrix, dimensions=dimensions, seed=seed)
    k = min(max_clusters, len(intervals))
    labels = kmeans(projected, k, seed=seed)
    simpoints: List[Simpoint] = []
    for cluster in sorted(set(labels.tolist())):
        members = np.flatnonzero(labels == cluster)
        center = projected[members].mean(axis=0)
        dists = ((projected[members] - center) ** 2).sum(axis=1)
        representative = int(members[dists.argmin()])
        simpoints.append(Simpoint(
            trace=Trace(
                name=f"{trace.name}.sp{cluster}",
                instructions=list(intervals[representative]),
                suite=f"{trace.suite}-simpoint",
                weight=len(members) / len(intervals),
                metadata={"source": trace.name,
                          "interval": representative}),
            cluster=int(cluster),
            weight=len(members) / len(intervals),
            interval_index=representative))
    return SimpointResult(simpoints=simpoints, labels=labels)


def simpoint_suite(traces, *, interval: int = 1000,
                   max_clusters: int = 8,
                   limit: Optional[int] = None) -> List[Trace]:
    """SimPoints for a whole suite (Fig. 10's 160-simpoint set)."""
    out: List[Trace] = []
    for trace in traces:
        result = pick_simpoints(trace, interval=interval,
                                max_clusters=max_clusters)
        out.extend(s.trace for s in result.simpoints)
    if limit is not None:
        out = out[:limit]
    return out
