"""Representative-trace generation: BBVs + SimPoint (baseline) and the
paper's counter-histogram Tracepoints methodology."""

from .bbv import basic_block_vectors, project_bbvs, split_intervals
from .simpoint import (Simpoint, SimpointResult, kmeans, pick_simpoints,
                       simpoint_suite)
from .counters import (COUNTER_NAMES, Epoch, aggregate_counters,
                       collect_epochs)
from .tracepoints import (TracepointResult, build_tracepoint,
                          validate_against_reference)

__all__ = [
    "basic_block_vectors", "project_bbvs", "split_intervals",
    "Simpoint", "SimpointResult", "kmeans", "pick_simpoints",
    "simpoint_suite",
    "COUNTER_NAMES", "Epoch", "aggregate_counters", "collect_epochs",
    "TracepointResult", "build_tracepoint", "validate_against_reference",
]
