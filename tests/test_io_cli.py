"""Tests for trace serialization and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.pipeline import simulate
from repro.errors import TraceError
from repro.workloads import (daxpy_trace, load_trace, save_trace,
                             specint_proxies)


class TestTraceIO:
    def test_roundtrip_preserves_instructions(self, tmp_path, daxpy):
        path = tmp_path / "daxpy.trace"
        save_trace(daxpy, path)
        loaded = load_trace(path)
        assert loaded.name == daxpy.name
        assert len(loaded) == len(daxpy)
        for a, b in zip(daxpy.instructions, loaded.instructions):
            assert a.iclass == b.iclass
            assert a.dests == b.dests and a.srcs == b.srcs
            assert a.address == b.address and a.size == b.size
            assert a.pc == b.pc and a.flops == b.flops

    def test_roundtrip_simulates_identically(self, tmp_path, p10,
                                             small_trace):
        path = tmp_path / "t.trace"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        a = simulate(p10, small_trace)
        b = simulate(p10, loaded)
        assert a.cycles == b.cycles
        assert a.activity.events == b.activity.events

    def test_proxy_weight_preserved(self, tmp_path):
        proxy = specint_proxies(instructions=3000, names=["xz"])[0]
        path = tmp_path / "p.trace"
        save_trace(proxy, path)
        assert load_trace(path).weight == pytest.approx(proxy.weight)

    def test_truncated_file_rejected(self, tmp_path, daxpy):
        path = tmp_path / "x.trace"
        save_trace(daxpy, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "v.trace"
        path.write_text(json.dumps({"version": 99,
                                    "instructions": 0}) + "\n")
        with pytest.raises(TraceError):
            load_trace(path)


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        actions = [a for a in parser._subparsers._actions
                   if hasattr(a, "choices") and a.choices][0]
        assert set(actions.choices) >= {
            "compare", "gemm", "ai", "depth", "derating", "wof",
            "yield"}

    def test_depth_command(self, capsys):
        assert main(["depth"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out and "FO4" in out

    def test_yield_command(self, capsys):
        assert main(["yield", "--dies", "300"]) == 0
        assert "yield" in capsys.readouterr().out

    def test_gemm_command(self, capsys):
        assert main(["gemm", "--k", "300"]) == 0
        out = capsys.readouterr().out
        assert "POWER10 MMA" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
