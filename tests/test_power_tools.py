"""Tests for Powerminer, LFSR counters and APEX."""

import pytest

from repro.core.pipeline import simulate
from repro.errors import ModelError
from repro.power.apex import (Apex, apex_power_from_activity,
                              compare_core_vs_chip,
                              detailed_reference_power)
from repro.power.einspower import EinspowerModel
from repro.power.lfsr import LfsrBank, LfsrCounter, LfsrDecoder
from repro.power.powerminer import Powerminer


class TestPowerminer:
    def test_report_structure(self, p9, small_trace):
        result = simulate(p9, small_trace)
        report = Powerminer(p9).report(result.activity)
        assert set(report.units)
        for unit in report.units.values():
            assert 0.0 <= unit.clock_enable_fraction <= 1.0
            assert unit.gating_fraction == pytest.approx(
                1.0 - unit.clock_enable_fraction)

    def test_p10_gates_harder(self, p9, p10, small_trace):
        r9 = simulate(p9, small_trace)
        r10 = simulate(p10, small_trace)
        m9 = Powerminer(p9).report(r9.activity)
        m10 = Powerminer(p10).report(r10.activity)
        assert m10.mean_clock_enable < m9.mean_clock_enable

    def test_ghost_tracks_config_factor(self, p9, p10, small_trace):
        r = simulate(p9, small_trace)
        g9 = Powerminer(p9).report(r.activity).total_ghost_per_cycle
        r10 = simulate(p10, small_trace)
        g10 = Powerminer(p10).report(r10.activity).total_ghost_per_cycle
        assert g10 < g9

    def test_flagging(self, p10, vsu_kernel):
        result = simulate(p10, vsu_kernel)
        report = Powerminer(p10).report(result.activity)
        assert isinstance(report.flagged_ghost_units(0.01), list)


class TestLfsr:
    def test_roundtrip(self):
        decoder = LfsrDecoder(8)
        counter = LfsrCounter(8)
        counter.tick(57)
        assert decoder.decode(counter.state) == 57

    def test_width_validation(self):
        with pytest.raises(ModelError):
            LfsrCounter(12)

    def test_saturation_flag(self):
        counter = LfsrCounter(8)
        counter.tick(300)       # > 2^8 - 1 period
        assert counter.saturated

    def test_reset(self):
        counter = LfsrCounter(8)
        counter.tick(5)
        counter.reset()
        assert counter.state == 1 and not counter.saturated

    def test_bank_extract_resets(self):
        bank = LfsrBank(["a", "b"], width=8)
        bank.record({"a": 10, "b": 3})
        assert bank.extract() == {"a": 10, "b": 3}
        assert bank.extract() == {"a": 0, "b": 0}

    def test_bank_unknown_signal(self):
        with pytest.raises(ModelError):
            LfsrBank(["a"]).record({"z": 1})

    def test_bank_requires_signals(self):
        with pytest.raises(ModelError):
            LfsrBank([])


class TestApex:
    def test_fast_path_matches_detailed(self, p9, small_trace):
        # the paper: "identical accuracy", ~5000x faster
        result = simulate(p9, small_trace)
        fast = apex_power_from_activity(p9, result.activity)
        slow = detailed_reference_power(p9, result.activity)
        assert fast == pytest.approx(slow, rel=0.01)

    def test_apex_run_intervals(self, p9, small_trace):
        run = Apex(p9).run(small_trace, interval_instructions=1500)
        assert len(run.intervals) == 4
        assert run.total_power_w > 0
        assert all(iv.power_w > 0 for iv in run.intervals)

    def test_interval_validation(self, p9, small_trace):
        with pytest.raises(ModelError):
            Apex(p9).run(small_trace, interval_instructions=0)

    def test_apex_total_close_to_einspower(self, p9, small_trace):
        run = Apex(p9).run(small_trace, interval_instructions=3000)
        result = simulate(p9, small_trace)
        reference = EinspowerModel(p9).report(result.activity).total_w
        assert run.total_power_w == pytest.approx(reference, rel=0.15)

    def test_core_vs_chip_validation(self, p9, small_trace):
        from repro.core import power9_config
        core = power9_config(infinite_l2=True)
        chip = power9_config()
        with pytest.raises(ModelError):
            compare_core_vs_chip(chip, chip, [small_trace])
        with pytest.raises(ModelError):
            compare_core_vs_chip(core, core, [small_trace])
        points = compare_core_vs_chip(core, chip, [small_trace])
        assert points[0]["core_ipc"] >= points[0]["chip_ipc"]
