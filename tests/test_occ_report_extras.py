"""Extra coverage: OCC multi-tick behaviour, report formatting edges,
BBV interval splitting and socket AI on both dtypes."""

import pytest

from repro.analysis.report import format_series, format_table
from repro.core import power10_config
from repro.pm import CoreTelemetry, OnChipController, WofDesignPoint, \
    WofGovernor
from repro.tracegen.bbv import split_intervals
from repro.errors import TraceError


class TestOccDynamics:
    def _occ(self, p10, budget=20.0):
        gov = WofGovernor(p10, WofDesignPoint(tdp_core_w=budget / 4,
                                              rdp_core_w=budget / 3))
        return OnChipController(gov, cores=4, socket_budget_w=budget)

    def test_overload_throttles_down(self, p10):
        occ = self._occ(p10)
        hot = [CoreTelemetry(core_id=i, proxy_power_w=9.0)
               for i in range(4)]
        last = None
        for _ in range(30):
            last = occ.tick(hot)
        assert min(last.core_duties.values()) < 1.0
        assert last.frequency_ghz <= 4.0

    def test_mma_wakes_on_activity(self, p10):
        occ = self._occ(p10)
        idle = [CoreTelemetry(core_id=i, proxy_power_w=2.0)
                for i in range(4)]
        for _ in range(3):
            occ.tick(idle)
        busy = [CoreTelemetry(core_id=i, proxy_power_w=3.0,
                              mma_busy=True, wake_hint_seen=True)
                for i in range(4)]
        result = occ.tick(busy)
        assert all(result.mma_powered.values())

    def test_history_accumulates(self, p10):
        occ = self._occ(p10)
        telemetry = [CoreTelemetry(core_id=i, proxy_power_w=2.0)
                     for i in range(4)]
        for _ in range(5):
            occ.tick(telemetry)
        assert len(occ.history) == 5


class TestReportEdges:
    def test_int_and_string_cells(self):
        text = format_table("t", ["a"], [[7], ["word"]])
        assert "7" in text and "word" in text

    def test_series_multiple(self):
        text = format_series("s", {"x": [1.0], "y": [2.0]}, "i", [0])
        assert "x" in text and "y" in text

    def test_empty_rows_ok(self):
        assert "t" in format_table("t", ["a", "b"], [])


class TestBbvIntervals:
    def test_split_counts(self, small_trace):
        chunks = split_intervals(small_trace, 1000)
        assert all(len(c) >= 500 for c in chunks)

    def test_bad_interval(self, small_trace):
        with pytest.raises(TraceError):
            split_intervals(small_trace, 0)
