"""Unit tests for the Trace container."""

import pytest

from repro.core.isa import Instruction, InstrClass
from repro.errors import TraceError
from repro.workloads.trace import Trace, merge_smt


def _trace(n=100, name="t"):
    return Trace(name=name, instructions=[
        Instruction(iclass=InstrClass.FX, dests=(3,), pc=0x4000 + 4 * i)
        for i in range(n)])


class TestTrace:
    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            Trace(name="empty", instructions=[])

    def test_bad_weight_rejected(self):
        with pytest.raises(TraceError):
            Trace(name="w", instructions=_trace().instructions, weight=0)

    def test_len_and_iter(self):
        trace = _trace(10)
        assert len(trace) == 10
        assert sum(1 for _ in trace) == 10

    def test_class_mix_sums_to_one(self, small_trace):
        mix = small_trace.class_mix()
        assert abs(sum(mix.values()) - 1.0) < 1e-9

    def test_total_flops(self):
        instrs = [Instruction(iclass=InstrClass.VSX, flops=4)
                  for _ in range(5)]
        assert Trace(name="f", instructions=instrs).total_flops() == 20


class TestWindows:
    def test_window_count(self):
        windows = _trace(100).windows(30)
        # 30+30+30 and a 10-instruction leftover (< half) dropped
        assert [len(w) for w in windows] == [30, 30, 30]

    def test_keeps_large_partial(self):
        windows = _trace(50).windows(30)
        assert [len(w) for w in windows] == [30, 20]

    def test_bad_size(self):
        with pytest.raises(TraceError):
            _trace().windows(0)

    def test_too_short(self):
        with pytest.raises(TraceError):
            _trace(5).windows(100)


class TestRepeated:
    def test_repeats_body(self):
        rep = _trace(10).repeated(3)
        assert len(rep) == 30

    def test_copies_are_independent(self):
        rep = _trace(2).repeated(2)
        rep.instructions[0].flushed = True
        assert not rep.instructions[2].flushed

    def test_bad_times(self):
        with pytest.raises(TraceError):
            _trace().repeated(0)


class TestMergeSmt:
    def test_round_robin_and_thread_ids(self):
        merged = merge_smt([_trace(4, "a"), _trace(4, "b")])
        threads = [i.thread for i in merged.instructions[:4]]
        assert threads == [0, 1, 0, 1]
        assert len(merged) == 8

    def test_unequal_lengths(self):
        merged = merge_smt([_trace(3), _trace(1)])
        assert len(merged) == 4

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            merge_smt([])

    def test_originals_untouched(self):
        a = _trace(4)
        merge_smt([a, a])
        assert all(i.thread == 0 for i in a.instructions)
