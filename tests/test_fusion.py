"""Unit tests for the instruction-fusion engine."""

import pytest

from repro.core.fusion import (FUSION_EFFECTS, FusionEngine, FusionKind,
                               classify_pair, concrete_pairs,
                               registry_size)
from repro.core.isa import Instruction, InstrClass


def _fx(dest, *srcs):
    return Instruction(iclass=InstrClass.FX, dests=(dest,), srcs=srcs)


def _store(addr, size=8):
    return Instruction(iclass=InstrClass.STORE, address=addr, size=size,
                       srcs=(9,))


class TestClassify:
    def test_dependent_alu_pair(self):
        assert classify_pair(_fx(3, 4), _fx(5, 3)) is FusionKind.DEP_ALU

    def test_independent_alu_pair_not_fused(self):
        assert classify_pair(_fx(3, 4), _fx(5, 6)) is None

    def test_complex_alu_pair_not_fused(self):
        # two-source producers/consumers are not simple fusable forms
        assert classify_pair(_fx(3, 4, 5), _fx(6, 3, 7)) is None

    def test_cmp_branch(self):
        cmp_i = Instruction(iclass=InstrClass.CR, dests=(300,), srcs=(3,))
        br = Instruction(iclass=InstrClass.BRANCH, srcs=(300,),
                         taken=True, pc=0x4000, target=0x4100)
        assert classify_pair(cmp_i, br) is FusionKind.CMP_BRANCH

    def test_addi_load(self):
        load = Instruction(iclass=InstrClass.LOAD, dests=(7,), srcs=(3,),
                           address=0x1000, size=8)
        assert classify_pair(_fx(3, 1), load) is FusionKind.ADDI_LOAD

    def test_store_pair_consecutive(self):
        kind = classify_pair(_store(0x1000), _store(0x1008))
        assert kind is FusionKind.STORE_PAIR

    def test_store_pair_nonconsecutive(self):
        assert classify_pair(_store(0x1000), _store(0x1040)) is None

    def test_store_pair_too_wide(self):
        a = Instruction(iclass=InstrClass.VSX_STORE, address=0x1000,
                        size=32, srcs=(64,))
        b = Instruction(iclass=InstrClass.VSX_STORE, address=0x1020,
                        size=32, srcs=(65,))
        assert classify_pair(a, b) is None

    def test_load_pair(self):
        a = Instruction(iclass=InstrClass.LOAD, dests=(3,), srcs=(1,),
                        address=0x2000, size=8)
        b = Instruction(iclass=InstrClass.LOAD, dests=(4,), srcs=(1,),
                        address=0x2008, size=8)
        assert classify_pair(a, b) is FusionKind.LOAD_PAIR

    def test_cross_thread_never_fuses(self):
        a, b = _fx(3, 4), _fx(5, 3)
        b.thread = 1
        assert classify_pair(a, b) is None


class TestRegistry:
    def test_over_200_pairs(self):
        # the paper: "Over 200 different pairs of instruction types"
        assert registry_size() > 200

    def test_every_kind_has_pairs_and_effect(self):
        for kind in FusionKind:
            assert concrete_pairs(kind)
            assert kind in FUSION_EFFECTS

    def test_store_pair_effect_saves_agen_and_queue(self):
        effect = FUSION_EFFECTS[FusionKind.STORE_PAIR]
        assert effect.single_agen and effect.single_storeq_entry


class TestEngine:
    def test_disabled_engine_never_fuses(self):
        engine = FusionEngine(enabled=False)
        effects = engine.apply([_fx(3, 4), _fx(5, 3)])
        assert effects == [None, None]
        assert engine.stats.fused == 0

    def test_fusion_marks_second_instruction(self):
        engine = FusionEngine(enabled=True)
        group = [_fx(3, 4), _fx(5, 3)]
        effects = engine.apply(group)
        assert group[1].fused_with_prev
        assert effects[1] is not None
        assert engine.stats.by_kind[FusionKind.DEP_ALU] == 1

    def test_fused_instruction_cannot_refuse(self):
        engine = FusionEngine(enabled=True)
        group = [_fx(3, 4), _fx(5, 3), _fx(6, 5)]
        engine.apply(group)
        # the third may not fuse with the already-fused second
        assert not group[2].fused_with_prev

    def test_fusion_rate(self):
        engine = FusionEngine(enabled=True)
        engine.apply([_fx(3, 4), _fx(5, 3)])
        assert engine.stats.fusion_rate == 1.0
