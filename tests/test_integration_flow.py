"""Integration test: the paper's methodology pipeline end to end.

Exercises the Fig. 7/8/9 data flow: workload proxies -> timing model
("RTLSim") -> Einspower/Powerminer -> APEX intervals -> M1-linked
counter model -> power proxy -> WOF decision, all on the same traces.
"""

import pytest

from repro.core import power9_config, power10_config
from repro.core.pipeline import simulate
from repro.pm import WofDesignPoint, WofGovernor
from repro.power import (Apex, EinspowerModel, Powerminer,
                         PowerProxyDesigner, build_training_set,
                         fit_top_down, input_sweep)
from repro.workloads import specint_proxies


@pytest.fixture(scope="module")
def proxies():
    return specint_proxies(instructions=4000,
                           names=["xz", "exchange2", "x264"])


class TestMethodologyPipeline:
    def test_full_flow(self, proxies):
        p10 = power10_config()
        reference = EinspowerModel(p10)

        # 1. continuous characterization (Fig. 8): run every proxy,
        #    produce power + switching reports
        reports = []
        for proxy in proxies:
            result = simulate(p10, proxy, warmup_fraction=0.3)
            reports.append(reference.report(result.activity))
            switching = Powerminer(p10).report(result.activity)
            assert 0 < switching.mean_clock_enable < 1
        assert all(r.total_w > 0 for r in reports)

        # 2. APEX accelerated characterization (Fig. 9) on one workload
        apex_run = Apex(p10).run(proxies[0], interval_instructions=1500)
        assert apex_run.intervals

        # 3. M1-linked counter model (Fig. 11 flow)
        training = build_training_set(p10, proxies)
        errors = input_sweep(training, (2, 8))
        assert errors[8] <= errors[2]

        # 4. power proxy design (Fig. 15 flow)
        designer = PowerProxyDesigner(p10)
        feats, active, total = designer.characterize(proxies)
        design = designer.select(feats, active, total, num_counters=8)
        assert design.num_counters <= 8

        # 5. WOF consumes the proxy estimate
        governor = WofGovernor(p10, WofDesignPoint(
            tdp_core_w=max(total) * 1.1,
            rdp_core_w=max(total) * 1.2))
        estimate = float(design.predict_total_w(feats)[0])
        decision = governor.decide(proxies[0].name, estimate,
                                   mma_idle=True)
        assert decision.boost_ghz >= decision.nominal_ghz

    def test_generation_comparison_flow(self, proxies):
        """The paper's headline flow: same proxies on both cores."""
        p9, p10 = power9_config(), power10_config()
        perf, power = [], []
        for proxy in proxies:
            r9 = simulate(p9, proxy, warmup_fraction=0.3)
            r10 = simulate(p10, proxy, warmup_fraction=0.3)
            w9 = EinspowerModel(p9).report(r9.activity).total_w
            w10 = EinspowerModel(p10).report(r10.activity).total_w
            perf.append(r10.ipc / r9.ipc)
            power.append(w10 / w9)
        mean_perf = sum(perf) / len(perf)
        mean_power = sum(power) / len(power)
        assert mean_perf > 1.05
        assert mean_power < 0.75
        assert mean_perf / mean_power > 1.5
