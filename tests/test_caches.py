"""Unit tests for caches, prefetcher and the hierarchy."""

import pytest

from repro.errors import ConfigError
from repro.core.caches import (AccessResult, Cache, CacheGeometry,
                               CacheHierarchy, HierarchyGeometry,
                               StreamPrefetcher)


def _geometry(size=4096, assoc=4, latency=3, **kw):
    return CacheGeometry(size, assoc, latency, **kw)


class TestGeometry:
    def test_num_sets(self):
        assert _geometry(8192, 4).num_sets == 32

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1000, 3, 2)


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = Cache(_geometry())
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.accesses == 2 and cache.misses == 1

    def test_same_line_different_bytes(self):
        cache = Cache(_geometry())
        cache.access(0x1000)
        assert cache.access(0x103F)     # same 64B line

    def test_lru_eviction(self):
        cache = Cache(_geometry(size=4 * 64 * 2, assoc=4))  # 2 sets
        lines = [0x0 + i * 2 * 64 for i in range(5)]        # same set
        for addr in lines:
            cache.access(addr)
        assert not cache.probe(lines[0])       # evicted
        assert cache.probe(lines[1])

    def test_access_refreshes_lru(self):
        cache = Cache(_geometry(size=4 * 64, assoc=4))      # 1 set
        for i in range(4):
            cache.access(i * 64)
        cache.access(0)                 # refresh line 0
        cache.access(4 * 64)            # evicts line 1, not 0
        assert cache.probe(0)
        assert not cache.probe(64)

    def test_fill_does_not_count_access(self):
        cache = Cache(_geometry())
        cache.fill(0x2000)
        assert cache.accesses == 0
        assert cache.probe(0x2000)

    def test_invalidate_all(self):
        cache = Cache(_geometry())
        cache.access(0x1000)
        cache.invalidate_all()
        assert not cache.probe(0x1000)

    def test_miss_rate(self):
        cache = Cache(_geometry())
        assert cache.miss_rate == 0.0
        cache.access(0)
        assert cache.miss_rate == 1.0


class TestPrefetcher:
    def test_stream_detection(self):
        pf = StreamPrefetcher(max_streams=4, depth=4)
        assert pf.train(0) == []
        lines = pf.train(64)            # second sequential miss
        assert len(lines) == 4
        assert lines[0] == 2 * 64

    def test_random_misses_never_prefetch(self):
        pf = StreamPrefetcher()
        assert pf.train(0) == []
        assert pf.train(64 * 100) == []
        assert pf.train(64 * 7) == []

    def test_stream_table_bounded(self):
        pf = StreamPrefetcher(max_streams=2)
        for i in range(10):
            pf.train(i * 64 * 50)
        assert len(pf._streams) <= 2


class TestHierarchy:
    def _hier(self, infinite_l2=False):
        return CacheHierarchy(HierarchyGeometry(
            l1i=_geometry(), l1d=_geometry(),
            l2=_geometry(16384, 8, 12),
            l3=_geometry(65536, 8, 30),
            memory_latency=200, infinite_l2=infinite_l2))

    def test_levels_and_latency(self):
        hier = self._hier()
        first = hier.access_data(0x100000)
        assert first.level == "mem" and first.latency == 200
        second = hier.access_data(0x100000)
        assert second.level == "l1" and second.l1_hit

    def test_l2_hit_after_l1_eviction(self):
        hier = self._hier()
        hier.access_data(0x0)
        # blow out the small L1D but stay within the L2
        for i in range(1, 200):
            hier.access_data(i * 64)
        res = hier.access_data(0x0)
        assert res.level == "l2"

    def test_infinite_l2_never_reaches_memory(self):
        hier = self._hier(infinite_l2=True)
        for i in range(500):
            res = hier.access_data(i * 64 * 97)
            assert res.level in ("l1", "l2")

    def test_instruction_side(self):
        hier = self._hier()
        res = hier.access_instruction(0x4000)
        assert isinstance(res, AccessResult)
        assert hier.l1i.accesses == 1

    def test_stream_gets_prefetched(self):
        hier = self._hier()
        mem_hits = 0
        for i in range(256):
            if hier.access_data(0x200000 + i * 64).level == "mem":
                mem_hits += 1
        # after the stream is confirmed, misses are covered by prefetch
        assert mem_hits < 10
