"""Unit tests for the MMU (ERAT/TLB/table walker)."""

import pytest

from repro.errors import ConfigError
from repro.core.tlb import MMU, PAGE_BYTES, _LruTable


class TestLruTable:
    def test_positive_capacity(self):
        with pytest.raises(ConfigError):
            _LruTable(0)

    def test_capacity_eviction(self):
        table = _LruTable(2)
        table.access(1)
        table.access(2)
        table.access(3)
        assert not table.access(1)      # 1 was evicted

    def test_miss_rate(self):
        table = _LruTable(4)
        table.access(1)
        table.access(1)
        assert table.miss_rate == 0.5


class TestMMU:
    def test_erat_hit_costs_nothing(self):
        mmu = MMU()
        mmu.translate(0x1000)
        result = mmu.translate(0x1010)      # same page
        assert result.erat_hit and result.extra_latency == 0

    def test_erat_miss_tlb_hit(self):
        mmu = MMU(erat_entries=1, tlb_entries=64, tlb_latency=9)
        mmu.translate(0)
        mmu.translate(PAGE_BYTES)           # evicts page 0 from ERAT
        result = mmu.translate(0)
        assert not result.erat_hit and result.tlb_hit
        assert result.extra_latency == 9

    def test_full_walk(self):
        mmu = MMU(tlb_latency=10, walk_latency=50)
        result = mmu.translate(0x5000000)
        assert not result.erat_hit and not result.tlb_hit
        assert result.extra_latency == 60
        assert mmu.tablewalks == 1

    def test_bigger_tlb_fewer_walks(self):
        pages = [i * PAGE_BYTES for i in range(600)] * 2
        small = MMU(tlb_entries=128)
        big = MMU(tlb_entries=4096)
        for addr in pages:
            small.translate(addr)
            big.translate(addr)
        assert big.tablewalks < small.tablewalks
